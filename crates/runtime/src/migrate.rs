//! Cross-process shard migration over TCP.
//!
//! This module is the live realization of the paper's headline claim
//! (§3.2, Figure 9b): executor-centric elasticity moves **only the
//! displaced shards' state**, so migration latency is state size over
//! link bandwidth. Two `elasticutor-runtime` processes connect one
//! duplex TCP link and trade shards while records keep flowing.
//!
//! # Protocol
//!
//! All messages travel as [`elasticutor_core::wire`] frames on a single
//! connection, written by one writer thread per side (so each direction
//! is totally ordered) and consumed by one reader thread per side. A
//! migration of shard *s* from **B** (sender) to **A** (receiver):
//!
//! ```text
//! B: pause s (wait-free handshake) → flush marker through the owner
//!    task's queue → extract ShardSnapshot            [§3.3, in-process]
//! B:   journal OFFER_SENT (snapshot durable)
//! B→A  OFFER  (shard, entries, bytes)
//! A→B  ACCEPT (or REJECT reason)      A keeps routing records to B;
//!                                     they buffer behind B's pause.
//! B→A  STATE × n                      chunked snapshot frames
//! B:   journal COMMIT_SENT (the 2PC window opens)
//! B→A  COMMIT (totals + checksum)
//! A:   verify, journal STATE_DURABLE, install state, map s to a local
//!      task, hold routing closed (local submits buffer)
//! A→B  COMMIT_ACK
//! B:   journal ACK_RECEIVED, then atomically: replay pause buffer as
//!      DATA frames, append DONE, flip s to remote routing
//! B→A  DATA × m, DONE
//! A:   deliver replayed records ahead of its own buffered ones,
//!      reopen the fast path, journal RESOLVED_LOCAL
//! ```
//!
//! Per-key FIFO holds across the boundary because of three orderings:
//! (1) B's pause handshake puts every pre-pause record ahead of the
//! flush marker in the old owner's queue; (2) the single duplex link
//! means everything A forwarded to B before its `COMMIT_ACK` is read by
//! B before the ack, and therefore sits in B's pause buffer when B
//! replays it; (3) A delivers B's replayed records ahead of the records
//! A buffered locally during adoption, and reopens its fast path only
//! after both.
//!
//! # Durable stores
//!
//! When the executor's [`elasticutor_state::StateStore`] is durable
//! (opened with [`crate::ExecutorConfig`]`::durability`), the sender
//! reorders the stream so the pause window no longer scales with state
//! size: the base snapshot streams as `STATE` chunks **while the shard
//! keeps serving records**, with the store's WAL tail capture recording
//! every concurrent put/delete. Only then does the shard pause — the
//! captured tail ships as `TAIL` frames (batches of WAL ops) and
//! `COMMIT` carries the *final* totals and a whole-snapshot digest. The
//! receiver replays the tail over the streamed base (absolute ops, last
//! writer wins) and verifies the rebuilt state against the commit. The
//! journal's `OFFER_SENT` entry moves under the pause, written while
//! the shard is still installed — atomically before the extraction logs
//! the WAL `Drop` — so a crash between the two leaves either the WAL or
//! the journal (or both, identically) holding the state, never neither.
//!
//! # Failure semantics
//!
//! Every failure before `COMMIT` left the sender (peer rejection,
//! protocol abort, disconnect, timeout) surfaces as a typed
//! [`MigrateError`] and **restores the shard locally**: the snapshot is
//! reinstalled, the pause buffer drains back to the original owner
//! task, and routing resumes — no record and no state entry is silently
//! dropped. Transient refusals (peer busy with another inbound
//! migration, shard mid-reassignment) and timeouts are retried with
//! capped exponential backoff per [`MigrationConfig::retry`].
//!
//! The window between sending `COMMIT` and receiving the ack is the
//! classic two-phase-commit uncertainty. With a recovery journal
//! configured ([`MigrationConfig::with_journal`]), a link failure there
//! surfaces [`MigrateError::InDoubt`]: the shard stays parked (paused,
//! snapshot durable in the journal) until [`MigrationEndpoint::recover`]
//! on a reconnected link resolves it — querying the peer for ownership
//! and settling the shard exactly once on exactly one side. Without a
//! journal, the legacy behavior applies: the sender restores locally
//! and a receiver that already installed keeps its copy (documented
//! duplication hazard). `kill -9` at *any* protocol step is covered by
//! the journal: [`crate::journal`] holds the record format and replay
//! rules, and `docs/ARCHITECTURE.md` tabulates the per-crash-point
//! resolution.
//!
//! # Fault injection
//!
//! The protocol paths carry named [`elasticutor_core::fault`] points
//! (`migrate.snd.offer`, `migrate.snd.state`, `migrate.snd.commit`,
//! `migrate.snd.ack`, `migrate.rcv.offer`, `migrate.rcv.commit`,
//! `migrate.rcv.durable`, `migrate.rcv.ack`, `link.read`, `link.write`,
//! `executor.pause`), disarmed to a single atomic load in production.
//! The chaos bench (`bench --bin chaos`) kills a process at each of
//! them and asserts recovery.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use crossbeam::mpsc;
use elasticutor_core::fault;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum, WireError};
use elasticutor_core::Error;
use elasticutor_state::{decode_tail, encode_tail, ShardSnapshot, WalOp};
use parking_lot::Mutex;

use crate::executor::{ElasticExecutor, RemoteForwarder};
use crate::journal::{RecoveryJournal, ShardFate};
use crate::record::{monotonic_ns, Operator, Record};

/// `OFFER`: sender proposes migrating a shard (shard, entries, bytes).
pub const MSG_OFFER: u8 = 1;
/// `ACCEPT`: receiver agrees to adopt the offered shard.
pub const MSG_ACCEPT: u8 = 2;
/// `REJECT`: receiver declines the offer (transient flag + reason).
pub const MSG_REJECT: u8 = 3;
/// `STATE`: one chunk of the shard snapshot (snapshot wire format).
pub const MSG_STATE: u8 = 4;
/// `COMMIT`: end of state; totals and end-to-end checksum for verify.
pub const MSG_COMMIT: u8 = 5;
/// `COMMIT_ACK`: receiver installed the state and closed its routing.
pub const MSG_COMMIT_ACK: u8 = 6;
/// `DONE`: sender replayed its pause buffer; receiver may open routing.
pub const MSG_DONE: u8 = 7;
/// `ABORT`: either side gives up on the in-flight migration (reason).
pub const MSG_ABORT: u8 = 8;
/// `DATA`: one forwarded record for a remotely-hosted shard.
pub const MSG_DATA: u8 = 9;
/// `APP`: opaque application payload (demo coordination traffic).
pub const MSG_APP: u8 = 10;
/// `RESOLVE`: crash recovery asks the peer whether it owns a shard.
pub const MSG_RESOLVE: u8 = 11;
/// `RESOLVE_ACK`: the peer's ownership answer (shard, owned flag).
pub const MSG_RESOLVE_ACK: u8 = 12;
/// `TAIL`: durable-migration pause-window delta — a batch of WAL ops
/// (puts/deletes) the sender logged while the base snapshot streamed
/// live. Sent between the last `STATE` chunk and `COMMIT`.
pub const MSG_TAIL: u8 = 13;

/// Internal writer-thread shutdown sentinel — never put on the wire.
/// (`LinkShared` itself holds an `out_tx` clone, so the writer cannot
/// rely on channel disconnection to exit.)
const MSG_CLOSE_INTERNAL: u8 = 0;

/// Value bytes per `STATE` chunk (big shards stream as many frames).
const STATE_CHUNK_BYTES: u64 = 256 * 1024;

/// Capped exponential backoff between retries of a transiently-failed
/// migration attempt.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per attempt (≥ 1.0).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Total attempts (first try included); 1 disables retries.
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            factor: 2.0,
            cap: Duration::from_secs(2),
            max_attempts: 3,
        }
    }
}

impl Backoff {
    /// The delay after failed attempt number `attempt` (0-based):
    /// `min(cap, base · factor^attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let scaled = self.base.as_secs_f64() * self.factor.powi(attempt.min(64) as i32);
        Duration::from_secs_f64(scaled.min(self.cap.as_secs_f64()))
    }
}

/// Tunable timeouts, retry policy, and journal location of a
/// [`MigrationEndpoint`] — replacing the hardcoded protocol constants.
///
/// ```
/// use elasticutor_runtime::migrate::{Backoff, MigrationConfig};
/// use std::time::Duration;
///
/// let cfg = MigrationConfig::default()
///     .with_offer_deadline(Duration::from_secs(5))
///     .with_retry(Backoff { max_attempts: 5, ..Backoff::default() });
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct MigrationConfig {
    /// How long the sender waits for `ACCEPT`/`REJECT` (also the
    /// deadline of a recovery ownership query).
    pub offer_deadline: Duration,
    /// How long the sender waits for `COMMIT_ACK` (covers the peer's
    /// verify + journal + install time).
    pub state_deadline: Duration,
    /// Retry policy for transient failures (peer busy, timeout).
    pub retry: Backoff,
    /// Recovery journal path. `None` (default) disables journaling and
    /// keeps the documented post-`COMMIT` uncertainty window.
    pub journal: Option<PathBuf>,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self {
            offer_deadline: Duration::from_secs(20),
            state_deadline: Duration::from_secs(60),
            retry: Backoff::default(),
            journal: None,
        }
    }
}

impl MigrationConfig {
    /// Sets the `ACCEPT` deadline.
    pub fn with_offer_deadline(mut self, d: Duration) -> Self {
        self.offer_deadline = d;
        self
    }

    /// Sets the `COMMIT_ACK` deadline.
    pub fn with_state_deadline(mut self, d: Duration) -> Self {
        self.state_deadline = d;
        self
    }

    /// Sets the transient-failure retry policy.
    pub fn with_retry(mut self, retry: Backoff) -> Self {
        self.retry = retry;
        self
    }

    /// Enables crash-safe migration with a recovery journal at `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Validates the configuration (non-zero deadlines, at least one
    /// attempt, a non-shrinking backoff factor).
    pub fn validate(&self) -> Result<(), Error> {
        if self.offer_deadline.is_zero() || self.state_deadline.is_zero() {
            return Err(Error::InvalidConfig(
                "migration deadlines must be non-zero".into(),
            ));
        }
        if self.retry.max_attempts == 0 {
            return Err(Error::InvalidConfig(
                "retry.max_attempts must be at least 1".into(),
            ));
        }
        if self.retry.factor.is_nan() || self.retry.factor < 1.0 {
            return Err(Error::InvalidConfig(
                "retry.factor must be at least 1.0".into(),
            ));
        }
        Ok(())
    }
}

/// Errors surfaced by the migration transport. Every variant that can
/// occur after [`MigrationEndpoint::migrate_out`] paused the shard
/// implies the shard was restored locally — except [`Self::InDoubt`],
/// which parks the shard for [`MigrationEndpoint::recover`].
#[derive(Debug)]
pub enum MigrateError {
    /// A local executor precondition failed (shard not local, shard
    /// mid-reassignment, …).
    Local(Error),
    /// The peer rejected the offer. `transient` refusals (peer busy
    /// with another inbound migration, shard mid-reassignment there)
    /// are retried per [`MigrationConfig::retry`].
    Rejected {
        /// The peer's refusal reason.
        reason: String,
        /// Whether the refusal is expected to clear on its own.
        transient: bool,
    },
    /// The peer aborted the migration mid-protocol.
    Aborted(String),
    /// The connection failed mid-protocol.
    PeerDisconnected,
    /// The peer did not answer within the configured deadline.
    Timeout,
    /// Another outbound migration is already running on this link.
    MigrationInFlight,
    /// The link failed inside the `COMMIT`→`COMMIT_ACK` window with a
    /// journal configured: ownership is undecided, the shard is parked
    /// (paused, snapshot durable), and only `recover()` on a
    /// reconnected endpoint may settle it. Never retried.
    InDoubt(ShardId),
    /// A deterministic fault-injection point fired with an `err`
    /// action ([`elasticutor_core::fault`]).
    Injected(String),
    /// Malformed wire data from the peer.
    Wire(WireError),
    /// A socket- or journal-level I/O error.
    Io(std::io::Error),
}

impl MigrateError {
    /// Whether retrying the migration can plausibly succeed (the peer
    /// was busy or slow, not wrong).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MigrateError::Timeout
                | MigrateError::Rejected {
                    transient: true,
                    ..
                }
        )
    }
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Local(e) => write!(f, "local executor error: {e}"),
            MigrateError::Rejected { reason, transient } => {
                let kind = if *transient { "transiently " } else { "" };
                write!(f, "peer {kind}rejected the migration: {reason}")
            }
            MigrateError::Aborted(r) => write!(f, "peer aborted the migration: {r}"),
            MigrateError::PeerDisconnected => write!(f, "peer disconnected mid-migration"),
            MigrateError::Timeout => write!(f, "peer did not answer within the deadline"),
            MigrateError::MigrationInFlight => {
                write!(f, "an outbound migration is already in flight on this link")
            }
            MigrateError::InDoubt(s) => {
                write!(f, "migration of {s} is in doubt; recover() must settle it")
            }
            MigrateError::Injected(p) => write!(f, "injected fault at {p}"),
            MigrateError::Wire(e) => write!(f, "wire error: {e}"),
            MigrateError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<Error> for MigrateError {
    fn from(e: Error) -> Self {
        MigrateError::Local(e)
    }
}

impl From<WireError> for MigrateError {
    fn from(e: WireError) -> Self {
        MigrateError::Wire(e)
    }
}

impl From<std::io::Error> for MigrateError {
    fn from(e: std::io::Error) -> Self {
        MigrateError::Io(e)
    }
}

/// Timings and traffic of one completed outbound migration — the live
/// analogue of the paper's Figure 9b data points.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// The migrated shard.
    pub shard: ShardId,
    /// State entries shipped.
    pub entries: usize,
    /// Value bytes shipped (the paper's state size `s_j`).
    pub value_bytes: u64,
    /// Bytes put on the wire for the migration itself (control frames +
    /// encoded state, headers included; replayed live records excluded).
    pub wire_bytes: u64,
    /// Bytes put on the wire **while the shard was paused** — the part
    /// of `wire_bytes` that contributes to the submit-visible stall.
    /// With a durable store the base snapshot streams live and only the
    /// WAL tail + control frames ship under the pause, so this is far
    /// below `wire_bytes` for large shards; on the legacy path the
    /// whole stream is paused and the two are equal.
    pub sync_wire_bytes: u64,
    /// Nanoseconds from initiating the pause until the shard's pending
    /// records were drained and its state extracted.
    pub drain_ns: u64,
    /// Total nanoseconds from initiating the pause until the shard was
    /// remote and the pause buffer replayed (submit-visible stall).
    pub elapsed_ns: u64,
    /// Attempts taken (1 = no retries).
    pub attempts: u32,
}

/// What `recover()` did with each in-doubt shard found in the journal.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Shards restored to local ownership (sender side of an
    /// unfinished migration the peer never installed).
    pub restored: Vec<ShardId>,
    /// Shards settled as remote (the peer confirmed or already
    /// acknowledged ownership).
    pub remote: Vec<ShardId>,
    /// Shards installed locally from the journal (receiver side that
    /// crashed after the state went durable).
    pub adopted: Vec<ShardId>,
    /// Shards whose journal history ended in `RESOLVED_REMOTE` and that
    /// were re-delegated to the peer on this link: a **durable** restart
    /// replays the WAL (which remembers the `Drop`), so the shard is
    /// neither local nor routed anywhere until recovery re-points it.
    pub redelegated: Vec<ShardId>,
}

/// Out-of-band conditions of a migration link, surfaced on the
/// endpoint's control channel ([`MigrationEndpoint::events`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkEvent {
    /// The link died (EOF, socket error, protocol violation, or an
    /// explicit close). Emitted once per link.
    Dead {
        /// The peer the link was connected to.
        peer: SocketAddr,
    },
    /// A remote-egress forwarder dropped a record because the link was
    /// already dead — previously a silent condition. Emitted once per
    /// link (the per-record count is [`MigrationEndpoint::dropped_records`]).
    ForwardDropped {
        /// The shard whose record was first dropped.
        shard: ShardId,
    },
}

/// What the reader thread tells a waiting [`MigrationEndpoint::migrate_out`].
enum PeerEvent {
    Accepted,
    Rejected { reason: String, transient: bool },
    Committed,
    Aborted(String),
    Disconnected,
}

/// The sender-side registry of the (single) in-flight outbound
/// migration on a link.
struct PendingOut {
    shard: ShardId,
    events: Sender<PeerEvent>,
}

/// State shared between the endpoint handle, the reader, the writer,
/// and every remote forwarder installed in the executor.
struct LinkShared {
    /// Frames awaiting the writer thread: `(msg type, payload)` on a
    /// lock-free MPSC queue — the remote egress. A forwarder on the
    /// executor's fast path enqueues here wait-free (two atomic
    /// operations), so steady-state forwarding to a remote shard takes
    /// no lock anywhere: not the routing mutex (the shard word names
    /// the forwarder mirror) and not a channel mutex (this queue).
    out_tx: mpsc::Producer<(u8, Vec<u8>)>,
    pending: Mutex<Option<PendingOut>>,
    dead: AtomicBool,
    /// Bytes written to the socket so far (headers included).
    written: AtomicU64,
    /// Used to unblock the reader on close.
    stream: TcpStream,
    /// The recovery journal, if configured — shared with the reader
    /// thread (receiver-side durability points and `RESOLVE` answers).
    journal: Option<Arc<RecoveryJournal>>,
    /// Control-channel events (dead link, dropped forwards).
    events_tx: Sender<LinkEvent>,
    /// Latches so each event kind fires at most once per link.
    dead_event: AtomicBool,
    drop_event: AtomicBool,
    /// Records dropped by forwarders after the link died.
    dropped: AtomicU64,
    /// The peer address (rides into the `Dead` event).
    peer: SocketAddr,
    /// A parked recovery ownership query: `RESOLVE_ACK` answers here.
    resolve: Mutex<Option<(ShardId, Sender<bool>)>>,
}

impl LinkShared {
    fn fail(&self) {
        self.dead.store(true, Ordering::SeqCst);
        if let Some(p) = self.pending.lock().take() {
            let _ = p.events.send(PeerEvent::Disconnected);
        }
        // Disconnect a parked ownership query (dropping its sender).
        self.resolve.lock().take();
        let _ = self.stream.shutdown(Shutdown::Both);
        if !self.dead_event.swap(true, Ordering::SeqCst) {
            let _ = self.events_tx.send(LinkEvent::Dead { peer: self.peer });
        }
        // Wake the writer so it can observe the death and exit.
        self.out_tx.push((MSG_CLOSE_INTERNAL, Vec::new()));
    }
}

/// The receiver-side assembly of one inbound migration.
struct Incoming {
    shard: ShardId,
    expect_entries: u64,
    expect_bytes: u64,
    entries: Vec<(Key, Bytes)>,
    value_bytes: u64,
    checksum: Checksum,
    /// Pause-window WAL ops from `TAIL` frames (durable sender only);
    /// applied over the streamed base entries at `COMMIT`.
    tail: Vec<WalOp>,
    /// Encoded bytes of `tail` received so far (runaway guard).
    tail_bytes: u64,
    /// Set once `COMMIT` installed the state; between install and
    /// `DONE`, replayed `DATA` records bypass the adoption buffer.
    installed: bool,
}

/// Reader-side inbound migration state.
#[derive(Default)]
struct Inbound {
    /// The migration currently being assembled (at most one).
    current: Option<Incoming>,
    /// A migration this side aborted mid-stream: the sender's remaining
    /// `STATE`/`COMMIT` frames are already in flight and must drain
    /// harmlessly instead of reading as protocol violations.
    discarding: Option<ShardId>,
}

/// One side of a migration link: pairs an [`ElasticExecutor`] with a
/// duplex TCP connection to a peer process, forwards records of
/// remotely-hosted shards, and drives/answers shard migrations.
pub struct MigrationEndpoint<O: Operator> {
    executor: Arc<ElasticExecutor<O>>,
    shared: Arc<LinkShared>,
    config: MigrationConfig,
    app_rx: Receiver<Vec<u8>>,
    events_rx: Receiver<LinkEvent>,
    peer: SocketAddr,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl<O: Operator> MigrationEndpoint<O> {
    /// Accepts one peer connection from `listener` and starts the link
    /// with the default [`MigrationConfig`].
    pub fn accept(
        executor: Arc<ElasticExecutor<O>>,
        listener: &TcpListener,
    ) -> Result<Self, MigrateError> {
        Self::accept_with(executor, listener, MigrationConfig::default())
    }

    /// Accepts one peer connection from `listener` and starts the link
    /// with `config`.
    pub fn accept_with(
        executor: Arc<ElasticExecutor<O>>,
        listener: &TcpListener,
        config: MigrationConfig,
    ) -> Result<Self, MigrateError> {
        let (stream, peer) = listener.accept()?;
        Self::start(executor, stream, peer, config)
    }

    /// Connects to a listening peer and starts the link with the
    /// default [`MigrationConfig`].
    pub fn connect(
        executor: Arc<ElasticExecutor<O>>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, MigrateError> {
        Self::connect_with(executor, addr, MigrationConfig::default())
    }

    /// Connects to a listening peer and starts the link with `config`.
    pub fn connect_with(
        executor: Arc<ElasticExecutor<O>>,
        addr: impl ToSocketAddrs,
        config: MigrationConfig,
    ) -> Result<Self, MigrateError> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        Self::start(executor, stream, peer, config)
    }

    fn start(
        executor: Arc<ElasticExecutor<O>>,
        stream: TcpStream,
        peer: SocketAddr,
        config: MigrationConfig,
    ) -> Result<Self, MigrateError> {
        config.validate().map_err(MigrateError::Local)?;
        let journal = match &config.journal {
            Some(path) => Some(Arc::new(RecoveryJournal::open(path)?)),
            None => None,
        };
        stream.set_nodelay(true)?;
        let (out_tx, out_rx) = mpsc::queue::<(u8, Vec<u8>)>();
        let (app_tx, app_rx) = unbounded::<Vec<u8>>();
        let (events_tx, events_rx) = unbounded::<LinkEvent>();
        let shared = Arc::new(LinkShared {
            out_tx,
            pending: Mutex::new(None),
            dead: AtomicBool::new(false),
            written: AtomicU64::new(0),
            stream: stream.try_clone()?,
            journal,
            events_tx,
            dead_event: AtomicBool::new(false),
            drop_event: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            peer,
            resolve: Mutex::new(None),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            let stream = stream.try_clone()?;
            std::thread::Builder::new()
                .name("migrate-writer".into())
                .spawn(move || writer_loop(stream, out_rx, shared))
                .expect("spawn writer thread")
        };
        let reader = {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            std::thread::Builder::new()
                .name("migrate-reader".into())
                .spawn(move || reader_loop(stream, executor, shared, app_tx))
                .expect("spawn reader thread")
        };
        Ok(Self {
            executor,
            shared,
            config,
            app_rx,
            events_rx,
            peer,
            reader: Some(reader),
            writer: Some(writer),
        })
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Whether the link is still usable.
    pub fn is_alive(&self) -> bool {
        !self.shared.dead.load(Ordering::SeqCst)
    }

    /// The endpoint's configuration.
    pub fn config(&self) -> &MigrationConfig {
        &self.config
    }

    /// Bytes written to the socket so far (all traffic, headers
    /// included).
    pub fn bytes_sent(&self) -> u64 {
        self.shared.written.load(Ordering::Relaxed)
    }

    /// Control-channel events of this link: link death and dropped
    /// remote forwards, in occurrence order. Each kind fires at most
    /// once per link.
    pub fn events(&self) -> &Receiver<LinkEvent> {
        &self.events_rx
    }

    /// Records dropped by this link's forwarders after the link died
    /// (each drop past the first also latches a
    /// [`LinkEvent::ForwardDropped`]).
    pub fn dropped_records(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// A forwarder routing records of a shard to this link's peer as
    /// `DATA` frames. Wait-free: the frame is encoded and pushed onto
    /// the link's lock-free egress queue (two atomic operations) — safe
    /// from the executor's fast path and from under its routing lock
    /// alike. Records offered after the link died are dropped (matching
    /// the executor's shutdown semantics), counted, and surfaced once
    /// as a typed [`LinkEvent::ForwardDropped`] on the control channel.
    pub fn forwarder(&self) -> RemoteForwarder {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |shard: ShardId, record: Record| {
            if !shared.dead.load(Ordering::Relaxed) {
                shared.out_tx.push((MSG_DATA, encode_data(shard, &record)));
            } else {
                shared.dropped.fetch_add(1, Ordering::Relaxed);
                if !shared.drop_event.swap(true, Ordering::Relaxed) {
                    let _ = shared.events_tx.send(LinkEvent::ForwardDropped { shard });
                }
            }
        })
    }

    /// Declares `shards` as hosted by the peer: each is marked remote
    /// in the executor with this link's forwarder. A shard that is
    /// already remote (delegated on a previous link that died) is
    /// **rebound** to this link instead — reconnection support.
    pub fn delegate_shards(&self, shards: &[ShardId]) -> Result<(), MigrateError> {
        for &shard in shards {
            match self.executor.mark_remote(shard, self.forwarder()) {
                Ok(()) => {}
                Err(Error::ShardNotLocal(_)) => {
                    self.executor.rebind_remote(shard, self.forwarder())?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Sends an opaque application payload to the peer (demo
    /// coordination traffic rides the same ordered link).
    pub fn send_app(&self, payload: Vec<u8>) -> Result<(), MigrateError> {
        self.send(MSG_APP, payload).map(|_| ())
    }

    /// Application payloads received from the peer, in arrival order.
    pub fn app_messages(&self) -> &Receiver<Vec<u8>> {
        &self.app_rx
    }

    fn send(&self, msg_type: u8, payload: Vec<u8>) -> Result<u64, MigrateError> {
        if !self.is_alive() {
            return Err(MigrateError::PeerDisconnected);
        }
        let bytes = wire::frame_wire_bytes(payload.len());
        self.shared.out_tx.push((msg_type, payload));
        Ok(bytes)
    }

    /// Migrates `shard` to the peer: the full pause → drain → stream →
    /// commit → replay sequence described in the module docs. Blocks
    /// until the shard is remote (success), restored locally (most
    /// errors), or parked in doubt ([`MigrateError::InDoubt`], journal
    /// configured). Transient failures retry with the configured
    /// backoff. One outbound migration per link at a time.
    pub fn migrate_out(&self, shard: ShardId) -> Result<MigrationReport, MigrateError> {
        let mut attempt = 0u32;
        loop {
            match self.migrate_out_once(shard) {
                Ok(mut report) => {
                    report.attempts = attempt + 1;
                    return Ok(report);
                }
                Err(e)
                    if e.is_transient()
                        && attempt + 1 < self.config.retry.max_attempts
                        && self.is_alive() =>
                {
                    std::thread::sleep(self.config.retry.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn migrate_out_once(&self, shard: ShardId) -> Result<MigrationReport, MigrateError> {
        if !self.is_alive() {
            return Err(MigrateError::PeerDisconnected);
        }
        let (ev_tx, ev_rx) = unbounded();
        {
            let mut pending = self.shared.pending.lock();
            if pending.is_some() {
                return Err(MigrateError::MigrationInFlight);
            }
            *pending = Some(PendingOut {
                shard,
                events: ev_tx,
            });
        }
        let result = if self.executor.state().is_durable() {
            self.migrate_out_durable(shard, &ev_rx)
        } else {
            self.migrate_out_full(shard, &ev_rx)
        };
        *self.shared.pending.lock() = None;
        result
    }

    /// Legacy (non-durable) outbound path: pause first, then stream the
    /// whole extracted snapshot under the pause.
    fn migrate_out_full(
        &self,
        shard: ShardId,
        ev_rx: &Receiver<PeerEvent>,
    ) -> Result<MigrationReport, MigrateError> {
        let started = monotonic_ns();
        let snapshot = self
            .executor
            .begin_migration(shard)
            .map_err(MigrateError::Local)?;
        let drain_ns = monotonic_ns().saturating_sub(started);
        let result = self.stream_and_commit(shard, &snapshot, ev_rx, started, drain_ns);
        match &result {
            Err(MigrateError::InDoubt(_)) => {
                // Ownership is undecided: the shard stays parked
                // (paused, buffering submits) and its snapshot is
                // durable in the journal. No ABORT — the peer may have
                // installed. Only recover() may settle this.
            }
            Err(e) => {
                // The shard must come back: reinstall the snapshot,
                // release the pause buffer to the original owner,
                // resume routing. Tell the peer too (best effort) so
                // it can drop a half-assembled copy.
                self.send_abort(shard, e);
                self.executor
                    .abort_migration(snapshot)
                    .expect("paused shard restores");
                if let Some(j) = &self.shared.journal {
                    let _ = j.log_resolved_local(shard);
                }
            }
            Ok(_) => {}
        }
        result
    }

    /// Durable outbound path: the base snapshot streams **live** (the
    /// shard keeps serving records) while the store's WAL tail capture
    /// records every concurrent put/delete. Only then does the shard
    /// pause — the pause window ships just the captured tail plus the
    /// control frames, so the submit-visible stall is proportional to
    /// the write rate during the stream, not to the shard's state size.
    ///
    /// Journal points shift accordingly: `OFFER_SENT` is logged under
    /// the pause (with the *final* snapshot), atomically before the
    /// extraction logs the WAL `Drop` — so a crash between the two
    /// leaves either the WAL hosting the shard (journal entry is then
    /// redundant) or the journal holding the authoritative copy.
    fn migrate_out_durable(
        &self,
        shard: ShardId,
        ev_rx: &Receiver<PeerEvent>,
    ) -> Result<MigrationReport, MigrateError> {
        let state = Arc::clone(self.executor.state());
        let journal = self.shared.journal.clone();
        let started = monotonic_ns();
        state.start_tail(shard);
        // Phase 1: live base stream. Any failure here leaves the shard
        // untouched and running — no restore needed, just drop the tail
        // capture and tell the peer to discard its half assembly.
        let phase1 = (|| -> Result<(ShardSnapshot, u64), MigrateError> {
            fault::fail_point("migrate.snd.offer")
                .map_err(|e| MigrateError::Injected(e.to_string()))?;
            let base = state
                .snapshot_shard(shard)
                .unwrap_or_else(|| ShardSnapshot {
                    shard,
                    entries: Vec::new(),
                });
            let mut wire_bytes = 0u64;
            let mut offer = Vec::new();
            wire::put_u32(&mut offer, shard.0);
            wire::put_u64(&mut offer, base.len() as u64);
            wire::put_u64(&mut offer, base.value_bytes());
            wire_bytes += self.send(MSG_OFFER, offer)?;
            match recv_event(ev_rx, self.config.offer_deadline)? {
                PeerEvent::Accepted => {}
                PeerEvent::Rejected { reason, transient } => {
                    return Err(MigrateError::Rejected { reason, transient })
                }
                PeerEvent::Aborted(r) => return Err(MigrateError::Aborted(r)),
                PeerEvent::Disconnected => return Err(MigrateError::PeerDisconnected),
                PeerEvent::Committed => {
                    return Err(MigrateError::Wire(WireError::Corrupt(
                        "peer acknowledged a commit before one was sent",
                    )))
                }
            }
            for chunk in base.chunks(STATE_CHUNK_BYTES) {
                let encoded = chunk.encode();
                if encoded.len() as u64 > u64::from(wire::MAX_FRAME_LEN) {
                    return Err(MigrateError::Wire(WireError::Oversized(
                        encoded.len() as u64
                    )));
                }
                wire_bytes += self.send(MSG_STATE, encoded)?;
            }
            fault::fail_point("migrate.snd.state")
                .map_err(|e| MigrateError::Injected(e.to_string()))?;
            Ok((base, wire_bytes))
        })();
        let (_base, mut wire_bytes) = match phase1 {
            Ok(v) => v,
            Err(e) => {
                state.cancel_tail(shard);
                self.send_abort(shard, &e);
                return Err(e);
            }
        };
        // Phase 2: pause + extract. The stage closure journals the
        // final snapshot while the shard is paused but still installed,
        // closing the crash race between the journal append and the
        // WAL `Drop` the extraction logs.
        let drain_started = monotonic_ns();
        let journal_for_stage = journal.clone();
        let staged = self.executor.begin_migration_staged(shard, move |snap| {
            if let Some(j) = &journal_for_stage {
                j.log_offer_sent(snap)
                    .map_err(|e| Error::Infeasible(format!("journal append failed: {e}")))?;
            }
            Ok(())
        });
        let snapshot = match staged {
            Ok(s) => s,
            Err(e) => {
                state.cancel_tail(shard);
                let e = MigrateError::Local(e);
                self.send_abort(shard, &e);
                return Err(e);
            }
        };
        let drain_ns = monotonic_ns().saturating_sub(drain_started);
        let tail = state.take_tail(shard);
        // Phase 3: ship the tail, commit, ack, hand over. From here the
        // shard is extracted: errors must restore it (or park it in
        // doubt inside the 2PC window).
        let result = (|| -> Result<u64, MigrateError> {
            let mut sync_bytes = 0u64;
            for payload in encode_tail(&tail) {
                sync_bytes += self.send(MSG_TAIL, payload)?;
            }
            if let Some(j) = &journal {
                j.log_commit_sent(shard)?;
            }
            let mut digest = Checksum::new();
            snapshot.fold_checksum(&mut digest);
            let mut commit = Vec::new();
            wire::put_u32(&mut commit, shard.0);
            wire::put_u64(&mut commit, snapshot.len() as u64);
            wire::put_u64(&mut commit, snapshot.value_bytes());
            wire::put_u64(&mut commit, digest.finish());
            sync_bytes += self.send(MSG_COMMIT, commit)?;
            let _ = fault::fail_point("migrate.snd.commit");
            match recv_event(ev_rx, self.config.state_deadline) {
                Ok(PeerEvent::Committed) => {}
                Ok(PeerEvent::Aborted(r)) => return Err(MigrateError::Aborted(r)),
                Ok(PeerEvent::Rejected { reason, transient }) => {
                    return Err(MigrateError::Rejected { reason, transient })
                }
                Ok(PeerEvent::Disconnected) | Err(MigrateError::PeerDisconnected) => {
                    return Err(self.post_commit_failure(shard, MigrateError::PeerDisconnected));
                }
                Ok(PeerEvent::Accepted) => {
                    return Err(MigrateError::Wire(WireError::Corrupt(
                        "duplicate accept from peer",
                    )))
                }
                Err(MigrateError::Timeout) => {
                    return Err(self.post_commit_failure(shard, MigrateError::Timeout));
                }
                Err(e) => return Err(e),
            }
            if let Some(j) = &journal {
                let _ = j.log_ack_received(shard);
            }
            let _ = fault::fail_point("migrate.snd.ack");
            let forward = self.forwarder();
            let out_tx = self.shared.out_tx.clone();
            let mut done = Vec::new();
            wire::put_u32(&mut done, shard.0);
            sync_bytes += wire::frame_wire_bytes(done.len());
            self.executor.complete_migration(shard, forward, move || {
                out_tx.push((MSG_DONE, done));
            })?;
            if let Some(j) = &journal {
                let _ = j.log_resolved_remote(shard);
            }
            Ok(sync_bytes)
        })();
        match result {
            Ok(sync_bytes) => {
                wire_bytes += sync_bytes;
                Ok(MigrationReport {
                    shard,
                    entries: snapshot.len(),
                    value_bytes: snapshot.value_bytes(),
                    wire_bytes,
                    sync_wire_bytes: sync_bytes,
                    drain_ns,
                    elapsed_ns: monotonic_ns().saturating_sub(started),
                    attempts: 1,
                })
            }
            Err(e @ MigrateError::InDoubt(_)) => {
                // Parked: snapshot durable in the journal, only
                // recover() settles it. (Same contract as the legacy
                // path.)
                Err(e)
            }
            Err(e) => {
                self.send_abort(shard, &e);
                self.executor
                    .abort_migration(snapshot)
                    .expect("paused shard restores");
                if let Some(j) = &journal {
                    let _ = j.log_resolved_local(shard);
                }
                Err(e)
            }
        }
    }

    /// Best-effort `ABORT` so the peer drops a half-assembled copy.
    fn send_abort(&self, shard: ShardId, cause: &MigrateError) {
        let mut reason = Vec::new();
        wire::put_u32(&mut reason, shard.0);
        wire::put_bytes(&mut reason, cause.to_string().as_bytes());
        let _ = self.send(MSG_ABORT, reason);
    }

    fn stream_and_commit(
        &self,
        shard: ShardId,
        snapshot: &ShardSnapshot,
        ev_rx: &Receiver<PeerEvent>,
        started: u64,
        drain_ns: u64,
    ) -> Result<MigrationReport, MigrateError> {
        let journal = self.shared.journal.as_deref();
        // Durability point 1: the snapshot is on disk before the OFFER
        // can leave — a crash anywhere past here can restore it.
        if let Some(j) = journal {
            j.log_offer_sent(snapshot)?;
        }
        fault::fail_point("migrate.snd.offer")
            .map_err(|e| MigrateError::Injected(e.to_string()))?;
        let mut wire_bytes = 0u64;
        let mut offer = Vec::new();
        wire::put_u32(&mut offer, shard.0);
        wire::put_u64(&mut offer, snapshot.len() as u64);
        wire::put_u64(&mut offer, snapshot.value_bytes());
        wire_bytes += self.send(MSG_OFFER, offer)?;
        match recv_event(ev_rx, self.config.offer_deadline)? {
            PeerEvent::Accepted => {}
            PeerEvent::Rejected { reason, transient } => {
                return Err(MigrateError::Rejected { reason, transient })
            }
            PeerEvent::Aborted(r) => return Err(MigrateError::Aborted(r)),
            PeerEvent::Disconnected => return Err(MigrateError::PeerDisconnected),
            PeerEvent::Committed => {
                return Err(MigrateError::Wire(WireError::Corrupt(
                    "peer acknowledged a commit before one was sent",
                )))
            }
        }
        let mut end_to_end = Checksum::new();
        for chunk in snapshot.chunks(STATE_CHUNK_BYTES) {
            let encoded = chunk.encode();
            // A single entry can exceed the chunk budget (entries are
            // indivisible); refuse it here rather than letting the
            // writer thread hit the frame cap and kill the whole link.
            if encoded.len() as u64 > u64::from(wire::MAX_FRAME_LEN) {
                return Err(MigrateError::Wire(WireError::Oversized(
                    encoded.len() as u64
                )));
            }
            chunk.fold_checksum(&mut end_to_end);
            wire_bytes += self.send(MSG_STATE, encoded)?;
        }
        fault::fail_point("migrate.snd.state")
            .map_err(|e| MigrateError::Injected(e.to_string()))?;
        // Durability point 2: COMMIT_SENT opens the 2PC window — from
        // here until the ack, a crash leaves the shard in doubt and
        // recovery must ask the peer who owns it.
        if let Some(j) = journal {
            j.log_commit_sent(shard)?;
        }
        let mut commit = Vec::new();
        wire::put_u32(&mut commit, shard.0);
        wire::put_u64(&mut commit, snapshot.len() as u64);
        wire::put_u64(&mut commit, snapshot.value_bytes());
        wire::put_u64(&mut commit, end_to_end.finish());
        wire_bytes += self.send(MSG_COMMIT, commit)?;
        // Past the COMMIT send, an `err` injection cannot safely abort
        // (the peer may install); only kill/panic/delay are meaningful.
        let _ = fault::fail_point("migrate.snd.commit");
        match recv_event(ev_rx, self.config.state_deadline) {
            Ok(PeerEvent::Committed) => {}
            Ok(PeerEvent::Aborted(r)) => return Err(MigrateError::Aborted(r)),
            Ok(PeerEvent::Rejected { reason, transient }) => {
                return Err(MigrateError::Rejected { reason, transient })
            }
            Ok(PeerEvent::Disconnected) | Err(MigrateError::PeerDisconnected) => {
                return Err(self.post_commit_failure(shard, MigrateError::PeerDisconnected));
            }
            Ok(PeerEvent::Accepted) => {
                return Err(MigrateError::Wire(WireError::Corrupt(
                    "duplicate accept from peer",
                )))
            }
            Err(MigrateError::Timeout) => {
                return Err(self.post_commit_failure(shard, MigrateError::Timeout));
            }
            Err(e) => return Err(e),
        }
        // Durability point 4: the ack is on disk before the sender acts
        // on it. An append failure here must NOT abort — the peer owns
        // the state; replay then resolves via the peer query instead.
        if let Some(j) = journal {
            let _ = j.log_ack_received(shard);
        }
        let _ = fault::fail_point("migrate.snd.ack");
        // Atomically: replay the pause buffer as DATA frames, append
        // DONE, flip the shard to remote routing.
        let forward = self.forwarder();
        let out_tx = self.shared.out_tx.clone();
        let mut done = Vec::new();
        wire::put_u32(&mut done, shard.0);
        wire_bytes += wire::frame_wire_bytes(done.len());
        self.executor.complete_migration(shard, forward, move || {
            out_tx.push((MSG_DONE, done));
        })?;
        if let Some(j) = journal {
            let _ = j.log_resolved_remote(shard);
        }
        Ok(MigrationReport {
            shard,
            entries: snapshot.len(),
            value_bytes: snapshot.value_bytes(),
            wire_bytes,
            // The whole stream happened under the pause.
            sync_wire_bytes: wire_bytes,
            drain_ns,
            elapsed_ns: monotonic_ns().saturating_sub(started),
            attempts: 1,
        })
    }

    /// The link failed inside the 2PC window. With a journal the shard
    /// parks in doubt (recovery settles it); without one, legacy
    /// behavior: kill the link and let the caller's restore path run —
    /// accepting the documented duplication hazard.
    fn post_commit_failure(&self, shard: ShardId, cause: MigrateError) -> MigrateError {
        self.shared.fail();
        if self.shared.journal.is_some() {
            MigrateError::InDoubt(shard)
        } else {
            cause
        }
    }

    /// Replays this endpoint's recovery journal and settles every
    /// in-doubt shard to exactly one owner:
    ///
    /// | journal fate | resolution |
    /// |---|---|
    /// | `OFFER_SENT` (no commit) | restore locally from the journal |
    /// | `COMMIT_SENT` (no ack) | ask the peer; restore or settle remote |
    /// | `ACK_RECEIVED` | settle remote (peer owns the state) |
    /// | `STATE_DURABLE` (receiver) | install locally from the journal |
    ///
    /// Works both for a surviving process whose link died mid-handshake
    /// (shards parked by [`MigrateError::InDoubt`]) and for a freshly
    /// restarted process pointed at its old journal — call it on the
    /// **reconnected** endpoint, after [`Self::delegate_shards`] rebound
    /// any statically-delegated shards. Every resolution is journaled,
    /// so `recover()` is idempotent across repeated crashes.
    pub fn recover(&self) -> Result<RecoveryReport, MigrateError> {
        let journal = self.shared.journal.clone().ok_or_else(|| {
            MigrateError::Local(Error::InvalidConfig(
                "recover() needs a journal (MigrationConfig::with_journal)".into(),
            ))
        })?;
        let state = journal.replay()?;
        let mut report = RecoveryReport::default();
        for (shard, fate) in state.open {
            match fate {
                ShardFate::SenderOffered(snap) => {
                    self.restore_local(&journal, snap)?;
                    report.restored.push(shard);
                }
                ShardFate::SenderCommitted(snap) => {
                    if self.query_peer_owns(shard)? {
                        self.settle_remote(&journal, shard)?;
                        report.remote.push(shard);
                    } else {
                        self.restore_local(&journal, snap)?;
                        report.restored.push(shard);
                    }
                }
                ShardFate::SenderAcked => {
                    self.settle_remote(&journal, shard)?;
                    report.remote.push(shard);
                }
                ShardFate::ReceiverDurable(snap) => {
                    self.restore_local(&journal, snap)?;
                    report.adopted.push(shard);
                }
            }
        }
        // Closed migrations that settled REMOTE need re-pointing after a
        // durable restart: the WAL faithfully replayed the shard's `Drop`,
        // so nothing is local — but nothing routes to the peer either.
        // Re-delegate on this link unless the shard meanwhile came back
        // (non-empty local copy, an in-doubt resolution above, or a
        // parked pause — all of which are authoritative over history).
        let settled: BTreeSet<ShardId> = report
            .restored
            .iter()
            .chain(report.remote.iter())
            .chain(report.adopted.iter())
            .copied()
            .collect();
        let st = self.executor.state();
        let already_remote: BTreeSet<ShardId> = self.executor.remote_shards().into_iter().collect();
        for shard in state.resolved_remote {
            if settled.contains(&shard)
                || already_remote.contains(&shard)
                || st.shard_keys(shard) > 0
                || self.executor.is_shard_paused(shard)
            {
                continue;
            }
            self.delegate_shards(&[shard])?;
            report.redelegated.push(shard);
        }
        Ok(report)
    }

    /// Settles an in-doubt shard as locally owned: a surviving sender
    /// has it parked paused (abort restores snapshot + buffered
    /// records); a restarted process has it plain local and empty
    /// (adopt installs the journaled snapshot). A restarted **durable**
    /// process may already host the shard's state — the WAL replayed it
    /// (the crash hit between the journal append and the WAL `Drop`, or
    /// after a receiver's install was logged); the journal entry is
    /// then redundant and only needs closing.
    fn restore_local(
        &self,
        journal: &Arc<RecoveryJournal>,
        snapshot: ShardSnapshot,
    ) -> Result<(), MigrateError> {
        let shard = snapshot.shard;
        let st = self.executor.state();
        if self.executor.is_shard_paused(shard) {
            self.executor.abort_migration(snapshot)?;
        } else if st.is_durable() && st.shard_keys(shard) > 0 {
            // WAL-recovered state is authoritative and identical to (or
            // newer than) the journaled snapshot: installing over it
            // would be a double-install.
        } else {
            self.executor.adopt_install(snapshot)?;
            self.executor.adopt_finish(shard)?;
        }
        journal.log_resolved_local(shard)?;
        Ok(())
    }

    /// Settles an in-doubt shard as peer-owned: a surviving sender
    /// forwards its parked pause buffer and flips to remote routing (no
    /// DONE — the peer has no matching inbound migration; forwarded
    /// records route as ordinary remote DATA); a restarted process just
    /// marks (or rebinds) the shard remote.
    fn settle_remote(
        &self,
        journal: &Arc<RecoveryJournal>,
        shard: ShardId,
    ) -> Result<(), MigrateError> {
        let st = self.executor.state();
        if self.executor.is_shard_paused(shard) {
            self.executor
                .complete_migration(shard, self.forwarder(), || {})?;
        } else if st.is_durable() && st.shard_keys(shard) > 0 {
            // A durable restart can re-host state the peer now owns
            // (the crash predated the WAL `Drop`). The peer's copy is
            // authoritative: extract the stale local one — logging the
            // `Drop` this time — and flip to remote routing.
            self.executor
                .begin_migration(shard)
                .map_err(MigrateError::Local)?;
            self.executor
                .complete_migration(shard, self.forwarder(), || {})?;
        } else {
            match self.executor.mark_remote(shard, self.forwarder()) {
                Ok(()) => {}
                Err(Error::ShardNotLocal(_)) => {
                    self.executor.rebind_remote(shard, self.forwarder())?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        journal.log_resolved_remote(shard)?;
        Ok(())
    }

    /// Asks the peer whether it owns `shard` (recovery of the
    /// `COMMIT_SENT` fate). The peer answers from its own journal
    /// first, falling back to its executor's routing.
    fn query_peer_owns(&self, shard: ShardId) -> Result<bool, MigrateError> {
        let (tx, rx) = bounded(1);
        *self.shared.resolve.lock() = Some((shard, tx));
        let mut q = Vec::new();
        wire::put_u32(&mut q, shard.0);
        if let Err(e) = self.send(MSG_RESOLVE, q) {
            self.shared.resolve.lock().take();
            return Err(e);
        }
        match rx.recv_timeout(self.config.offer_deadline) {
            Ok(owned) => Ok(owned),
            Err(RecvTimeoutError::Timeout) => {
                self.shared.resolve.lock().take();
                Err(MigrateError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(MigrateError::PeerDisconnected),
        }
    }

    /// Shuts the link down: closes the socket, stops both threads, and
    /// returns once they exited. Records later submitted for remote
    /// shards are dropped (their forwarders outlive the link).
    pub fn close(mut self) {
        self.shutdown_threads();
    }

    fn shutdown_threads(&mut self) {
        self.shared.fail();
        if let Some(writer) = self.writer.take() {
            // The writer exits when every out_tx clone is gone or a
            // write fails; failing the link makes its writes fail fast.
            let _ = writer.join();
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl<O: Operator> Drop for MigrationEndpoint<O> {
    fn drop(&mut self) {
        self.shutdown_threads();
    }
}

impl<O: Operator> std::fmt::Debug for MigrationEndpoint<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationEndpoint")
            .field("peer", &self.peer)
            .field("alive", &self.is_alive())
            .finish()
    }
}

fn recv_event(ev_rx: &Receiver<PeerEvent>, timeout: Duration) -> Result<PeerEvent, MigrateError> {
    match ev_rx.recv_timeout(timeout) {
        Ok(ev) => Ok(ev),
        Err(RecvTimeoutError::Timeout) => Err(MigrateError::Timeout),
        Err(RecvTimeoutError::Disconnected) => Err(MigrateError::PeerDisconnected),
    }
}

/// Encodes a `DATA` frame payload: shard, key, seq, payload bytes. The
/// creation timestamp deliberately does not travel — monotonic origins
/// differ across processes, so the receiver restamps on decode.
pub fn encode_data(shard: ShardId, record: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + record.payload.len());
    wire::put_u32(&mut out, shard.0);
    wire::put_u64(&mut out, record.key.value());
    wire::put_u64(&mut out, record.seq);
    wire::put_bytes(&mut out, &record.payload);
    out
}

/// Decodes a `DATA` frame payload, restamping the record's creation
/// time with the local monotonic clock.
pub fn decode_data(payload: &[u8]) -> Result<(ShardId, Record), WireError> {
    let mut r = ByteReader::new(payload);
    let shard = ShardId(r.u32()?);
    let key = Key(r.u64()?);
    let seq = r.u64()?;
    let body = Bytes::copy_from_slice(r.bytes()?);
    if !r.is_empty() {
        return Err(WireError::Corrupt("trailing bytes in data frame"));
    }
    Ok((
        shard,
        Record::new_at(key, body, monotonic_ns()).with_seq(seq),
    ))
}

fn writer_loop(
    stream: TcpStream,
    mut out_rx: mpsc::Consumer<(u8, Vec<u8>)>,
    shared: Arc<LinkShared>,
) {
    let mut w = BufWriter::new(stream);
    loop {
        // The park timeout is a safety net only: producers wake the
        // consumer on the empty edge, and `fail()` always enqueues the
        // close sentinel.
        let Some((msg_type, payload)) = out_rx.pop_wait(Duration::from_millis(50)) else {
            continue;
        };
        if msg_type == MSG_CLOSE_INTERNAL {
            let _ = w.flush();
            return;
        }
        // `delay` simulates a slow link; `err`/`kill` a failing one.
        if fault::fail_point("link.write").is_err() {
            shared.fail();
            return;
        }
        let bytes = wire::frame_wire_bytes(payload.len());
        if wire::write_frame(&mut w, msg_type, &payload).is_err() {
            shared.fail();
            return;
        }
        shared.written.fetch_add(bytes, Ordering::Relaxed);
        // Flush once the queue runs dry, amortizing bursts.
        if out_rx.is_empty() && w.flush().is_err() {
            shared.fail();
            return;
        }
    }
}

fn reader_loop<O: Operator>(
    stream: TcpStream,
    executor: Arc<ElasticExecutor<O>>,
    shared: Arc<LinkShared>,
    app_tx: Sender<Vec<u8>>,
) {
    let mut r = BufReader::new(stream);
    let mut inbound = Inbound::default();
    while let Ok((msg_type, payload)) = wire::read_frame(&mut r) {
        if fault::fail_point("link.read").is_err() {
            break;
        }
        if handle_frame(
            &executor,
            &shared,
            &app_tx,
            &mut inbound,
            msg_type,
            &payload,
        )
        .is_err()
        {
            break;
        }
    }
    // EOF, socket error, or protocol violation: fail the link. If an
    // inbound migration already installed its state, finish the
    // adoption so the shard is servable (the sender's replay is lost
    // with the link; with journals on both sides the sender's recovery
    // query finds the shard owned here and settles remote).
    shared.fail();
    if let Some(inc) = inbound.current.take() {
        if inc.installed {
            let _ = executor.adopt_finish(inc.shard);
            if let Some(j) = &shared.journal {
                let _ = j.log_resolved_local(inc.shard);
            }
        }
    }
}

/// Receiver-side refusal classification: which refusals clear on their
/// own (the sender should retry) vs. which are permanent.
fn refusal_is_transient(e: &Error) -> bool {
    matches!(e, Error::ReassignmentInProgress(_))
}

/// Applies a received WAL tail over the streamed base entries. Tail
/// ops are absolute (full values, not diffs) and idempotent: last
/// writer wins, deletes remove — the same replay rule the durable
/// store itself uses, so base + tail equals the sender's final state.
fn apply_tail(inc: &mut Incoming) {
    let mut map: std::collections::BTreeMap<Key, Bytes> =
        std::mem::take(&mut inc.entries).into_iter().collect();
    for op in inc.tail.drain(..) {
        match op {
            WalOp::Put { key, value, .. } => {
                map.insert(key, value);
            }
            WalOp::Del { key, .. } => {
                map.remove(&key);
            }
            // encode_tail never emits whole-shard ops.
            WalOp::Install(_) | WalOp::Drop { .. } => {}
        }
    }
    inc.entries = map.into_iter().collect();
}

/// The receiver's verified-commit path: fail points, the STATE_DURABLE
/// journal entry, and the install. `Err(reason)` answers the sender
/// with an `ABORT` (and, if the state already went durable, closes the
/// journal entry so replay cannot resurrect the refused copy).
fn install_commit<O: Operator>(
    executor: &Arc<ElasticExecutor<O>>,
    shared: &Arc<LinkShared>,
    inc: &mut Incoming,
) -> Result<(), String> {
    fault::fail_point("migrate.rcv.commit").map_err(|e| e.to_string())?;
    let snapshot = ShardSnapshot {
        shard: inc.shard,
        entries: std::mem::take(&mut inc.entries),
    };
    // Durability point 3: the verified state is on disk before the
    // install — a crash past here reinstates it from the journal.
    if let Some(j) = &shared.journal {
        j.log_state_durable(&snapshot)
            .map_err(|e| format!("journal append failed: {e}"))?;
    }
    let result = fault::fail_point("migrate.rcv.durable")
        .map_err(|e| e.to_string())
        .and_then(|()| executor.adopt_install(snapshot).map_err(|e| e.to_string()));
    if result.is_err() {
        if let Some(j) = &shared.journal {
            let _ = j.log_resolved_local(inc.shard);
        }
    }
    result
}

/// Journal-aware ownership answer for a peer's `RESOLVE` query: an
/// unresolved receiver-durable fate means the state is (or will be,
/// once this side recovers) installed here; an acked sender fate means
/// it was shipped away. Otherwise the live routing table decides.
fn shard_owned_here<O: Operator>(
    executor: &Arc<ElasticExecutor<O>>,
    shared: &Arc<LinkShared>,
    shard: ShardId,
) -> bool {
    if let Some(j) = &shared.journal {
        if let Ok(state) = j.replay() {
            match state.fate(shard) {
                Some(ShardFate::ReceiverDurable(_)) => return true,
                Some(ShardFate::SenderAcked) => return false,
                _ => {}
            }
        }
    }
    executor.owns_shard(shard)
}

/// Processes one inbound frame. `Err` kills the link (protocol
/// violation); per-migration failures answer the peer instead.
fn handle_frame<O: Operator>(
    executor: &Arc<ElasticExecutor<O>>,
    shared: &Arc<LinkShared>,
    app_tx: &Sender<Vec<u8>>,
    inbound: &mut Inbound,
    msg_type: u8,
    payload: &[u8],
) -> Result<(), WireError> {
    match msg_type {
        MSG_OFFER => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let expect_entries = p.u64()?;
            let expect_bytes = p.u64()?;
            // A fresh offer means the sender moved past any stream this
            // side was discarding.
            inbound.discarding = None;
            let refusal: Option<(String, bool)> =
                if let Err(e) = fault::fail_point("migrate.rcv.offer") {
                    Some((e.to_string(), true))
                } else if inbound.current.is_some() {
                    Some((
                        "an inbound migration is already in progress".to_string(),
                        true,
                    ))
                } else {
                    executor
                        .can_adopt(shard)
                        .err()
                        .map(|e| (e.to_string(), refusal_is_transient(&e)))
                };
            let mut reply = Vec::new();
            wire::put_u32(&mut reply, shard.0);
            match refusal {
                Some((reason, transient)) => {
                    wire::put_u8(&mut reply, transient as u8);
                    wire::put_bytes(&mut reply, reason.as_bytes());
                    shared.out_tx.push((MSG_REJECT, reply));
                }
                None => {
                    inbound.current = Some(Incoming {
                        shard,
                        expect_entries,
                        expect_bytes,
                        entries: Vec::new(),
                        value_bytes: 0,
                        checksum: Checksum::new(),
                        tail: Vec::new(),
                        tail_bytes: 0,
                        installed: false,
                    });
                    shared.out_tx.push((MSG_ACCEPT, reply));
                }
            }
        }
        MSG_STATE => {
            let chunk = ShardSnapshot::decode(payload)?;
            if inbound.discarding == Some(chunk.shard) {
                // Tail of a stream this side already aborted.
                return Ok(());
            }
            let inc = inbound
                .current
                .as_mut()
                .ok_or(WireError::Corrupt("state chunk without an offer"))?;
            if chunk.shard != inc.shard || inc.installed {
                return Err(WireError::Corrupt("state chunk out of sequence"));
            }
            chunk.fold_checksum(&mut inc.checksum);
            inc.value_bytes += chunk.value_bytes();
            inc.entries.extend(chunk.entries);
            // Enforce the OFFER-announced totals as they stream, not
            // only at COMMIT: a runaway sender must not be able to grow
            // the receiver's assembly buffer without bound.
            if inc.entries.len() as u64 > inc.expect_entries || inc.value_bytes > inc.expect_bytes {
                let shard = inc.shard;
                inbound.current = None;
                inbound.discarding = Some(shard);
                let mut reply = Vec::new();
                wire::put_u32(&mut reply, shard.0);
                wire::put_bytes(&mut reply, b"state stream exceeds the offered totals");
                shared.out_tx.push((MSG_ABORT, reply));
            }
        }
        MSG_TAIL => {
            // Tail frames of a stream this side already aborted drain
            // harmlessly, like their STATE siblings.
            if inbound.discarding.is_some() {
                return Ok(());
            }
            let inc = inbound
                .current
                .as_mut()
                .ok_or(WireError::Corrupt("tail without an offer"))?;
            if inc.installed {
                return Err(WireError::Corrupt("tail out of sequence"));
            }
            inc.tail_bytes += payload.len() as u64;
            let decoded = if inc.tail_bytes > u64::from(wire::MAX_FRAME_LEN) {
                Err("migration tail exceeds the frame cap")
            } else {
                match decode_tail(payload) {
                    Ok(ops) if ops.iter().all(|op| op.shard() == inc.shard) => Ok(ops),
                    Ok(_) => Err("migration tail op for the wrong shard"),
                    Err(_) => Err("corrupt migration tail"),
                }
            };
            match decoded {
                Ok(ops) => inc.tail.extend(ops),
                Err(reason) => {
                    // Same shape as the runaway-STATE guard: drop the
                    // assembly, answer ABORT, drain the rest.
                    let shard = inc.shard;
                    inbound.current = None;
                    inbound.discarding = Some(shard);
                    let mut reply = Vec::new();
                    wire::put_u32(&mut reply, shard.0);
                    wire::put_bytes(&mut reply, reason.as_bytes());
                    shared.out_tx.push((MSG_ABORT, reply));
                }
            }
        }
        MSG_COMMIT => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let entries = p.u64()?;
            let value_bytes = p.u64()?;
            let checksum = p.u64()?;
            if inbound.discarding == Some(shard) {
                // End of a discarded stream; the sender is now waiting
                // for an ack and will see the ABORT already sent.
                inbound.discarding = None;
                return Ok(());
            }
            let inc = inbound
                .current
                .as_mut()
                .ok_or(WireError::Corrupt("commit without an offer"))?;
            if shard != inc.shard || inc.installed {
                return Err(WireError::Corrupt("commit out of sequence"));
            }
            let base_ok = if inc.tail.is_empty() {
                // Legacy verify: the stream is the final state and must
                // match both the OFFER and the COMMIT exactly.
                entries == inc.entries.len() as u64
                    && entries == inc.expect_entries
                    && value_bytes == inc.value_bytes
                    && value_bytes == inc.expect_bytes
                    && checksum == inc.checksum.finish()
            } else {
                // Durable sender: the base streamed live, then a WAL
                // tail shipped the pause-window delta. Apply the tail
                // over the base (absolute ops, last writer wins) and
                // verify the COMMIT's *final* totals and digest against
                // the rebuilt state.
                apply_tail(inc);
                let rebuilt = ShardSnapshot {
                    shard: inc.shard,
                    entries: std::mem::take(&mut inc.entries),
                };
                let mut digest = Checksum::new();
                rebuilt.fold_checksum(&mut digest);
                let ok = entries == rebuilt.len() as u64
                    && value_bytes == rebuilt.value_bytes()
                    && checksum == digest.finish();
                inc.entries = rebuilt.entries;
                inc.value_bytes = value_bytes;
                ok
            };
            let verify = if !base_ok {
                Err("state totals or checksum mismatch".to_string())
            } else {
                install_commit(executor, shared, inc)
            };
            let mut reply = Vec::new();
            wire::put_u32(&mut reply, shard.0);
            match verify {
                Err(reason) => {
                    inbound.current = None;
                    wire::put_bytes(&mut reply, reason.as_bytes());
                    shared.out_tx.push((MSG_ABORT, reply));
                }
                Ok(()) => {
                    inc.installed = true;
                    shared.out_tx.push((MSG_COMMIT_ACK, reply));
                    // Dies after the ack is queued: whether it reached
                    // the sender is genuine TCP nondeterminism — the
                    // recovery query resolves either outcome.
                    let _ = fault::fail_point("migrate.rcv.ack");
                }
            }
        }
        MSG_DONE => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            match inbound.current.take() {
                Some(inc) if inc.shard == shard && inc.installed => {
                    // Reopen routing: local records buffered during
                    // adoption drain behind the replayed ones.
                    let _ = executor.adopt_finish(shard);
                    if let Some(j) = &shared.journal {
                        let _ = j.log_resolved_local(shard);
                    }
                }
                Some(inc) => {
                    // Unrelated or premature DONE (e.g. replayed by a
                    // peer that recovered): keep the assembly, ignore.
                    inbound.current = Some(inc);
                }
                // Stale DONE for a migration recovery already settled.
                None => {}
            }
        }
        MSG_DATA => {
            let (shard, record) = decode_data(payload)?;
            match inbound.current.as_ref() {
                // Replay window of an inbound migration: bypass the
                // adoption buffer so replayed records run first.
                Some(inc) if inc.shard == shard && inc.installed => {
                    let _ = executor.deliver_to_owner(shard, record);
                }
                _ => executor.receive_remote(shard, record),
            }
        }
        MSG_ACCEPT | MSG_COMMIT_ACK => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let pending = shared.pending.lock();
            match pending.as_ref() {
                Some(p) if p.shard == shard => {
                    let ev = if msg_type == MSG_ACCEPT {
                        PeerEvent::Accepted
                    } else {
                        PeerEvent::Committed
                    };
                    let _ = p.events.send(ev);
                }
                // Stale answer to a migration we already gave up on.
                _ => {}
            }
        }
        MSG_REJECT => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let transient = p.u8()? != 0;
            let reason = String::from_utf8_lossy(p.bytes().unwrap_or(b"")).into_owned();
            let pending = shared.pending.lock();
            if let Some(out) = pending.as_ref() {
                if out.shard == shard {
                    let _ = out.events.send(PeerEvent::Rejected { reason, transient });
                }
            }
        }
        MSG_ABORT => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let reason = String::from_utf8_lossy(p.bytes().unwrap_or(b"")).into_owned();
            let delivered = {
                let pending = shared.pending.lock();
                match pending.as_ref() {
                    Some(out) if out.shard == shard => {
                        let _ = out.events.send(PeerEvent::Aborted(reason.clone()));
                        true
                    }
                    _ => false,
                }
            };
            if !delivered {
                // The peer abandoned the migration it was sending us.
                if let Some(inc) = inbound.current.take() {
                    if inc.shard != shard {
                        inbound.current = Some(inc);
                    } else if inc.installed {
                        // Already installed and acked: keep the shard
                        // servable; the abort crossed our ack.
                        let _ = executor.adopt_finish(inc.shard);
                        if let Some(j) = &shared.journal {
                            let _ = j.log_resolved_local(inc.shard);
                        }
                    }
                }
            }
        }
        MSG_RESOLVE => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let owned = shard_owned_here(executor, shared, shard);
            let mut reply = Vec::new();
            wire::put_u32(&mut reply, shard.0);
            wire::put_u8(&mut reply, owned as u8);
            shared.out_tx.push((MSG_RESOLVE_ACK, reply));
        }
        MSG_RESOLVE_ACK => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let owned = p.u8()? != 0;
            let mut resolve = shared.resolve.lock();
            if let Some((pending_shard, tx)) = resolve.take() {
                if pending_shard == shard {
                    let _ = tx.send(owned);
                } else {
                    *resolve = Some((pending_shard, tx));
                }
            }
        }
        MSG_APP => {
            let _ = app_tx.send(payload.to_vec());
        }
        _ => return Err(WireError::Corrupt("unknown message type")),
    }
    Ok(())
}
