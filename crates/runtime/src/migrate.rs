//! Cross-process shard migration over TCP.
//!
//! This module is the live realization of the paper's headline claim
//! (§3.2, Figure 9b): executor-centric elasticity moves **only the
//! displaced shards' state**, so migration latency is state size over
//! link bandwidth. Two `elasticutor-runtime` processes connect one
//! duplex TCP link and trade shards while records keep flowing.
//!
//! # Protocol
//!
//! All messages travel as [`elasticutor_core::wire`] frames on a single
//! connection, written by one writer thread per side (so each direction
//! is totally ordered) and consumed by one reader thread per side. A
//! migration of shard *s* from **B** (sender) to **A** (receiver):
//!
//! ```text
//! B: pause s (wait-free handshake) → flush marker through the owner
//!    task's queue → extract ShardSnapshot            [§3.3, in-process]
//! B→A  OFFER  (shard, entries, bytes)
//! A→B  ACCEPT (or REJECT reason)      A keeps routing records to B;
//!                                     they buffer behind B's pause.
//! B→A  STATE × n                      chunked snapshot frames
//! B→A  COMMIT (totals + checksum)
//! A:   verify, install state, map s to a local task, hold routing
//!      closed (local submits buffer)
//! A→B  COMMIT_ACK
//! B:   atomically: replay pause buffer as DATA frames, append DONE,
//!      flip s to remote routing        [the labeling-tuple flip]
//! B→A  DATA × m, DONE
//! A:   deliver replayed records ahead of its own buffered ones,
//!      reopen the fast path
//! ```
//!
//! Per-key FIFO holds across the boundary because of three orderings:
//! (1) B's pause handshake puts every pre-pause record ahead of the
//! flush marker in the old owner's queue; (2) the single duplex link
//! means everything A forwarded to B before its `COMMIT_ACK` is read by
//! B before the ack, and therefore sits in B's pause buffer when B
//! replays it; (3) A delivers B's replayed records ahead of the records
//! A buffered locally during adoption, and reopens its fast path only
//! after both.
//!
//! # Failure semantics
//!
//! Every failure before `COMMIT_ACK` (peer rejection, protocol abort,
//! disconnect, timeout) surfaces as a typed [`MigrateError`] and
//! **restores the shard locally**: the snapshot is reinstalled, the
//! pause buffer drains back to the original owner task, and routing
//! resumes — no record and no state entry is silently dropped. The
//! window between sending `COMMIT` and receiving the ack is the classic
//! two-phase-commit uncertainty: on a link failure there, the sender
//! restores locally and the receiver (if it already installed) keeps
//! the copy — a real deployment closes this with a recovery log, which
//! is out of scope here and called out in the README.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crossbeam::mpsc;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum, WireError};
use elasticutor_core::Error;
use elasticutor_state::ShardSnapshot;
use parking_lot::Mutex;

use crate::executor::{ElasticExecutor, RemoteForwarder};
use crate::record::{monotonic_ns, Operator, Record};

/// `OFFER`: sender proposes migrating a shard (shard, entries, bytes).
pub const MSG_OFFER: u8 = 1;
/// `ACCEPT`: receiver agrees to adopt the offered shard.
pub const MSG_ACCEPT: u8 = 2;
/// `REJECT`: receiver declines the offer (reason attached).
pub const MSG_REJECT: u8 = 3;
/// `STATE`: one chunk of the shard snapshot (snapshot wire format).
pub const MSG_STATE: u8 = 4;
/// `COMMIT`: end of state; totals and end-to-end checksum for verify.
pub const MSG_COMMIT: u8 = 5;
/// `COMMIT_ACK`: receiver installed the state and closed its routing.
pub const MSG_COMMIT_ACK: u8 = 6;
/// `DONE`: sender replayed its pause buffer; receiver may open routing.
pub const MSG_DONE: u8 = 7;
/// `ABORT`: either side gives up on the in-flight migration (reason).
pub const MSG_ABORT: u8 = 8;
/// `DATA`: one forwarded record for a remotely-hosted shard.
pub const MSG_DATA: u8 = 9;
/// `APP`: opaque application payload (demo coordination traffic).
pub const MSG_APP: u8 = 10;

/// Internal writer-thread shutdown sentinel — never put on the wire.
/// (`LinkShared` itself holds an `out_tx` clone, so the writer cannot
/// rely on channel disconnection to exit.)
const MSG_CLOSE_INTERNAL: u8 = 0;

/// Value bytes per `STATE` chunk (big shards stream as many frames).
const STATE_CHUNK_BYTES: u64 = 256 * 1024;
/// How long the sender waits for `ACCEPT`.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(20);
/// How long the sender waits for `COMMIT_ACK` (covers install time).
const COMMIT_TIMEOUT: Duration = Duration::from_secs(60);

/// Errors surfaced by the migration transport. Every variant that can
/// occur after [`MigrationEndpoint::migrate_out`] paused the shard
/// implies the shard was restored locally (see the module docs for the
/// post-`COMMIT` uncertainty window).
#[derive(Debug)]
pub enum MigrateError {
    /// A local executor precondition failed (shard not local, shard
    /// mid-reassignment, …).
    Local(Error),
    /// The peer rejected the offer.
    Rejected(String),
    /// The peer aborted the migration mid-protocol.
    Aborted(String),
    /// The connection failed mid-protocol.
    PeerDisconnected,
    /// The peer did not answer within the protocol timeout.
    Timeout,
    /// Another outbound migration is already running on this link.
    MigrationInFlight,
    /// Malformed wire data from the peer.
    Wire(WireError),
    /// A socket-level error while establishing or closing the link.
    Io(std::io::Error),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Local(e) => write!(f, "local executor error: {e}"),
            MigrateError::Rejected(r) => write!(f, "peer rejected the migration: {r}"),
            MigrateError::Aborted(r) => write!(f, "peer aborted the migration: {r}"),
            MigrateError::PeerDisconnected => write!(f, "peer disconnected mid-migration"),
            MigrateError::Timeout => write!(f, "peer did not answer within the timeout"),
            MigrateError::MigrationInFlight => {
                write!(f, "an outbound migration is already in flight on this link")
            }
            MigrateError::Wire(e) => write!(f, "wire error: {e}"),
            MigrateError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<Error> for MigrateError {
    fn from(e: Error) -> Self {
        MigrateError::Local(e)
    }
}

impl From<WireError> for MigrateError {
    fn from(e: WireError) -> Self {
        MigrateError::Wire(e)
    }
}

impl From<std::io::Error> for MigrateError {
    fn from(e: std::io::Error) -> Self {
        MigrateError::Io(e)
    }
}

/// Timings and traffic of one completed outbound migration — the live
/// analogue of the paper's Figure 9b data points.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// The migrated shard.
    pub shard: ShardId,
    /// State entries shipped.
    pub entries: usize,
    /// Value bytes shipped (the paper's state size `s_j`).
    pub value_bytes: u64,
    /// Bytes put on the wire for the migration itself (control frames +
    /// encoded state, headers included; replayed live records excluded).
    pub wire_bytes: u64,
    /// Nanoseconds from initiating the pause until the shard's pending
    /// records were drained and its state extracted.
    pub drain_ns: u64,
    /// Total nanoseconds from initiating the pause until the shard was
    /// remote and the pause buffer replayed (submit-visible stall).
    pub elapsed_ns: u64,
}

/// What the reader thread tells a waiting [`MigrationEndpoint::migrate_out`].
enum PeerEvent {
    Accepted,
    Rejected(String),
    Committed,
    Aborted(String),
    Disconnected,
}

/// The sender-side registry of the (single) in-flight outbound
/// migration on a link.
struct PendingOut {
    shard: ShardId,
    events: Sender<PeerEvent>,
}

/// State shared between the endpoint handle, the reader, the writer,
/// and every remote forwarder installed in the executor.
struct LinkShared {
    /// Frames awaiting the writer thread: `(msg type, payload)` on a
    /// lock-free MPSC queue — the remote egress. A forwarder on the
    /// executor's fast path enqueues here wait-free (two atomic
    /// operations), so steady-state forwarding to a remote shard takes
    /// no lock anywhere: not the routing mutex (the shard word names
    /// the forwarder mirror) and not a channel mutex (this queue).
    out_tx: mpsc::Producer<(u8, Vec<u8>)>,
    pending: Mutex<Option<PendingOut>>,
    dead: AtomicBool,
    /// Bytes written to the socket so far (headers included).
    written: AtomicU64,
    /// Used to unblock the reader on close.
    stream: TcpStream,
}

impl LinkShared {
    fn fail(&self) {
        self.dead.store(true, Ordering::SeqCst);
        if let Some(p) = self.pending.lock().take() {
            let _ = p.events.send(PeerEvent::Disconnected);
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        // Wake the writer so it can observe the death and exit.
        self.out_tx.push((MSG_CLOSE_INTERNAL, Vec::new()));
    }
}

/// The receiver-side assembly of one inbound migration.
struct Incoming {
    shard: ShardId,
    expect_entries: u64,
    expect_bytes: u64,
    entries: Vec<(Key, Bytes)>,
    value_bytes: u64,
    checksum: Checksum,
    /// Set once `COMMIT` installed the state; between install and
    /// `DONE`, replayed `DATA` records bypass the adoption buffer.
    installed: bool,
}

/// Reader-side inbound migration state.
#[derive(Default)]
struct Inbound {
    /// The migration currently being assembled (at most one).
    current: Option<Incoming>,
    /// A migration this side aborted mid-stream: the sender's remaining
    /// `STATE`/`COMMIT` frames are already in flight and must drain
    /// harmlessly instead of reading as protocol violations.
    discarding: Option<ShardId>,
}

/// One side of a migration link: pairs an [`ElasticExecutor`] with a
/// duplex TCP connection to a peer process, forwards records of
/// remotely-hosted shards, and drives/answers shard migrations.
pub struct MigrationEndpoint<O: Operator> {
    executor: Arc<ElasticExecutor<O>>,
    shared: Arc<LinkShared>,
    app_rx: Receiver<Vec<u8>>,
    peer: SocketAddr,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl<O: Operator> MigrationEndpoint<O> {
    /// Accepts one peer connection from `listener` and starts the link.
    pub fn accept(
        executor: Arc<ElasticExecutor<O>>,
        listener: &TcpListener,
    ) -> Result<Self, MigrateError> {
        let (stream, peer) = listener.accept()?;
        Self::start(executor, stream, peer)
    }

    /// Connects to a listening peer and starts the link.
    pub fn connect(
        executor: Arc<ElasticExecutor<O>>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, MigrateError> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        Self::start(executor, stream, peer)
    }

    fn start(
        executor: Arc<ElasticExecutor<O>>,
        stream: TcpStream,
        peer: SocketAddr,
    ) -> Result<Self, MigrateError> {
        stream.set_nodelay(true)?;
        let (out_tx, out_rx) = mpsc::queue::<(u8, Vec<u8>)>();
        let (app_tx, app_rx) = unbounded::<Vec<u8>>();
        let shared = Arc::new(LinkShared {
            out_tx,
            pending: Mutex::new(None),
            dead: AtomicBool::new(false),
            written: AtomicU64::new(0),
            stream: stream.try_clone()?,
        });
        let writer = {
            let shared = Arc::clone(&shared);
            let stream = stream.try_clone()?;
            std::thread::Builder::new()
                .name("migrate-writer".into())
                .spawn(move || writer_loop(stream, out_rx, shared))
                .expect("spawn writer thread")
        };
        let reader = {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            std::thread::Builder::new()
                .name("migrate-reader".into())
                .spawn(move || reader_loop(stream, executor, shared, app_tx))
                .expect("spawn reader thread")
        };
        Ok(Self {
            executor,
            shared,
            app_rx,
            peer,
            reader: Some(reader),
            writer: Some(writer),
        })
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Whether the link is still usable.
    pub fn is_alive(&self) -> bool {
        !self.shared.dead.load(Ordering::SeqCst)
    }

    /// Bytes written to the socket so far (all traffic, headers
    /// included).
    pub fn bytes_sent(&self) -> u64 {
        self.shared.written.load(Ordering::Relaxed)
    }

    /// A forwarder routing records of a shard to this link's peer as
    /// `DATA` frames. Wait-free: the frame is encoded and pushed onto
    /// the link's lock-free egress queue (two atomic operations) — safe
    /// from the executor's fast path and from under its routing lock
    /// alike. Records offered after the link died are dropped, matching
    /// the executor's shutdown semantics.
    pub fn forwarder(&self) -> RemoteForwarder {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |shard: ShardId, record: Record| {
            if !shared.dead.load(Ordering::Relaxed) {
                shared.out_tx.push((MSG_DATA, encode_data(shard, &record)));
            }
        })
    }

    /// Declares `shards` as hosted by the peer (initial ownership
    /// partitioning, before records flow): each is marked remote in the
    /// executor with this link's forwarder.
    pub fn delegate_shards(&self, shards: &[ShardId]) -> Result<(), MigrateError> {
        for &shard in shards {
            self.executor.mark_remote(shard, self.forwarder())?;
        }
        Ok(())
    }

    /// Sends an opaque application payload to the peer (demo
    /// coordination traffic rides the same ordered link).
    pub fn send_app(&self, payload: Vec<u8>) -> Result<(), MigrateError> {
        self.send(MSG_APP, payload).map(|_| ())
    }

    /// Application payloads received from the peer, in arrival order.
    pub fn app_messages(&self) -> &Receiver<Vec<u8>> {
        &self.app_rx
    }

    fn send(&self, msg_type: u8, payload: Vec<u8>) -> Result<u64, MigrateError> {
        if !self.is_alive() {
            return Err(MigrateError::PeerDisconnected);
        }
        let bytes = wire::frame_wire_bytes(payload.len());
        self.shared.out_tx.push((msg_type, payload));
        Ok(bytes)
    }

    /// Migrates `shard` to the peer: the full pause → drain → stream →
    /// commit → replay sequence described in the module docs. Blocks
    /// until the shard is remote (success) or restored locally (any
    /// error). One outbound migration per link at a time.
    pub fn migrate_out(&self, shard: ShardId) -> Result<MigrationReport, MigrateError> {
        if !self.is_alive() {
            return Err(MigrateError::PeerDisconnected);
        }
        let (ev_tx, ev_rx) = unbounded();
        {
            let mut pending = self.shared.pending.lock();
            if pending.is_some() {
                return Err(MigrateError::MigrationInFlight);
            }
            *pending = Some(PendingOut {
                shard,
                events: ev_tx,
            });
        }
        let started = monotonic_ns();
        let snapshot = match self.executor.begin_migration(shard) {
            Ok(s) => s,
            Err(e) => {
                *self.shared.pending.lock() = None;
                return Err(MigrateError::Local(e));
            }
        };
        let drain_ns = monotonic_ns().saturating_sub(started);
        let result = self.stream_and_commit(shard, &snapshot, &ev_rx, started, drain_ns);
        *self.shared.pending.lock() = None;
        if let Err(e) = &result {
            // The shard must come back: reinstall the snapshot, release
            // the pause buffer to the original owner, resume routing.
            // Tell the peer too (best effort) so it can drop a
            // half-assembled copy.
            let mut reason = Vec::new();
            wire::put_u32(&mut reason, shard.0);
            wire::put_bytes(&mut reason, e.to_string().as_bytes());
            let _ = self.send(MSG_ABORT, reason);
            self.executor
                .abort_migration(snapshot)
                .expect("paused shard restores");
        }
        result
    }

    fn stream_and_commit(
        &self,
        shard: ShardId,
        snapshot: &ShardSnapshot,
        ev_rx: &Receiver<PeerEvent>,
        started: u64,
        drain_ns: u64,
    ) -> Result<MigrationReport, MigrateError> {
        let mut wire_bytes = 0u64;
        let mut offer = Vec::new();
        wire::put_u32(&mut offer, shard.0);
        wire::put_u64(&mut offer, snapshot.len() as u64);
        wire::put_u64(&mut offer, snapshot.value_bytes());
        wire_bytes += self.send(MSG_OFFER, offer)?;
        match recv_event(ev_rx, ACCEPT_TIMEOUT)? {
            PeerEvent::Accepted => {}
            PeerEvent::Rejected(r) => return Err(MigrateError::Rejected(r)),
            PeerEvent::Aborted(r) => return Err(MigrateError::Aborted(r)),
            PeerEvent::Disconnected => return Err(MigrateError::PeerDisconnected),
            PeerEvent::Committed => {
                return Err(MigrateError::Wire(WireError::Corrupt(
                    "peer acknowledged a commit before one was sent",
                )))
            }
        }
        let mut end_to_end = Checksum::new();
        for chunk in snapshot.chunks(STATE_CHUNK_BYTES) {
            let encoded = chunk.encode();
            // A single entry can exceed the chunk budget (entries are
            // indivisible); refuse it here rather than letting the
            // writer thread hit the frame cap and kill the whole link.
            if encoded.len() as u64 > u64::from(wire::MAX_FRAME_LEN) {
                return Err(MigrateError::Wire(WireError::Oversized(
                    encoded.len() as u64
                )));
            }
            chunk.fold_checksum(&mut end_to_end);
            wire_bytes += self.send(MSG_STATE, encoded)?;
        }
        let mut commit = Vec::new();
        wire::put_u32(&mut commit, shard.0);
        wire::put_u64(&mut commit, snapshot.len() as u64);
        wire::put_u64(&mut commit, snapshot.value_bytes());
        wire::put_u64(&mut commit, end_to_end.finish());
        wire_bytes += self.send(MSG_COMMIT, commit)?;
        match recv_event(ev_rx, COMMIT_TIMEOUT) {
            Ok(PeerEvent::Committed) => {}
            Ok(PeerEvent::Aborted(r)) => return Err(MigrateError::Aborted(r)),
            Ok(PeerEvent::Rejected(r)) => return Err(MigrateError::Rejected(r)),
            Ok(PeerEvent::Disconnected) | Err(MigrateError::PeerDisconnected) => {
                return Err(MigrateError::PeerDisconnected)
            }
            Ok(PeerEvent::Accepted) => {
                return Err(MigrateError::Wire(WireError::Corrupt(
                    "duplicate accept from peer",
                )))
            }
            Err(e) => {
                // Post-COMMIT uncertainty: the peer may or may not have
                // installed. Kill the link so no later protocol step
                // can half-run, then restore locally (module docs).
                self.shared.fail();
                return Err(e);
            }
        }
        // Atomically: replay the pause buffer as DATA frames, append
        // DONE, flip the shard to remote routing.
        let forward = self.forwarder();
        let out_tx = self.shared.out_tx.clone();
        let mut done = Vec::new();
        wire::put_u32(&mut done, shard.0);
        wire_bytes += wire::frame_wire_bytes(done.len());
        self.executor.complete_migration(shard, forward, move || {
            out_tx.push((MSG_DONE, done));
        })?;
        Ok(MigrationReport {
            shard,
            entries: snapshot.len(),
            value_bytes: snapshot.value_bytes(),
            wire_bytes,
            drain_ns,
            elapsed_ns: monotonic_ns().saturating_sub(started),
        })
    }

    /// Shuts the link down: closes the socket, stops both threads, and
    /// returns once they exited. Records later submitted for remote
    /// shards are dropped (their forwarders outlive the link).
    pub fn close(mut self) {
        self.shutdown_threads();
    }

    fn shutdown_threads(&mut self) {
        self.shared.fail();
        if let Some(writer) = self.writer.take() {
            // The writer exits when every out_tx clone is gone or a
            // write fails; failing the link makes its writes fail fast.
            let _ = writer.join();
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl<O: Operator> Drop for MigrationEndpoint<O> {
    fn drop(&mut self) {
        self.shutdown_threads();
    }
}

impl<O: Operator> std::fmt::Debug for MigrationEndpoint<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationEndpoint")
            .field("peer", &self.peer)
            .field("alive", &self.is_alive())
            .finish()
    }
}

fn recv_event(ev_rx: &Receiver<PeerEvent>, timeout: Duration) -> Result<PeerEvent, MigrateError> {
    match ev_rx.recv_timeout(timeout) {
        Ok(ev) => Ok(ev),
        Err(RecvTimeoutError::Timeout) => Err(MigrateError::Timeout),
        Err(RecvTimeoutError::Disconnected) => Err(MigrateError::PeerDisconnected),
    }
}

/// Encodes a `DATA` frame payload: shard, key, seq, payload bytes. The
/// creation timestamp deliberately does not travel — monotonic origins
/// differ across processes, so the receiver restamps on decode.
pub fn encode_data(shard: ShardId, record: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + record.payload.len());
    wire::put_u32(&mut out, shard.0);
    wire::put_u64(&mut out, record.key.value());
    wire::put_u64(&mut out, record.seq);
    wire::put_bytes(&mut out, &record.payload);
    out
}

/// Decodes a `DATA` frame payload, restamping the record's creation
/// time with the local monotonic clock.
pub fn decode_data(payload: &[u8]) -> Result<(ShardId, Record), WireError> {
    let mut r = ByteReader::new(payload);
    let shard = ShardId(r.u32()?);
    let key = Key(r.u64()?);
    let seq = r.u64()?;
    let body = Bytes::copy_from_slice(r.bytes()?);
    if !r.is_empty() {
        return Err(WireError::Corrupt("trailing bytes in data frame"));
    }
    Ok((
        shard,
        Record::new_at(key, body, monotonic_ns()).with_seq(seq),
    ))
}

fn writer_loop(
    stream: TcpStream,
    mut out_rx: mpsc::Consumer<(u8, Vec<u8>)>,
    shared: Arc<LinkShared>,
) {
    let mut w = BufWriter::new(stream);
    loop {
        // The park timeout is a safety net only: producers wake the
        // consumer on the empty edge, and `fail()` always enqueues the
        // close sentinel.
        let Some((msg_type, payload)) = out_rx.pop_wait(Duration::from_millis(50)) else {
            continue;
        };
        if msg_type == MSG_CLOSE_INTERNAL {
            let _ = w.flush();
            return;
        }
        let bytes = wire::frame_wire_bytes(payload.len());
        if wire::write_frame(&mut w, msg_type, &payload).is_err() {
            shared.fail();
            return;
        }
        shared.written.fetch_add(bytes, Ordering::Relaxed);
        // Flush once the queue runs dry, amortizing bursts.
        if out_rx.is_empty() && w.flush().is_err() {
            shared.fail();
            return;
        }
    }
}

fn reader_loop<O: Operator>(
    stream: TcpStream,
    executor: Arc<ElasticExecutor<O>>,
    shared: Arc<LinkShared>,
    app_tx: Sender<Vec<u8>>,
) {
    let mut r = BufReader::new(stream);
    let mut inbound = Inbound::default();
    while let Ok((msg_type, payload)) = wire::read_frame(&mut r) {
        if handle_frame(
            &executor,
            &shared,
            &app_tx,
            &mut inbound,
            msg_type,
            &payload,
        )
        .is_err()
        {
            break;
        }
    }
    // EOF, socket error, or protocol violation: fail the link. If an
    // inbound migration already installed its state, finish the
    // adoption so the shard is servable (the sender's replay is lost
    // with the link — the README documents the uncertainty window).
    shared.fail();
    if let Some(inc) = inbound.current.take() {
        if inc.installed {
            let _ = executor.adopt_finish(inc.shard);
        }
    }
}

/// Processes one inbound frame. `Err` kills the link (protocol
/// violation); per-migration failures answer the peer instead.
fn handle_frame<O: Operator>(
    executor: &Arc<ElasticExecutor<O>>,
    shared: &Arc<LinkShared>,
    app_tx: &Sender<Vec<u8>>,
    inbound: &mut Inbound,
    msg_type: u8,
    payload: &[u8],
) -> Result<(), WireError> {
    match msg_type {
        MSG_OFFER => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let expect_entries = p.u64()?;
            let expect_bytes = p.u64()?;
            // A fresh offer means the sender moved past any stream this
            // side was discarding.
            inbound.discarding = None;
            let refusal = if inbound.current.is_some() {
                Some("an inbound migration is already in progress".to_string())
            } else {
                executor.can_adopt(shard).err().map(|e| e.to_string())
            };
            let mut reply = Vec::new();
            wire::put_u32(&mut reply, shard.0);
            match refusal {
                Some(reason) => {
                    wire::put_bytes(&mut reply, reason.as_bytes());
                    shared.out_tx.push((MSG_REJECT, reply));
                }
                None => {
                    inbound.current = Some(Incoming {
                        shard,
                        expect_entries,
                        expect_bytes,
                        entries: Vec::new(),
                        value_bytes: 0,
                        checksum: Checksum::new(),
                        installed: false,
                    });
                    shared.out_tx.push((MSG_ACCEPT, reply));
                }
            }
        }
        MSG_STATE => {
            let chunk = ShardSnapshot::decode(payload)?;
            if inbound.discarding == Some(chunk.shard) {
                // Tail of a stream this side already aborted.
                return Ok(());
            }
            let inc = inbound
                .current
                .as_mut()
                .ok_or(WireError::Corrupt("state chunk without an offer"))?;
            if chunk.shard != inc.shard || inc.installed {
                return Err(WireError::Corrupt("state chunk out of sequence"));
            }
            chunk.fold_checksum(&mut inc.checksum);
            inc.value_bytes += chunk.value_bytes();
            inc.entries.extend(chunk.entries);
            // Enforce the OFFER-announced totals as they stream, not
            // only at COMMIT: a runaway sender must not be able to grow
            // the receiver's assembly buffer without bound.
            if inc.entries.len() as u64 > inc.expect_entries || inc.value_bytes > inc.expect_bytes {
                let shard = inc.shard;
                inbound.current = None;
                inbound.discarding = Some(shard);
                let mut reply = Vec::new();
                wire::put_u32(&mut reply, shard.0);
                wire::put_bytes(&mut reply, b"state stream exceeds the offered totals");
                shared.out_tx.push((MSG_ABORT, reply));
            }
        }
        MSG_COMMIT => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let entries = p.u64()?;
            let value_bytes = p.u64()?;
            let checksum = p.u64()?;
            if inbound.discarding == Some(shard) {
                // End of a discarded stream; the sender is now waiting
                // for an ack and will see the ABORT already sent.
                inbound.discarding = None;
                return Ok(());
            }
            let inc = inbound
                .current
                .as_mut()
                .ok_or(WireError::Corrupt("commit without an offer"))?;
            let mut failure: Option<String> = None;
            if shard != inc.shard || inc.installed {
                return Err(WireError::Corrupt("commit out of sequence"));
            }
            if entries != inc.entries.len() as u64
                || entries != inc.expect_entries
                || value_bytes != inc.value_bytes
                || value_bytes != inc.expect_bytes
                || checksum != inc.checksum.finish()
            {
                failure = Some("state totals or checksum mismatch".to_string());
            } else {
                let snapshot = ShardSnapshot {
                    shard: inc.shard,
                    entries: std::mem::take(&mut inc.entries),
                };
                if let Err(e) = executor.adopt_install(snapshot) {
                    failure = Some(e.to_string());
                }
            }
            let mut reply = Vec::new();
            wire::put_u32(&mut reply, shard.0);
            match failure {
                Some(reason) => {
                    inbound.current = None;
                    wire::put_bytes(&mut reply, reason.as_bytes());
                    shared.out_tx.push((MSG_ABORT, reply));
                }
                None => {
                    inc.installed = true;
                    shared.out_tx.push((MSG_COMMIT_ACK, reply));
                }
            }
        }
        MSG_DONE => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            match inbound.current.take() {
                Some(inc) if inc.shard == shard && inc.installed => {
                    // Reopen routing: local records buffered during
                    // adoption drain behind the replayed ones.
                    let _ = executor.adopt_finish(shard);
                }
                _ => return Err(WireError::Corrupt("done out of sequence")),
            }
        }
        MSG_DATA => {
            let (shard, record) = decode_data(payload)?;
            match inbound.current.as_ref() {
                // Replay window of an inbound migration: bypass the
                // adoption buffer so replayed records run first.
                Some(inc) if inc.shard == shard && inc.installed => {
                    let _ = executor.deliver_to_owner(shard, record);
                }
                _ => executor.receive_remote(shard, record),
            }
        }
        MSG_ACCEPT | MSG_COMMIT_ACK => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let pending = shared.pending.lock();
            match pending.as_ref() {
                Some(p) if p.shard == shard => {
                    let ev = if msg_type == MSG_ACCEPT {
                        PeerEvent::Accepted
                    } else {
                        PeerEvent::Committed
                    };
                    let _ = p.events.send(ev);
                }
                // Stale answer to a migration we already gave up on.
                _ => {}
            }
        }
        MSG_REJECT | MSG_ABORT => {
            let mut p = ByteReader::new(payload);
            let shard = ShardId(p.u32()?);
            let reason = String::from_utf8_lossy(p.bytes().unwrap_or(b"")).into_owned();
            let delivered = {
                let pending = shared.pending.lock();
                match pending.as_ref() {
                    Some(p) if p.shard == shard => {
                        let ev = if msg_type == MSG_REJECT {
                            PeerEvent::Rejected(reason.clone())
                        } else {
                            PeerEvent::Aborted(reason.clone())
                        };
                        let _ = p.events.send(ev);
                        true
                    }
                    _ => false,
                }
            };
            if !delivered {
                // The peer abandoned the migration it was sending us.
                if let Some(inc) = inbound.current.take() {
                    if inc.shard != shard {
                        inbound.current = Some(inc);
                    } else if inc.installed {
                        // Already installed and acked: keep the shard
                        // servable; the abort crossed our ack.
                        let _ = executor.adopt_finish(inc.shard);
                    }
                }
            }
        }
        MSG_APP => {
            let _ = app_tx.send(payload.to_vec());
        }
        _ => return Err(WireError::Corrupt("unknown message type")),
    }
    Ok(())
}
