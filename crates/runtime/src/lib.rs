//! # elasticutor-runtime
//!
//! A live, multithreaded elastic executor — the paper's §3 mechanisms on
//! real OS threads rather than the simulated substrate:
//!
//! * task threads (one per granted core) pulling from private FIFO
//!   queues;
//! * a two-tier routing table in front of them (key → shard hash, shard →
//!   task map);
//! * a process-wide shared [`elasticutor_state::StateStore`] giving every
//!   task per-key state access — so intra-process shard reassignment
//!   moves **no state at all**;
//! * the §3.3 consistent-reassignment protocol: pause → labeling tuple
//!   through the source task's queue → (optional state hand-off) → map
//!   update → buffered-tuple flush;
//! * online scaling: add or remove task threads while tuples flow;
//! * an intra-executor rebalancer driven by per-shard load counters.
//!
//! Beyond the single executor, the crate hosts the live multi-operator
//! layer:
//!
//! * [`dag::LiveDag`] — elastic executors wired into an arbitrary
//!   acyclic operator graph (fan-out by grouping, order-preserving
//!   fan-in, per-edge bounded channels with backpressure budgets),
//!   driven directly by a validated `elasticutor_core` topology;
//! * [`pipeline::Pipeline`] — the chain-shaped convenience API, now a
//!   thin wrapper building a chain topology over [`dag::LiveDag`];
//! * [`controller::LiveController`] — a scheduling thread that samples
//!   per-operator load and reallocates task threads across the graph
//!   through the model-based `elasticutor-scheduler` (§4), live.
//!
//! The multi-*node* layer (remote tasks, the RC baseline, the network
//! model) lives in `elasticutor-cluster`, where hardware is simulated;
//! this crate is the proof that the executor- and operator-level
//! mechanisms work for real, with real races, and is what the examples
//! and property tests drive.
//!
//! ```
//! use elasticutor_runtime::{ElasticExecutor, ExecutorConfig, Ingest, Operator, Record};
//! use elasticutor_state::StateHandle;
//! use bytes::Bytes;
//!
//! struct Count;
//! impl Operator for Count {
//!     fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
//!         state.update(record.key, |old| {
//!             let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
//!             Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
//!         });
//!         Vec::new()
//!     }
//! }
//!
//! let exec = ElasticExecutor::start(ExecutorConfig::default(), Count);
//! exec.ingest(Record::new(7u64.into(), Bytes::new()));
//! exec.shutdown();
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod dag;
pub mod executor;
pub mod group;
pub mod ingest;
pub mod journal;
pub mod migrate;
pub mod order;
pub mod pipeline;
pub mod record;

pub use controller::{ControllerConfig, ControllerEvent, LambdaProbe, LiveController};
pub use dag::{LiveDag, LiveDagBuilder, OperatorStats, SourcePort};
pub use executor::{
    ElasticExecutor, ExecutorConfig, ExecutorStats, LoadSample, ProgressNotifier, RemoteForwarder,
};
pub use group::{ExecutorGroup, RescaleEvent, SupervisionReport};
pub use ingest::{
    spawn_sink, spawn_source, Ingest, Pull, Sink, SinkHandle, Source, SourceHandle, VecSource,
};
pub use journal::{JournalState, RecoveryJournal, ShardFate};
pub use migrate::{
    Backoff, LinkEvent, MigrateError, MigrationConfig, MigrationEndpoint, MigrationReport,
    RecoveryReport,
};
pub use order::FifoChecker;
pub use pipeline::{BoxedOperator, Pipeline, PipelineBuilder, StageStats};
pub use record::{monotonic_ns, Operator, Record, RecordBatch};
