//! End-to-end egress plane tests: delivery, FIFO, spill-while-
//! unreachable, failover, and rewind-retransmission — all over real
//! loopback TCP.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_egress::{frame, EgressConfig, EgressServer, EgressServerConfig, TcpEgress};
use elasticutor_ingress::FrameScanner;
use elasticutor_runtime::{Backoff, ExecutorConfig, FifoChecker, Ingest, Pipeline, Record, Sink};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "elasticutor-egress-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// Collects deliveries: per-key FIFO check plus a (key → seqs) map.
struct Collector {
    fifo: FifoChecker,
    total: AtomicU64,
    by_key: Mutex<HashMap<u64, Vec<u64>>>,
}

impl Collector {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            fifo: FifoChecker::new(),
            total: AtomicU64::new(0),
            by_key: Mutex::new(HashMap::new()),
        })
    }

    fn deliver_fn(self: &Arc<Self>) -> Box<elasticutor_egress::DeliverFn> {
        let me = Arc::clone(self);
        Box::new(move |_seq, key, rec_seq, _payload| {
            me.fifo.observe(key, rec_seq);
            me.total.fetch_add(1, Ordering::AcqRel);
            me.by_key
                .lock()
                .unwrap()
                .entry(key.value())
                .or_default()
                .push(rec_seq);
        })
    }
}

fn records(keys: u64, per_key: u64) -> Vec<Record> {
    // Round-robin across keys, per-key seqs 1..=per_key.
    let mut out = Vec::new();
    for s in 1..=per_key {
        for k in 0..keys {
            out.push(Record::new(Key(k), Bytes::from(vec![k as u8; 16])).with_seq(s));
        }
    }
    out
}

/// An ephemeral loopback address nothing is listening on (bound, then
/// dropped — the port stays free long enough for a test).
fn dead_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap();
    drop(l);
    addr.to_string()
}

#[test]
fn delivers_everything_in_per_key_fifo_order() {
    let dir = tmp_dir("basic");
    let collector = Collector::new();
    let server = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0"),
        collector.deliver_fn(),
    )
    .unwrap();

    let mut egress = TcpEgress::new(EgressConfig::new(
        server.local_addr().to_string(),
        dir.join("spill"),
    ))
    .unwrap();

    const KEYS: u64 = 8;
    const PER_KEY: u64 = 200;
    for chunk in records(KEYS, PER_KEY).chunks(37) {
        egress.consume(chunk.to_vec());
    }
    let handle = egress.handle();
    assert!(handle.drain(Duration::from_secs(10)), "drain timed out");
    let stats = egress.shutdown(Duration::from_secs(5));
    assert_eq!(stats.records_accepted, KEYS * PER_KEY);
    assert_eq!(stats.acked, stats.last_appended);

    assert_eq!(collector.total.load(Ordering::Acquire), KEYS * PER_KEY);
    assert!(collector.fifo.is_clean(), "per-key FIFO violated");
    let by_key = collector.by_key.lock().unwrap();
    for k in 0..KEYS {
        assert_eq!(by_key[&k], (1..=PER_KEY).collect::<Vec<_>>(), "key {k}");
    }
    // Healthy path: the outbox is trimmed at ACK pace, nothing retained.
    assert_eq!(stats.spill_frames, 0);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_attach_sink_routes_dag_output_through_egress() {
    let dir = tmp_dir("pipeline");
    let collector = Collector::new();
    let server = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0"),
        collector.deliver_fn(),
    )
    .unwrap();

    let pipe = Pipeline::builder()
        .stage(
            "pass",
            ExecutorConfig {
                num_shards: 8,
                ..ExecutorConfig::default()
            },
            |r: &Record, _s: &elasticutor_state::StateHandle| vec![r.clone()],
        )
        .build();
    let egress = TcpEgress::new(EgressConfig::new(
        server.local_addr().to_string(),
        dir.join("spill"),
    ))
    .unwrap();
    let handle = egress.handle();
    let sink = pipe.attach_sink("egress", egress);

    const N: u64 = 500;
    for i in 0..N {
        pipe.ingest(Record::new(Key(i % 4), Bytes::from(vec![1u8; 8])).with_seq(i / 4 + 1));
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            handle.stats().records_accepted == N
        }),
        "DAG output never reached the sink: {:?}",
        handle.stats()
    );
    pipe.shutdown();
    let (egress, consumed) = sink.join();
    assert_eq!(consumed, N);
    assert!(handle.drain(Duration::from_secs(10)), "drain timed out");
    egress.shutdown(Duration::from_secs(5));

    assert_eq!(collector.total.load(Ordering::Acquire), N);
    assert!(collector.fifo.is_clean());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unreachable_sink_spills_without_blocking_then_drains_on_restore() {
    let dir = tmp_dir("degraded");
    let addr = dead_addr();
    let mut egress = TcpEgress::new(EgressConfig::new(&addr, dir.join("spill")).with_retry(
        Backoff {
            base: Duration::from_millis(10),
            factor: 2.0,
            cap: Duration::from_millis(50),
            max_attempts: u32::MAX,
        },
    ))
    .unwrap();

    // With nobody listening, consume() must accept everything at disk
    // speed: the DAG is never exposed to the dead sink.
    const KEYS: u64 = 4;
    const PER_KEY: u64 = 250;
    let accept_start = Instant::now();
    for chunk in records(KEYS, PER_KEY).chunks(50) {
        egress.consume(chunk.to_vec());
    }
    let accept_elapsed = accept_start.elapsed();
    let stats = egress.stats();
    assert_eq!(stats.records_accepted, KEYS * PER_KEY);
    assert_eq!(stats.acked, 0, "nothing can be acked while unreachable");
    assert!(stats.spill_frames > 0, "outbox should hold the backlog");
    assert!(
        accept_elapsed < Duration::from_secs(2),
        "consume() blocked on a dead sink: {accept_elapsed:?}"
    );
    assert!(stats.connect_failures > 0, "sender should be retrying");

    // Sink comes back on the same address: the backlog drains in order.
    let collector = Collector::new();
    let server =
        EgressServer::bind(EgressServerConfig::new(&addr), collector.deliver_fn()).unwrap();
    let handle = egress.handle();
    assert!(
        handle.drain(Duration::from_secs(10)),
        "backlog never drained"
    );
    egress.shutdown(Duration::from_secs(5));

    assert_eq!(collector.total.load(Ordering::Acquire), KEYS * PER_KEY);
    assert!(collector.fifo.is_clean());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fails_over_to_standby_when_primary_is_dead() {
    let dir = tmp_dir("failover");
    let collector = Collector::new();
    let standby = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0"),
        collector.deliver_fn(),
    )
    .unwrap();

    let mut egress = TcpEgress::new(
        EgressConfig::new(dead_addr(), dir.join("spill"))
            .with_standby(standby.local_addr().to_string())
            .with_retry(Backoff {
                base: Duration::from_millis(5),
                factor: 2.0,
                cap: Duration::from_millis(20),
                max_attempts: 2,
            }),
    )
    .unwrap();

    const N: usize = 300;
    egress.consume(records(3, 100));
    let handle = egress.handle();
    assert!(
        handle.drain(Duration::from_secs(10)),
        "failover never drained"
    );
    let stats = egress.shutdown(Duration::from_secs(5));
    assert!(stats.failovers >= 1, "expected a failover: {stats:?}");
    assert_eq!(collector.total.load(Ordering::Acquire), N as u64);
    assert!(collector.fifo.is_clean());
    standby.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A scripted receiver that speaks just enough protocol to be rude: it
/// HELLOs, reads frames, but never ACKs — then drops the connection.
/// The sender must hit its ACK deadline, reconnect, and retransmit;
/// the real server it reaches next must see every record exactly once.
#[test]
fn ack_starvation_forces_rewind_retransmit_with_bounded_dups() {
    let dir = tmp_dir("rewind");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let rude = std::thread::spawn(move || {
        // Session 1: HELLO(0), swallow frames, never ACK, hang up after
        // the first frame arrives.
        let (mut sock, _) = listener.accept().unwrap();
        let mut hello = Vec::new();
        frame::encode_ctrl_frame(&mut hello, frame::MSG_EGRESS_HELLO, 0);
        use std::io::{Read, Write};
        sock.write_all(&hello).unwrap();
        let mut scanner = FrameScanner::new();
        let mut buf = [0u8; 4096];
        let mut swallowed = 0u64;
        loop {
            let n = sock.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            scanner.extend(&buf[..n]);
            if let Some((t, payload)) = scanner.next_frame().unwrap() {
                assert_eq!(t, frame::MSG_EGRESS_DATA);
                let f = frame::decode_data_frame(&payload).unwrap();
                swallowed += f.records.len() as u64;
                break;
            }
        }
        drop(sock);
        // Give the handoff to the real server, which now owns `addr`'s
        // traffic by taking over the listener.
        (listener, swallowed)
    });

    let mut egress = TcpEgress::new(
        EgressConfig::new(addr.to_string(), dir.join("spill"))
            .with_ack_deadline(Duration::from_millis(100)),
    )
    .unwrap();
    const KEYS: u64 = 4;
    const PER_KEY: u64 = 50;
    for chunk in records(KEYS, PER_KEY).chunks(20) {
        egress.consume(chunk.to_vec());
    }
    let (listener, swallowed) = rude.join().unwrap();
    assert!(swallowed > 0, "rude server saw no frames");

    // Session 2+: a well-behaved server on the SAME listener.
    let collector = Collector::new();
    let server = EgressServer::bind_on(
        listener,
        EgressServerConfig::new("127.0.0.1:0"),
        collector.deliver_fn(),
    )
    .unwrap();
    let handle = egress.handle();
    assert!(
        handle.drain(Duration::from_secs(10)),
        "retransmit never drained"
    );
    let stats = egress.shutdown(Duration::from_secs(5));

    // Everything the rude server swallowed was retransmitted…
    assert!(
        stats.records_retransmitted >= swallowed,
        "expected >= {swallowed} retransmits, got {}",
        stats.records_retransmitted
    );
    // …and the receiver saw every record exactly once (its watermark
    // started at 0, so no overlap was deliverable twice), in order.
    assert_eq!(collector.total.load(Ordering::Acquire), KEYS * PER_KEY);
    assert!(collector.fifo.is_clean());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn egress_restart_resends_unacked_spill() {
    let dir = tmp_dir("restart");
    let spill = dir.join("spill");
    // Phase 1: no sink reachable — accept records, then drop the sink
    // without draining (simulates the egress process dying).
    let addr = dead_addr();
    {
        let mut egress = TcpEgress::new(EgressConfig::new(&addr, &spill)).unwrap();
        egress.consume(records(5, 40));
        let s = egress.stats();
        assert_eq!(s.records_accepted, 200);
        assert_eq!(s.acked, 0);
        // Dropped, not shutdown: the outbox stays on disk.
    }
    // Phase 2: a fresh egress on the same spill dir, sink now alive —
    // the recovered outbox drains with nothing lost.
    let collector = Collector::new();
    let server =
        EgressServer::bind(EgressServerConfig::new(&addr), collector.deliver_fn()).unwrap();
    let egress = TcpEgress::new(EgressConfig::new(&addr, &spill)).unwrap();
    let handle = egress.handle();
    assert!(
        handle.drain(Duration::from_secs(10)),
        "recovered outbox never drained"
    );
    egress.shutdown(Duration::from_secs(5));
    assert_eq!(collector.total.load(Ordering::Acquire), 200);
    assert!(collector.fifo.is_clean());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn receiver_watermark_dedups_duplicate_frames() {
    // Drive a server directly with raw frames, including a full resend
    // of an already-delivered range — the dedup window must swallow it.
    let collector = Collector::new();
    let server = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0"),
        collector.deliver_fn(),
    )
    .unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    use std::io::{Read, Write};
    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();

    // Read the HELLO.
    let mut scanner = FrameScanner::new();
    let mut buf = [0u8; 1024];
    let wm = loop {
        let n = sock.read(&mut buf).unwrap();
        scanner.extend(&buf[..n]);
        if let Some((t, payload)) = scanner.next_frame().unwrap() {
            assert_eq!(t, frame::MSG_EGRESS_HELLO);
            break frame::decode_ctrl_frame(t, &payload).unwrap();
        }
    };
    assert_eq!(wm, 0);

    let batch = records(2, 5); // delivery seqs 1..=10
    let mut data = Vec::new();
    frame::encode_data_frame(&mut data, 1, &batch);
    sock.write_all(&data).unwrap();
    // Resend the identical frame (a rewound sender does exactly this),
    // then a fresh one overlapping nothing.
    sock.write_all(&data).unwrap();
    let mut cont = Vec::new();
    for s in 6..=7u64 {
        for k in 0..2u64 {
            cont.push(Record::new(Key(k), Bytes::from(vec![k as u8; 16])).with_seq(s));
        }
    }
    let mut next = Vec::new();
    frame::encode_data_frame(&mut next, 11, &cont);
    sock.write_all(&next).unwrap();

    assert!(wait_until(Duration::from_secs(5), || {
        server.stats().records_delivered == 14
    }));
    let stats = server.stats();
    assert_eq!(stats.records_delivered, 14, "10 + 4 unique records");
    assert_eq!(stats.duplicates_dropped, 10, "full resend dropped");
    assert_eq!(stats.watermark, 14);
    assert!(collector.fifo.is_clean());
    drop(sock);
    server.shutdown();
}
