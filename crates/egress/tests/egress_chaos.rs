//! Byte-level chaos against the egress wire protocol, mirroring the
//! WAL's `wal_chaos` and the migration plane's `wire_chaos` suites —
//! but over a **real TCP stream**: a tee proxy between a live
//! [`TcpEgress`] and [`EgressServer`] captures both directions of an
//! actual session (DATA frames one way, HELLO + ACK frames the other),
//! and the sweeps run against those captured bytes.
//!
//! Contract under damage: every truncation point and every single-bit
//! flip yields either a clean prefix of the original frames or a typed
//! error — never a panic, never an altered record, and (for the
//! live-server replay sweep) never a duplicate beyond the watermark
//! dedup window.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_core::wire::WireError;
use elasticutor_egress::frame::{
    decode_ctrl_frame, decode_data_frame, DataFrame, MSG_EGRESS_ACK, MSG_EGRESS_DATA,
    MSG_EGRESS_HELLO,
};
use elasticutor_egress::{EgressConfig, EgressServer, EgressServerConfig, TcpEgress};
use elasticutor_ingress::FrameScanner;
use elasticutor_runtime::{Record, Sink};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "elasticutor-egress-chaos-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Captures one real egress session through a tee proxy and returns
/// `(client_to_server_bytes, server_to_client_bytes)`.
fn capture_session() -> (Vec<u8>, Vec<u8>) {
    let dir = tmp_dir("capture");
    let delivered = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&delivered);
    let server = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0"),
        Box::new(move |_, _, _, _| {
            d.fetch_add(1, Ordering::AcqRel);
        }),
    )
    .unwrap();
    let server_addr = server.local_addr();

    // The tee proxy: one accepted client, bytes copied both ways and
    // recorded.
    let proxy = TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy_addr = proxy.local_addr().unwrap();
    let c2s = Arc::new(Mutex::new(Vec::new()));
    let s2c = Arc::new(Mutex::new(Vec::new()));
    let (c2s_t, s2c_t) = (Arc::clone(&c2s), Arc::clone(&s2c));
    let proxy_thread = std::thread::spawn(move || {
        let (client, _) = proxy.accept().unwrap();
        let upstream = TcpStream::connect(server_addr).unwrap();
        let (mut cr, mut uw) = (client.try_clone().unwrap(), upstream.try_clone().unwrap());
        let (mut ur, mut cw) = (upstream, client);
        let up = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            while let Ok(n) = cr.read(&mut buf) {
                if n == 0 {
                    break;
                }
                c2s_t.lock().unwrap().extend_from_slice(&buf[..n]);
                if uw.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            let _ = uw.shutdown(std::net::Shutdown::Write);
        });
        let mut buf = [0u8; 4096];
        while let Ok(n) = ur.read(&mut buf) {
            if n == 0 {
                break;
            }
            s2c_t.lock().unwrap().extend_from_slice(&buf[..n]);
            if cw.write_all(&buf[..n]).is_err() {
                break;
            }
        }
        let _ = up.join();
    });

    let mut egress =
        TcpEgress::new(EgressConfig::new(proxy_addr.to_string(), dir.join("spill"))).unwrap();
    // A few frames with mixed batch sizes and payloads.
    for (i, n) in [7usize, 1, 13, 4].iter().enumerate() {
        let batch: Vec<Record> = (0..*n)
            .map(|j| {
                Record::new(
                    Key((j % 3) as u64),
                    Bytes::from(vec![(i * 31 + j) as u8; 5 + (j * 11) % 40]),
                )
                .with_seq((i * 20 + j / 3 + 1) as u64)
            })
            .collect();
        egress.consume(batch);
    }
    assert!(egress.handle().drain(Duration::from_secs(10)));
    egress.shutdown(Duration::from_secs(5));
    server.shutdown();
    let _ = proxy_thread.join();
    assert_eq!(delivered.load(Ordering::Acquire), 25);
    std::fs::remove_dir_all(&dir).ok();
    (
        Arc::try_unwrap(c2s).unwrap().into_inner().unwrap(),
        Arc::try_unwrap(s2c).unwrap().into_inner().unwrap(),
    )
}

/// Scans `data` to the end, returning every decoded DATA frame; any
/// scanner or decode error is returned as `Err` (typed, not a panic).
fn scan_data_frames(data: &[u8]) -> Result<Vec<DataFrame>, WireError> {
    let mut scanner = FrameScanner::new();
    scanner.extend(data);
    let mut frames = Vec::new();
    while let Some((t, payload)) = scanner.next_frame()? {
        if t != MSG_EGRESS_DATA {
            return Err(WireError::Corrupt("unexpected frame type"));
        }
        frames.push(decode_data_frame(&payload)?);
    }
    Ok(frames)
}

/// Scans `data` as the receiver→sender direction: one HELLO, then ACKs.
fn scan_ctrl_frames(data: &[u8]) -> Result<Vec<(u8, u64)>, WireError> {
    let mut scanner = FrameScanner::new();
    scanner.extend(data);
    let mut frames = Vec::new();
    while let Some((t, payload)) = scanner.next_frame()? {
        if t != MSG_EGRESS_HELLO && t != MSG_EGRESS_ACK {
            return Err(WireError::Corrupt("unexpected frame type"));
        }
        frames.push((t, decode_ctrl_frame(t, &payload)?));
    }
    Ok(frames)
}

fn assert_frame_prefix(got: &[DataFrame], original: &[DataFrame], label: &str) {
    assert!(
        got.len() <= original.len(),
        "{label}: more frames out than in"
    );
    for (i, (g, o)) in got.iter().zip(original).enumerate() {
        assert_eq!(g, o, "{label}: frame {i} altered");
    }
}

#[test]
fn captured_stream_truncation_and_flip_sweeps() {
    let (c2s, s2c) = capture_session();
    assert!(!c2s.is_empty() && !s2c.is_empty(), "capture failed");
    let original = scan_data_frames(&c2s).expect("clean capture decodes");
    assert_eq!(
        original.iter().map(|f| f.records.len()).sum::<usize>(),
        25,
        "capture should hold the whole session"
    );
    let original_ctrl = scan_ctrl_frames(&s2c).expect("clean ctrl capture decodes");
    assert_eq!(original_ctrl[0].0, MSG_EGRESS_HELLO);

    // Truncation at every byte of the DATA direction: a cut stream is a
    // clean prefix of the real frames, never an invention.
    for n in 0..=c2s.len() {
        match scan_data_frames(&c2s[..n]) {
            Ok(frames) => assert_frame_prefix(&frames, &original, &format!("truncate {n}")),
            Err(_) => panic!("truncation at {n} must be Ok (partial frame pending), scanner errors only on damage"),
        }
    }

    // Single-bit flip at every byte of the DATA direction: typed error
    // or an unaltered prefix — record corruption is always caught by
    // the frame checksum.
    let mut flip_errors = 0usize;
    for i in 0..c2s.len() {
        let mut bad = c2s.clone();
        bad[i] ^= 1 << (i % 8);
        match scan_data_frames(&bad) {
            Ok(frames) => assert_frame_prefix(&frames, &original, &format!("flip {i}")),
            Err(_) => flip_errors += 1,
        }
    }
    assert!(flip_errors > 0, "flips must surface as typed errors");

    // Same two sweeps over the ACK/HELLO direction.
    for n in 0..=s2c.len() {
        if let Ok(frames) = scan_ctrl_frames(&s2c[..n]) {
            assert!(
                frames.len() <= original_ctrl.len() && frames == original_ctrl[..frames.len()],
                "ctrl truncate {n}: altered prefix"
            );
        }
    }
    for i in 0..s2c.len() {
        let mut bad = s2c.clone();
        bad[i] ^= 1 << (i % 8);
        if let Ok(frames) = scan_ctrl_frames(&bad) {
            for f in &frames {
                assert!(
                    original_ctrl.contains(f),
                    "ctrl flip {i}: invented watermark {f:?}"
                );
            }
        }
    }
}

/// Replays damaged DATA streams at a **live** server over real TCP: the
/// server must never panic, never deliver an altered or extra record,
/// and never duplicate beyond the watermark window — damage costs a
/// tail, never correctness.
#[test]
fn live_server_survives_damaged_streams() {
    let (c2s, _) = capture_session();
    let original = scan_data_frames(&c2s).unwrap();
    let total_records: u64 = original.iter().map(|f| f.records.len() as u64).sum();

    let delivered = Arc::new(Mutex::new(Vec::new()));
    let d = Arc::clone(&delivered);
    let server = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0"),
        Box::new(move |seq, key, rec_seq, payload| {
            d.lock().unwrap().push((seq, key, rec_seq, payload));
        }),
    )
    .unwrap();
    let addr = server.local_addr();

    let drive = |bytes: &[u8]| {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        // Swallow the HELLO and any ACKs; we only care that the server
        // stays alive and correct. Closing our write side hands the
        // server an EOF so each probe finishes promptly.
        let _ = sock.write_all(bytes);
        let _ = sock.shutdown(std::net::Shutdown::Write);
        let mut buf = [0u8; 1024];
        let deadline = Instant::now() + Duration::from_millis(300);
        while Instant::now() < deadline {
            match sock.read(&mut buf) {
                Ok(0) => break, // server dropped us (protocol error) — expected
                Ok(_) => {}
                Err(_) => break,
            }
        }
    };

    // Truncations at a byte-stride sweep, then bit flips at every byte
    // (step 7 keeps the live sweep under a second while still touching
    // headers, lengths, checksums, and payload bytes).
    for n in (0..=c2s.len()).step_by(7) {
        drive(&c2s[..n]);
    }
    for i in (0..c2s.len()).step_by(7) {
        let mut bad = c2s.clone();
        bad[i] ^= 1 << (i % 8);
        drive(&bad);
    }

    // The server is still alive and sane: a clean full replay delivers
    // exactly the records not yet delivered by damaged prefixes.
    drive(&c2s);
    let stats = server.stats();
    assert_eq!(
        stats.watermark, total_records,
        "clean replay must land the full stream"
    );

    let log = delivered.lock().unwrap();
    // Zero loss: every delivery seq 1..=total exactly once.
    let mut seen = vec![0u32; total_records as usize + 1];
    for (seq, _, _, _) in log.iter() {
        assert!(*seq >= 1 && *seq <= total_records, "invented seq {seq}");
        seen[*seq as usize] += 1;
    }
    for (seq, n) in seen.iter().enumerate().skip(1) {
        assert_eq!(
            *n, 1,
            "delivery seq {seq} delivered {n} times — the watermark window allows at most one"
        );
    }
    // No alteration: every delivered record matches the original frame
    // content at its delivery seq.
    let mut by_seq = std::collections::HashMap::new();
    for f in &original {
        for (i, r) in f.records.iter().enumerate() {
            by_seq.insert(f.first_seq + i as u64, r.clone());
        }
    }
    for (seq, key, rec_seq, payload) in log.iter() {
        let orig = &by_seq[seq];
        assert_eq!(
            (orig.key, orig.rec_seq, &orig.payload),
            (*key, *rec_seq, payload),
            "record at seq {seq} altered"
        );
    }
    drop(log);
    server.shutdown();
}
