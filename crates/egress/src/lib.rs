//! Elasticutor egress plane: how records leave the DAG with a delivery
//! contract — the mirror of the ingress crate.
//!
//! The runtime's [`Sink`](elasticutor_runtime::Sink) trait is the seam:
//! [`TcpEgress`] plugs into `Pipeline::attach_sink` / `LiveDag::attach_sink`
//! and gives the output stream an **at-least-once contract with per-key
//! FIFO** over TCP:
//!
//! * Every accepted batch is assigned monotonic delivery sequence
//!   numbers and appended to a disk-backed **outbox** ([`SpillQueue`])
//!   before anything touches the network — the queue *is* the
//!   retransmission source of truth, not a fallback.
//! * A sender thread streams outbox frames to the sink; the receiver
//!   ACKs a watermark that trims the outbox behind it. Frames unACKed
//!   past a deadline force a reconnect, which rewinds the cursor to the
//!   receiver's watermark and resends — duplicates are deduplicated at
//!   the receiver by delivery seq.
//! * Failure handling is layered: transient link errors retry with
//!   capped exponential backoff + jitter (the migration plane's
//!   [`Backoff`](elasticutor_runtime::Backoff) policy); a dead primary
//!   fails over to a configured standby; with **no** sink reachable the
//!   outbox simply grows on disk — the DAG keeps processing at full
//!   rate and nothing is dropped.
//!
//! [`EgressServer`] is the receiving side of the protocol (watermark
//! dedup, ACKs, optional watermark persistence across restarts), used
//! by the tests, the chaos bench, and as the reference for external
//! consumers. The wire protocol itself lives in [`frame`]; all frames
//! use the WAL's checked-frame discipline, so corruption anywhere is a
//! typed error, never an altered record.

#![warn(missing_docs)]

pub mod frame;
pub mod server;
pub mod sink;
pub mod spill;

pub use frame::{DataFrame, EgressRecord, MSG_EGRESS_ACK, MSG_EGRESS_DATA, MSG_EGRESS_HELLO};
pub use server::{DeliverFn, EgressServer, EgressServerConfig, ServerStats};
pub use sink::{EgressConfig, EgressHandle, EgressStats, TcpEgress};
pub use spill::{SpillFrame, SpillQueue};

use elasticutor_core::wire::WireError;

/// Why an egress operation failed.
#[derive(Debug)]
pub enum EgressError {
    /// A byte stream violated the egress frame protocol (bad version,
    /// oversized length, truncated or corrupt frame).
    Wire(WireError),
    /// A structurally valid frame carried a message type this side of
    /// the protocol does not accept.
    UnknownFrame(u8),
    /// A sealed spill segment failed validation — acknowledged-as-
    /// written bytes are damaged, which cannot be silently skipped.
    SpillCorrupt(&'static str),
    /// An I/O error outside the protocol itself (spill directory,
    /// connect, bind, …).
    Io(std::io::Error),
}

impl std::fmt::Display for EgressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EgressError::Wire(e) => write!(f, "egress protocol error: {e}"),
            EgressError::UnknownFrame(t) => {
                write!(f, "egress protocol error: unexpected frame type {t:#x}")
            }
            EgressError::SpillCorrupt(what) => write!(f, "egress spill corrupt: {what}"),
            EgressError::Io(e) => write!(f, "egress i/o error: {e}"),
        }
    }
}

impl std::error::Error for EgressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EgressError::Wire(e) => Some(e),
            EgressError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for EgressError {
    fn from(e: WireError) -> Self {
        EgressError::Wire(e)
    }
}

impl From<std::io::Error> for EgressError {
    fn from(e: std::io::Error) -> Self {
        EgressError::Io(e)
    }
}
