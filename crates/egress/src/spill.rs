//! The disk-backed spill queue — egress's **outbox**.
//!
//! Every batch the sink accepts is encoded as one checked DATA frame
//! (see [`crate::frame`]) and appended here *before* anything touches
//! the network: the queue is not a fallback for bad days, it is the
//! single retransmission source of truth. The sender thread streams
//! raw frame bytes out of the queue through a cursor; the receiver's
//! ACK watermark trims fully-acknowledged segments behind it. When the
//! sink is healthy the queue stays a few frames long (append, send,
//! trim); when no sink is reachable it simply grows — the DAG never
//! blocks on the network and never drops a record.
//!
//! # On-disk layout
//!
//! A directory of segment files `spill-<first_seq 16-hex>.seg`, each a
//! back-to-back run of checked DATA frames — the **exact bytes** that
//! go on the socket, so draining is `write(2)` of stored bytes, no
//! re-encoding. The file name carries the first delivery seq assigned
//! in that segment, which keeps the seq counter monotonic across
//! restarts even when a segment is empty (nothing was appended after a
//! roll) or fully trimmed.
//!
//! # Durability contract
//!
//! Appends are single `write(2)` calls with no fsync: a crashed
//! *process* loses nothing (the bytes are in the page cache), a crashed
//! *machine* may tear the tail of the newest segment — which reopen
//! tolerates exactly like the durability WAL does (scan frames, verify
//! checksums, truncate the torn tail). Corruption in the *middle* of a
//! segment is a typed error, never a silent skip.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use elasticutor_core::wire::{FRAME_HEADER_LEN, MAX_FRAME_LEN, WIRE_VERSION};
use elasticutor_runtime::Record;

use crate::frame::{data_frame_seq_range, encode_data_frame};
use crate::EgressError;

/// Default segment roll threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// One raw frame handed to the sender: the delivery-seq range it covers
/// and the exact wire bytes to put on the socket.
#[derive(Clone, Debug)]
pub struct SpillFrame {
    /// Delivery seq of the first record in the frame.
    pub first_seq: u64,
    /// Delivery seq of the last record in the frame.
    pub last_seq: u64,
    /// Complete wire frame (header + checked payload).
    pub bytes: Vec<u8>,
}

/// Where one frame lives on disk.
#[derive(Clone, Copy, Debug)]
struct FrameLoc {
    /// `first_seq` of the segment holding the frame.
    seg: u64,
    /// Byte offset of the frame within the segment file.
    offset: u64,
    /// Total frame length (header + payload).
    len: u64,
    /// Delivery seq of the last record in the frame.
    last_seq: u64,
}

#[derive(Debug)]
struct Segment {
    path: PathBuf,
    /// Valid byte length (torn tails are truncated away at open).
    bytes: u64,
    /// Last delivery seq appended to this segment (`None` if empty).
    last_seq: Option<u64>,
}

/// The disk-backed frame queue. Not internally synchronized — the sink
/// wraps it in a mutex shared between the pump and sender threads.
#[derive(Debug)]
pub struct SpillQueue {
    dir: PathBuf,
    segment_bytes: u64,
    /// Segments keyed by their first delivery seq; the last entry is
    /// the active (append) segment.
    segments: BTreeMap<u64, Segment>,
    /// Append handle for the active segment.
    active: File,
    /// Frame index: frame first_seq → location. Trimmed entries are
    /// pruned; the index always covers every unacknowledged frame.
    frames: BTreeMap<u64, FrameLoc>,
    /// Next delivery seq to assign (first record ever gets seq 1).
    next_seq: u64,
    /// Cached read handle (segment first_seq, file) for cursor reads.
    reader: Option<(u64, File)>,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("spill-{first_seq:016x}.seg"))
}

fn parse_segment_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("spill-")?.strip_suffix(".seg")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Scans one segment's bytes: returns `(frame first_seq, location)`
/// pairs, the valid byte length, and whether damage cut the scan short.
/// Mid-file damage (a frame that frames correctly but fails its
/// checksum, followed by more valid bytes) still scans as "torn at that
/// point" — the caller decides whether that is tolerable (newest
/// segment) or fatal (a sealed one).
fn scan_segment(seg_first: u64, data: &[u8]) -> (Vec<(u64, FrameLoc)>, u64, bool) {
    let mut locs = Vec::new();
    let mut pos = 0u64;
    let n = data.len() as u64;
    while pos < n {
        let avail = &data[pos as usize..];
        if (avail.len() as u64) < FRAME_HEADER_LEN || avail[0] != WIRE_VERSION {
            return (locs, pos, true);
        }
        let len = u32::from_le_bytes(avail[2..6].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return (locs, pos, true);
        }
        let total = FRAME_HEADER_LEN + u64::from(len);
        if (avail.len() as u64) < total {
            return (locs, pos, true);
        }
        let payload = &avail[FRAME_HEADER_LEN as usize..total as usize];
        match data_frame_seq_range(payload) {
            Ok((first, last)) => locs.push((
                first,
                FrameLoc {
                    seg: seg_first,
                    offset: pos,
                    len: total,
                    last_seq: last,
                },
            )),
            Err(_) => return (locs, pos, true),
        }
        pos += total;
    }
    (locs, pos, false)
}

impl SpillQueue {
    /// Opens (or creates) the queue at `dir`, recovering any frames a
    /// previous process left behind. The newest segment's torn tail is
    /// truncated; damage in an older (sealed) segment is a typed error
    /// — sealed bytes were acknowledged as written, losing them is loss.
    pub fn open(dir: impl Into<PathBuf>, segment_bytes: u64) -> Result<Self, EgressError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut seg_firsts: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_name(&e.path()))
            .collect();
        seg_firsts.sort_unstable();

        let mut segments = BTreeMap::new();
        let mut frames = BTreeMap::new();
        let mut next_seq = 1u64;
        let count = seg_firsts.len();
        for (i, seg_first) in seg_firsts.iter().copied().enumerate() {
            let path = segment_path(&dir, seg_first);
            let data = std::fs::read(&path)?;
            let (locs, valid, torn) = scan_segment(seg_first, &data);
            let newest = i + 1 == count;
            if torn && !newest {
                return Err(EgressError::SpillCorrupt(
                    "damage in a sealed spill segment",
                ));
            }
            if torn {
                // Crash-torn tail on the newest segment: cut it off so
                // appends continue from a clean frame boundary.
                OpenOptions::new().write(true).open(&path)?.set_len(valid)?;
            }
            let last_seq = locs.last().map(|(_, l)| l.last_seq);
            next_seq = next_seq.max(seg_first).max(last_seq.map_or(0, |s| s + 1));
            for (first, loc) in locs {
                frames.insert(first, loc);
            }
            segments.insert(
                seg_first,
                Segment {
                    path,
                    bytes: valid,
                    last_seq,
                },
            );
        }
        if segments.is_empty() {
            let path = segment_path(&dir, next_seq);
            File::create(&path)?;
            segments.insert(
                next_seq,
                Segment {
                    path,
                    bytes: 0,
                    last_seq: None,
                },
            );
        }
        let active_path = segments
            .values()
            .next_back()
            .expect("at least one segment")
            .path
            .clone();
        let active = OpenOptions::new().append(true).open(&active_path)?;
        Ok(Self {
            dir,
            segment_bytes,
            segments,
            active,
            frames,
            next_seq,
            reader: None,
        })
    }

    /// Appends `records` as one frame, assigning delivery seqs.
    /// Returns `(first_seq, last_seq)` of the appended frame. The write
    /// is a single `write(2)` — done once this returns, the records
    /// survive a process crash.
    pub fn append(&mut self, records: &[Record]) -> Result<(u64, u64), EgressError> {
        assert!(!records.is_empty(), "empty spill append");
        let first_seq = self.next_seq;
        let mut bytes = Vec::with_capacity(64 + records.len() * 32);
        let last_seq = encode_data_frame(&mut bytes, first_seq, records);

        let (cur_first, cur_bytes) = {
            let (&f, s) = self
                .segments
                .iter()
                .next_back()
                .expect("active segment exists");
            (f, s.bytes)
        };
        let (seg_first, offset) = if cur_bytes >= self.segment_bytes {
            // Roll: seal the active segment, open a new one named by
            // the seq it starts at.
            let path = segment_path(&self.dir, first_seq);
            self.active = OpenOptions::new()
                .append(true)
                .create_new(true)
                .open(&path)?;
            self.segments.insert(
                first_seq,
                Segment {
                    path,
                    bytes: 0,
                    last_seq: None,
                },
            );
            (first_seq, 0u64)
        } else {
            (cur_first, cur_bytes)
        };

        self.active.write_all(&bytes)?;
        let seg = self.segments.get_mut(&seg_first).expect("segment exists");
        seg.bytes += bytes.len() as u64;
        seg.last_seq = Some(last_seq);
        self.frames.insert(
            first_seq,
            FrameLoc {
                seg: seg_first,
                offset,
                len: bytes.len() as u64,
                last_seq,
            },
        );
        self.next_seq = last_seq + 1;
        Ok((first_seq, last_seq))
    }

    /// The next delivery seq that [`Self::append`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of unacknowledged (un-trimmed) frames on disk.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total bytes across all live segment files.
    pub fn bytes(&self) -> u64 {
        self.segments.values().map(|s| s.bytes).sum()
    }

    /// Reads the first frame whose `last_seq >= seq` — the sender's
    /// cursor read. `None` means everything at or after `seq` is still
    /// unwritten (caller waits for appends).
    pub fn frame_at_or_after(&mut self, seq: u64) -> Result<Option<SpillFrame>, EgressError> {
        // The frame containing `seq` starts at the greatest first_seq
        // <= seq (frames are contiguous); if that frame ends before
        // `seq` (trimmed boundary), the next index entry is the one.
        let loc = self
            .frames
            .range(..=seq)
            .next_back()
            .filter(|(_, l)| l.last_seq >= seq)
            .or_else(|| self.frames.range(seq..).next())
            .map(|(&first, &loc)| (first, loc));
        let Some((first, loc)) = loc else {
            return Ok(None);
        };
        if !matches!(&self.reader, Some((seg, _)) if *seg == loc.seg) {
            let seg = self
                .segments
                .get(&loc.seg)
                .expect("indexed frame has a segment");
            self.reader = Some((loc.seg, File::open(&seg.path)?));
        }
        let (_, file) = self.reader.as_mut().expect("reader just set");
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut bytes = vec![0u8; loc.len as usize];
        file.read_exact(&mut bytes)?;
        Ok(Some(SpillFrame {
            first_seq: first,
            last_seq: loc.last_seq,
            bytes,
        }))
    }

    /// Drops state the receiver has acknowledged: prunes the frame
    /// index up to `watermark` and deletes sealed segments whose every
    /// record is `<= watermark`. The active segment is **never**
    /// deleted — its file name and tail carry the seq counter across
    /// restarts.
    pub fn trim(&mut self, watermark: u64) -> Result<(), EgressError> {
        let dead: Vec<u64> = self
            .frames
            .iter()
            .take_while(|(_, l)| l.last_seq <= watermark)
            .map(|(&f, _)| f)
            .collect();
        for f in dead {
            self.frames.remove(&f);
        }
        let active_first = *self
            .segments
            .keys()
            .next_back()
            .expect("active segment exists");
        let dead_segs: Vec<u64> = self
            .segments
            .iter()
            .filter(|(&first, s)| {
                first != active_first && s.last_seq.is_none_or(|l| l <= watermark)
            })
            .map(|(&f, _)| f)
            .collect();
        for f in dead_segs {
            let seg = self.segments.remove(&f).expect("listed");
            if matches!(self.reader, Some((r, _)) if r == f) {
                self.reader = None;
            }
            std::fs::remove_file(&seg.path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use elasticutor_core::ids::Key;

    fn tmp(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("elasticutor-spill-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn recs(n: usize, fill: u8) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(Key(i as u64 % 5), Bytes::from(vec![fill; 10 + i])).with_seq(i as u64)
            })
            .collect()
    }

    #[test]
    fn append_read_trim_roundtrip() {
        let dir = tmp("roundtrip");
        let mut q = SpillQueue::open(&dir, 1024).unwrap();
        assert_eq!(q.next_seq(), 1);
        let (f1, l1) = q.append(&recs(3, 0xA1)).unwrap();
        let (f2, l2) = q.append(&recs(2, 0xB2)).unwrap();
        assert_eq!((f1, l1), (1, 3));
        assert_eq!((f2, l2), (4, 5));

        let fr = q.frame_at_or_after(1).unwrap().unwrap();
        assert_eq!((fr.first_seq, fr.last_seq), (1, 3));
        // Mid-frame seq lands on the frame containing it.
        let fr = q.frame_at_or_after(2).unwrap().unwrap();
        assert_eq!((fr.first_seq, fr.last_seq), (1, 3));
        let fr = q.frame_at_or_after(4).unwrap().unwrap();
        assert_eq!((fr.first_seq, fr.last_seq), (4, 5));
        assert!(q.frame_at_or_after(6).unwrap().is_none());

        q.trim(3).unwrap();
        assert_eq!(q.frame_count(), 1);
        let fr = q.frame_at_or_after(2).unwrap().unwrap();
        assert_eq!((fr.first_seq, fr.last_seq), (4, 5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_seq_counter_and_frames() {
        let dir = tmp("reopen");
        {
            let mut q = SpillQueue::open(&dir, 128).unwrap();
            for i in 0..10 {
                q.append(&recs(4, i as u8)).unwrap();
            }
            // Several segments rolled (128-byte threshold).
            assert!(q.segments.len() > 1, "expected a roll");
        }
        let mut q = SpillQueue::open(&dir, 128).unwrap();
        assert_eq!(q.next_seq(), 41);
        assert_eq!(q.frame_count(), 10);
        let fr = q.frame_at_or_after(17).unwrap().unwrap();
        assert!(fr.first_seq <= 17 && fr.last_seq >= 17);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_after_full_trim_keeps_seq_monotonic() {
        let dir = tmp("trimmed");
        {
            let mut q = SpillQueue::open(&dir, 64).unwrap();
            for i in 0..6 {
                q.append(&recs(2, i as u8)).unwrap();
            }
            q.trim(12).unwrap();
            assert_eq!(q.frame_count(), 0);
        }
        let mut q = SpillQueue::open(&dir, 64).unwrap();
        // Everything acked and trimmed, but the counter must not rewind
        // — reused delivery seqs would be swallowed by the receiver's
        // watermark as duplicates (silent loss).
        assert_eq!(q.next_seq(), 13);
        let (f, _) = q.append(&recs(1, 0xEE)).unwrap();
        assert_eq!(f, 13);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_on_newest_segment_is_truncated() {
        let dir = tmp("torn");
        {
            let mut q = SpillQueue::open(&dir, DEFAULT_SEGMENT_BYTES).unwrap();
            q.append(&recs(3, 0x11)).unwrap();
            q.append(&recs(3, 0x22)).unwrap();
        }
        let seg = segment_path(&dir, 1);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
        drop(f);
        let mut q = SpillQueue::open(&dir, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(q.frame_count(), 2);
        assert_eq!(q.next_seq(), 7);
        // Appends continue cleanly from the truncated boundary.
        let (f, l) = q.append(&recs(2, 0x33)).unwrap();
        assert_eq!((f, l), (7, 8));
        drop(q);
        let q2 = SpillQueue::open(&dir, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(q2.frame_count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damage_in_sealed_segment_is_a_typed_error() {
        let dir = tmp("sealed");
        {
            let mut q = SpillQueue::open(&dir, 64).unwrap();
            for i in 0..6 {
                q.append(&recs(2, i as u8)).unwrap();
            }
            assert!(q.segments.len() > 1, "expected a roll");
        }
        // Flip a byte in the FIRST (sealed) segment's interior.
        let seg = segment_path(&dir, 1);
        let mut data = std::fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&seg, &data).unwrap();
        match SpillQueue::open(&dir, 64) {
            Err(EgressError::SpillCorrupt(_)) => {}
            other => panic!("expected SpillCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
