//! [`TcpEgress`] — the at-least-once TCP sink.
//!
//! Two threads share the outbox ([`SpillQueue`]): the runtime's sink
//! pump calls [`Sink::consume`], which only appends to disk (the DAG is
//! never exposed to network latency — a dead sink costs it nothing but
//! disk bandwidth), and one **sender thread** owns the connection
//! lifecycle: connect with capped exponential backoff + jitter, fail
//! over between primary and standby, read the receiver's HELLO
//! watermark, stream outbox frames from the cursor, process ACKs, trim,
//! and force a rewind-reconnect when ACKs stall past the deadline.
//!
//! Fail points: `egress.spill` fires before each outbox append (the
//! accept path), `egress.write` before each socket write (the send
//! path). `err` actions model transient disk/link failures — the append
//! retries, the session reconnects; `kill` models process death.

use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use elasticutor_core::fault;
use elasticutor_ingress::FrameScanner;
use elasticutor_runtime::{Backoff, RecordBatch, Sink};

use crate::frame::{decode_ctrl_frame, MSG_EGRESS_ACK, MSG_EGRESS_HELLO};
use crate::spill::{SpillQueue, DEFAULT_SEGMENT_BYTES};
use crate::EgressError;

/// Tunables of a [`TcpEgress`] sink.
#[derive(Clone, Debug)]
pub struct EgressConfig {
    /// Primary sink address (`host:port`).
    pub primary: String,
    /// Optional standby sink to fail over to when the primary's retry
    /// budget is exhausted.
    pub standby: Option<String>,
    /// Directory of the disk-backed outbox (created if missing).
    pub spill_dir: PathBuf,
    /// Connect retry policy; `max_attempts` is the per-target budget
    /// before failing over (the cycle never gives up — with no sink
    /// reachable the outbox absorbs output indefinitely).
    pub retry: Backoff,
    /// Multiplicative jitter fraction applied to every backoff delay
    /// (`0.2` → uniform in `[0.8, 1.2]` × delay).
    pub jitter: f64,
    /// Reconnect (and thereby retransmit from the receiver's watermark)
    /// when sent frames go unacknowledged this long.
    pub ack_deadline: Duration,
    /// Socket write timeout and handshake deadline.
    pub io_timeout: Duration,
    /// Pacing of the idle sender: how long a blocking ACK read waits
    /// before re-checking the outbox for new frames.
    pub poll_interval: Duration,
    /// Outbox segment roll threshold.
    pub segment_bytes: u64,
}

impl EgressConfig {
    /// A config pointing at `primary` with defaults for everything else.
    pub fn new(primary: impl Into<String>, spill_dir: impl Into<PathBuf>) -> Self {
        Self {
            primary: primary.into(),
            standby: None,
            spill_dir: spill_dir.into(),
            retry: Backoff::default(),
            jitter: 0.2,
            ack_deadline: Duration::from_millis(500),
            io_timeout: Duration::from_secs(1),
            poll_interval: Duration::from_millis(10),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }

    /// Sets the standby sink address.
    pub fn with_standby(mut self, standby: impl Into<String>) -> Self {
        self.standby = Some(standby.into());
        self
    }

    /// Sets the connect retry policy.
    pub fn with_retry(mut self, retry: Backoff) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the ACK deadline.
    pub fn with_ack_deadline(mut self, d: Duration) -> Self {
        self.ack_deadline = d;
        self
    }
}

/// Point-in-time counters of a running [`TcpEgress`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EgressStats {
    /// Records accepted from the DAG (all durably in the outbox).
    pub records_accepted: u64,
    /// Highest delivery seq assigned (0 = none yet).
    pub last_appended: u64,
    /// Receiver watermark: every seq `<= acked` is delivered.
    pub acked: u64,
    /// Records written to a socket (includes retransmissions).
    pub records_sent: u64,
    /// Records re-sent after a rewind (upper bound on receiver-visible
    /// duplicates).
    pub records_retransmitted: u64,
    /// Frames written to a socket.
    pub frames_sent: u64,
    /// Established connections (1 = the initial connect).
    pub connects: u64,
    /// Failed connect attempts.
    pub connect_failures: u64,
    /// Target switches between primary and standby.
    pub failovers: u64,
    /// Transient outbox-append failures retried (injected via
    /// `egress.spill`).
    pub spill_retries: u64,
    /// Whether a connection is currently established.
    pub connected: bool,
    /// Outbox frames not yet trimmed by an ACK.
    pub spill_frames: u64,
    /// Outbox bytes on disk (live segments).
    pub spill_bytes: u64,
}

impl EgressStats {
    /// Records accepted but not yet acknowledged by the receiver.
    pub fn backlog(&self) -> u64 {
        self.last_appended.saturating_sub(self.acked)
    }
}

#[derive(Default)]
struct Counters {
    records_accepted: AtomicU64,
    last_appended: AtomicU64,
    acked: AtomicU64,
    records_sent: AtomicU64,
    records_retransmitted: AtomicU64,
    frames_sent: AtomicU64,
    connects: AtomicU64,
    connect_failures: AtomicU64,
    failovers: AtomicU64,
    spill_retries: AtomicU64,
    max_sent: AtomicU64,
    connected: AtomicBool,
}

struct Shared {
    spill: Mutex<SpillQueue>,
    counters: Counters,
    stop: AtomicBool,
    /// Monotonic-ns deadline for draining after stop (0 = none set).
    drain_deadline_ns: AtomicU64,
}

impl Shared {
    fn stats(&self) -> EgressStats {
        let c = &self.counters;
        let (spill_frames, spill_bytes) = {
            let q = self.spill.lock().unwrap_or_else(|e| e.into_inner());
            (q.frame_count() as u64, q.bytes())
        };
        EgressStats {
            records_accepted: c.records_accepted.load(Ordering::Relaxed),
            last_appended: c.last_appended.load(Ordering::Relaxed),
            acked: c.acked.load(Ordering::Relaxed),
            records_sent: c.records_sent.load(Ordering::Relaxed),
            records_retransmitted: c.records_retransmitted.load(Ordering::Relaxed),
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            connects: c.connects.load(Ordering::Relaxed),
            connect_failures: c.connect_failures.load(Ordering::Relaxed),
            failovers: c.failovers.load(Ordering::Relaxed),
            spill_retries: c.spill_retries.load(Ordering::Relaxed),
            connected: c.connected.load(Ordering::Relaxed),
            spill_frames,
            spill_bytes,
        }
    }

    fn drained(&self) -> bool {
        let c = &self.counters;
        c.acked.load(Ordering::Acquire) >= c.last_appended.load(Ordering::Acquire)
    }

    /// Should the sender give up now? Only after `stop`: either fully
    /// drained or past the drain deadline.
    fn should_exit(&self) -> bool {
        if !self.stop.load(Ordering::Acquire) {
            return false;
        }
        if self.drained() {
            return true;
        }
        let deadline = self.drain_deadline_ns.load(Ordering::Acquire);
        deadline != 0 && elasticutor_runtime::monotonic_ns() >= deadline
    }

    fn on_ack(&self, watermark: u64) {
        let c = &self.counters;
        let prev = c.acked.fetch_max(watermark, Ordering::AcqRel);
        if watermark > prev {
            let mut q = self.spill.lock().unwrap_or_else(|e| e.into_inner());
            // Trim failures are non-fatal (a locked file, a racing
            // unlink): the frames stay on disk and the next ACK retries.
            let _ = q.trim(watermark);
        }
    }
}

/// Cloneable observer handle onto a [`TcpEgress`] — lets the driving
/// code watch stats and wait for drain while the sink itself is owned
/// by the runtime's pump thread.
#[derive(Clone)]
pub struct EgressHandle {
    shared: Arc<Shared>,
}

impl EgressHandle {
    /// Snapshot of the sink's counters.
    pub fn stats(&self) -> EgressStats {
        self.shared.stats()
    }

    /// Waits until every accepted record is acknowledged, or `timeout`
    /// elapses. Returns whether the backlog reached zero.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.shared.drained() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

/// The at-least-once TCP sink. Implements the runtime's [`Sink`] trait:
/// attach with `Pipeline::attach_sink` / `LiveDag::attach_sink`, get it
/// back from `SinkHandle::join` after shutdown, then call
/// [`Self::shutdown`] to drain and stop the sender thread.
pub struct TcpEgress {
    shared: Arc<Shared>,
    sender: Option<JoinHandle<()>>,
}

impl TcpEgress {
    /// Opens (or recovers) the outbox at `config.spill_dir` and starts
    /// the sender thread. Any frames a previous process left
    /// unacknowledged are resent before new output.
    pub fn new(config: EgressConfig) -> Result<Self, EgressError> {
        let spill = SpillQueue::open(&config.spill_dir, config.segment_bytes)?;
        let counters = Counters::default();
        counters
            .last_appended
            .store(spill.next_seq() - 1, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            spill: Mutex::new(spill),
            counters,
            stop: AtomicBool::new(false),
            drain_deadline_ns: AtomicU64::new(0),
        });
        let sender = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("egress-sender".into())
                .spawn(move || sender_loop(&shared, &config))
                .expect("spawn egress sender")
        };
        Ok(Self {
            shared,
            sender: Some(sender),
        })
    }

    /// Observer handle (stats, drain) usable while the runtime owns the
    /// sink.
    pub fn handle(&self) -> EgressHandle {
        EgressHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Snapshot of the sink's counters.
    pub fn stats(&self) -> EgressStats {
        self.shared.stats()
    }

    /// Stops the sender after draining: keeps (re)connecting and
    /// sending until every accepted record is acknowledged or
    /// `drain_timeout` elapses, then joins the thread. Returns the
    /// final stats — `acked == last_appended` means a clean drain;
    /// anything short is still on disk for the next
    /// [`Self::new`] on the same spill directory.
    pub fn shutdown(mut self, drain_timeout: Duration) -> EgressStats {
        let deadline = elasticutor_runtime::monotonic_ns()
            + drain_timeout.as_nanos().min(u128::from(u64::MAX) / 2) as u64;
        self.shared
            .drain_deadline_ns
            .store(deadline, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.sender.take() {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

impl Drop for TcpEgress {
    fn drop(&mut self) {
        // Dropped without shutdown(): stop immediately (no drain wait);
        // unacknowledged frames stay recoverable on disk.
        if let Some(t) = self.sender.take() {
            self.shared.drain_deadline_ns.store(1, Ordering::Release);
            self.shared.stop.store(true, Ordering::Release);
            let _ = t.join();
        }
    }
}

impl Sink for TcpEgress {
    fn consume(&mut self, batch: RecordBatch) {
        if batch.is_empty() {
            return;
        }
        // The accept path: one checked frame appended to the outbox.
        // `egress.spill` err-actions model transient disk trouble —
        // retry rather than drop (the contract is at-least-once); a
        // kill action aborts the process here, which is exactly the
        // "egress dies with a non-empty spill queue" chaos arm.
        loop {
            if fault::fail_point("egress.spill").is_err() {
                self.shared
                    .counters
                    .spill_retries
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let mut q = self.shared.spill.lock().unwrap_or_else(|e| e.into_inner());
            match q.append(&batch) {
                Ok((_, last_seq)) => {
                    drop(q);
                    let c = &self.shared.counters;
                    c.records_accepted
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    c.last_appended.fetch_max(last_seq, Ordering::Release);
                    return;
                }
                Err(_) => {
                    drop(q);
                    self.shared
                        .counters
                        .spill_retries
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Multiplies `delay` by a uniform factor in `[1 - jitter, 1 + jitter]`.
fn jittered(delay: Duration, jitter: f64, rng: &mut u64) -> Duration {
    if jitter <= 0.0 {
        return delay;
    }
    // xorshift64 — decorrelates concurrent egresses without a rand dep.
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    let factor = 1.0 - jitter + 2.0 * jitter * unit;
    Duration::from_secs_f64((delay.as_secs_f64() * factor).max(0.0))
}

/// What ended a connected session.
enum SessionEnd {
    /// Link error, EOF, protocol violation, or ACK-deadline expiry —
    /// reconnect (possibly after failover) and rewind.
    Reconnect,
    /// The sink was asked to stop and is drained (or past deadline).
    Exit,
}

fn sender_loop(shared: &Shared, config: &EgressConfig) {
    let mut targets = vec![config.primary.clone()];
    if let Some(s) = &config.standby {
        targets.push(s.clone());
    }
    let mut target_idx = 0usize;
    let mut attempt = 0u32;
    let mut rng = u64::from(std::process::id()) << 17 | 0x9E37_79B9;

    loop {
        if shared.should_exit() {
            return;
        }
        let target = &targets[target_idx];
        let sock = match connect(target, config.io_timeout) {
            Ok(s) => s,
            Err(_) => {
                shared
                    .counters
                    .connect_failures
                    .fetch_add(1, Ordering::Relaxed);
                let delay = jittered(config.retry.delay(attempt), config.jitter, &mut rng);
                attempt += 1;
                if attempt >= config.retry.max_attempts && targets.len() > 1 {
                    // Retry budget on this target exhausted: fail over.
                    target_idx = (target_idx + 1) % targets.len();
                    attempt = 0;
                    shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(delay);
                continue;
            }
        };
        attempt = 0;
        shared.counters.connects.fetch_add(1, Ordering::Relaxed);
        match run_session(shared, config, &sock) {
            SessionEnd::Exit => {
                let _ = sock.shutdown(Shutdown::Both);
                return;
            }
            SessionEnd::Reconnect => {
                let _ = sock.shutdown(Shutdown::Both);
                shared.counters.connected.store(false, Ordering::Relaxed);
            }
        }
    }
}

fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address resolved")
    })?;
    TcpStream::connect_timeout(&resolved, timeout)
}

/// One connected session: HELLO handshake, then stream-and-ACK until
/// something ends it.
fn run_session(shared: &Shared, config: &EgressConfig, sock: &TcpStream) -> SessionEnd {
    let _ = sock.set_nodelay(true);
    let _ = sock.set_write_timeout(Some(config.io_timeout));
    let _ = sock.set_read_timeout(Some(config.poll_interval));

    let mut scanner = FrameScanner::new();
    // Handshake: the receiver leads with its watermark.
    let hello_deadline = Instant::now() + config.io_timeout;
    let watermark = loop {
        match read_watermark(sock, &mut scanner, MSG_EGRESS_HELLO) {
            Ok(Some(wm)) => break wm,
            Ok(None) => {
                if Instant::now() >= hello_deadline {
                    return SessionEnd::Reconnect;
                }
            }
            Err(()) => return SessionEnd::Reconnect,
        }
    };
    shared.on_ack(watermark);
    shared.counters.connected.store(true, Ordering::Relaxed);

    // The rewind: resume exactly after what the receiver has. Frames
    // between its watermark and our previous cursor get resent; the
    // receiver's dedup window swallows the overlap.
    let mut next_to_send = watermark + 1;
    let mut last_ack_progress = Instant::now();
    use std::io::Write;

    loop {
        if shared.should_exit() {
            return SessionEnd::Exit;
        }
        // Send phase: stream the next outbox frame, if any.
        let frame = {
            let mut q = shared.spill.lock().unwrap_or_else(|e| e.into_inner());
            q.frame_at_or_after(next_to_send)
        };
        let wrote = match frame {
            Err(_) => {
                // Outbox read failure mid-run: transient (EINTR, racing
                // trim). Back off via the idle path.
                false
            }
            Ok(None) => false,
            Ok(Some(f)) => {
                if fault::fail_point("egress.write").is_err() {
                    return SessionEnd::Reconnect;
                }
                if (&mut (&*sock)).write_all(&f.bytes).is_err() {
                    return SessionEnd::Reconnect;
                }
                let c = &shared.counters;
                let count = f.last_seq - f.first_seq + 1;
                c.frames_sent.fetch_add(1, Ordering::Relaxed);
                c.records_sent.fetch_add(count, Ordering::Relaxed);
                let prev_max = c.max_sent.fetch_max(f.last_seq, Ordering::Relaxed);
                if f.first_seq <= prev_max {
                    let dup = prev_max.min(f.last_seq) - f.first_seq + 1;
                    c.records_retransmitted.fetch_add(dup, Ordering::Relaxed);
                }
                next_to_send = f.last_seq + 1;
                true
            }
        };

        // ACK phase: opportunistic (non-blocking) while streaming, a
        // blocking poll-interval read when idle — idleness paces the
        // loop, backlog never waits on it.
        match drain_acks(sock, &mut scanner, !wrote) {
            Ok(Some(wm)) => {
                shared.on_ack(wm);
                last_ack_progress = Instant::now();
            }
            Ok(None) => {}
            Err(()) => return SessionEnd::Reconnect,
        }

        let acked = shared.counters.acked.load(Ordering::Acquire);
        if acked + 1 >= next_to_send {
            // Nothing in flight.
            last_ack_progress = Instant::now();
        } else if last_ack_progress.elapsed() >= config.ack_deadline {
            // Sent frames unacknowledged past the deadline: the link or
            // receiver is wedged. Reconnect; the HELLO watermark rewinds
            // the cursor and everything unacked is retransmitted.
            return SessionEnd::Reconnect;
        }
    }
}

/// Reads until one control frame of type `want` arrives (`Ok(Some)`), a
/// read timeout passes with nothing (`Ok(None)`), or the stream ends or
/// violates the protocol (`Err`).
fn read_watermark(
    sock: &TcpStream,
    scanner: &mut FrameScanner,
    want: u8,
) -> Result<Option<u64>, ()> {
    if let Some(frame) = scanner.next_frame().map_err(|_| ())? {
        return decode_ctrl_frame(want, &frame.1)
            .map(Some)
            .map_err(|_| ())
            .and_then(|wm| if frame.0 == want { Ok(wm) } else { Err(()) });
    }
    let mut buf = [0u8; 4096];
    use std::io::Read;
    match (&mut (&*sock)).read(&mut buf) {
        Ok(0) => Err(()),
        Ok(n) => {
            scanner.extend(&buf[..n]);
            match scanner.next_frame().map_err(|_| ())? {
                Some((t, payload)) if t == want => {
                    decode_ctrl_frame(want, &payload).map(Some).map_err(|_| ())
                }
                Some(_) => Err(()),
                None => Ok(None),
            }
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Ok(None)
        }
        Err(_) => Err(()),
    }
}

/// Drains every available ACK, returning the highest watermark seen (if
/// any). `blocking` uses the socket's read timeout; otherwise the read
/// is non-blocking so a streaming sender never stalls on it.
fn drain_acks(
    sock: &TcpStream,
    scanner: &mut FrameScanner,
    blocking: bool,
) -> Result<Option<u64>, ()> {
    let _ = sock.set_nonblocking(!blocking);
    let mut best: Option<u64> = None;
    let mut buf = [0u8; 4096];
    use std::io::Read;
    loop {
        // Frames already buffered first.
        while let Some((t, payload)) = scanner.next_frame().map_err(|_| ())? {
            if t != MSG_EGRESS_ACK {
                let _ = sock.set_nonblocking(false);
                return Err(());
            }
            let wm = decode_ctrl_frame(MSG_EGRESS_ACK, &payload).map_err(|_| ())?;
            best = Some(best.map_or(wm, |b| b.max(wm)));
        }
        match (&mut (&*sock)).read(&mut buf) {
            Ok(0) => {
                let _ = sock.set_nonblocking(false);
                return Err(());
            }
            Ok(n) => scanner.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let _ = sock.set_nonblocking(false);
                return Ok(best);
            }
            Err(_) => {
                let _ = sock.set_nonblocking(false);
                return Err(());
            }
        }
    }
}
