//! Egress protocol framing.
//!
//! Three message types ride the workspace wire protocol
//! ([`elasticutor_core::wire`]), all using the **checked frame**
//! discipline (a trailing FNV-64 over `msg_type || body`, the same
//! framing the durability WAL uses) so a flipped bit anywhere in a
//! frame is a typed error, never a silently altered record:
//!
//! ```text
//! DATA  (b'E'):  first_seq:u64  count:u32  record*count   [checksum:u64]
//!   record := key:u64  rec_seq:u64  payload_len:u32  payload_bytes
//! ACK   (b'A'):  watermark:u64                            [checksum:u64]
//! HELLO (b'H'):  watermark:u64                            [checksum:u64]
//! ```
//!
//! A DATA frame carries `count` records with **delivery sequence
//! numbers** `first_seq .. first_seq + count - 1`: a monotonic
//! per-egress counter assigned once when the record is accepted, the
//! backbone of the at-least-once contract. `rec_seq` is the record's
//! own per-key sequence from ingest — transported opaquely so the
//! receiver can run the same per-key FIFO checks the DAG does.
//!
//! The receiver answers with ACK frames carrying a **watermark**: every
//! delivery seq `<= watermark` is durably delivered, and any record at
//! or below it arriving again is a duplicate to drop. HELLO is the
//! watermark sent once by the receiver when a connection opens, letting
//! a (re)connecting sender rewind its cursor to exactly the first
//! unacknowledged frame.

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_core::wire::{self, ByteReader, WireError};
use elasticutor_runtime::Record;

/// Wire message type of a record-batch data frame (`b'E'`).
pub const MSG_EGRESS_DATA: u8 = b'E';
/// Wire message type of a receiver ACK carrying a watermark (`b'A'`).
pub const MSG_EGRESS_ACK: u8 = b'A';
/// Wire message type of the receiver's connection-open watermark (`b'H'`).
pub const MSG_EGRESS_HELLO: u8 = b'H';

/// One record inside a decoded [`DataFrame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EgressRecord {
    /// Partitioning key.
    pub key: Key,
    /// The record's own per-key sequence number from ingest.
    pub rec_seq: u64,
    /// Payload bytes.
    pub payload: Bytes,
}

/// A decoded DATA frame: `records[i]` has delivery seq `first_seq + i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataFrame {
    /// Delivery sequence number of the first record.
    pub first_seq: u64,
    /// The records, in delivery order.
    pub records: Vec<EgressRecord>,
}

impl DataFrame {
    /// Delivery seq of the last record in the frame.
    pub fn last_seq(&self) -> u64 {
        self.first_seq + self.records.len() as u64 - 1
    }
}

/// Appends one checked DATA frame for `records` (delivery seqs
/// `first_seq..`) to `out`, returning the last delivery seq.
pub fn encode_data_frame(out: &mut Vec<u8>, first_seq: u64, records: &[Record]) -> u64 {
    assert!(!records.is_empty(), "empty egress data frame");
    let mut body = Vec::with_capacity(12 + records.len() * 24);
    wire::put_u64(&mut body, first_seq);
    wire::put_u32(&mut body, records.len() as u32);
    for r in records {
        wire::put_u64(&mut body, r.key.value());
        wire::put_u64(&mut body, r.seq);
        wire::put_bytes(&mut body, &r.payload);
    }
    wire::put_checked_frame(out, MSG_EGRESS_DATA, body);
    first_seq + records.len() as u64 - 1
}

/// Decodes (and checksum-verifies) a DATA frame payload.
pub fn decode_data_frame(payload: &[u8]) -> Result<DataFrame, WireError> {
    let body = wire::checked_frame_body(MSG_EGRESS_DATA, payload)?;
    let mut r = ByteReader::new(body);
    let first_seq = r.u64()?;
    let count = r.u32()? as usize;
    if count == 0 {
        return Err(WireError::Corrupt("empty egress data frame"));
    }
    let mut records = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        let key = Key(r.u64()?);
        let rec_seq = r.u64()?;
        let payload = Bytes::copy_from_slice(r.bytes()?);
        records.push(EgressRecord {
            key,
            rec_seq,
            payload,
        });
    }
    if !r.is_empty() {
        return Err(WireError::Corrupt("trailing bytes after egress batch"));
    }
    Ok(DataFrame { first_seq, records })
}

/// Reads just the delivery-seq range `(first, last)` of a DATA frame
/// payload, verifying the checksum — what the spill scanner needs
/// without materializing the records.
pub fn data_frame_seq_range(payload: &[u8]) -> Result<(u64, u64), WireError> {
    let body = wire::checked_frame_body(MSG_EGRESS_DATA, payload)?;
    let mut r = ByteReader::new(body);
    let first_seq = r.u64()?;
    let count = r.u32()? as u64;
    if count == 0 {
        return Err(WireError::Corrupt("empty egress data frame"));
    }
    Ok((first_seq, first_seq + count - 1))
}

/// Appends one checked control frame (ACK or HELLO) carrying
/// `watermark` to `out`.
pub fn encode_ctrl_frame(out: &mut Vec<u8>, msg_type: u8, watermark: u64) {
    debug_assert!(msg_type == MSG_EGRESS_ACK || msg_type == MSG_EGRESS_HELLO);
    let mut body = Vec::with_capacity(8);
    wire::put_u64(&mut body, watermark);
    wire::put_checked_frame(out, msg_type, body);
}

/// Decodes (and checksum-verifies) an ACK or HELLO payload into its
/// watermark.
pub fn decode_ctrl_frame(msg_type: u8, payload: &[u8]) -> Result<u64, WireError> {
    let body = wire::checked_frame_body(msg_type, payload)?;
    let mut r = ByteReader::new(body);
    let watermark = r.u64()?;
    if !r.is_empty() {
        return Err(WireError::Corrupt("trailing bytes after egress watermark"));
    }
    Ok(watermark)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(
                    Key(i % 3),
                    Bytes::from(vec![i as u8; (i as usize * 7) % 32]),
                )
                .with_seq(i + 100)
            })
            .collect()
    }

    #[test]
    fn data_frame_roundtrip() {
        let rs = records(9);
        let mut out = Vec::new();
        let last = encode_data_frame(&mut out, 41, &rs);
        assert_eq!(last, 49);

        let (msg_type, payload) = {
            let mut r = std::io::Cursor::new(&out[..]);
            wire::read_frame(&mut r).unwrap()
        };
        assert_eq!(msg_type, MSG_EGRESS_DATA);
        let frame = decode_data_frame(&payload).unwrap();
        assert_eq!(frame.first_seq, 41);
        assert_eq!(frame.last_seq(), 49);
        assert_eq!(data_frame_seq_range(&payload).unwrap(), (41, 49));
        for (a, b) in rs.iter().zip(&frame.records) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.seq, b.rec_seq);
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn ctrl_frame_roundtrip_and_type_binding() {
        let mut out = Vec::new();
        encode_ctrl_frame(&mut out, MSG_EGRESS_ACK, 777);
        let (msg_type, payload) = {
            let mut r = std::io::Cursor::new(&out[..]);
            wire::read_frame(&mut r).unwrap()
        };
        assert_eq!(msg_type, MSG_EGRESS_ACK);
        assert_eq!(decode_ctrl_frame(MSG_EGRESS_ACK, &payload).unwrap(), 777);
        // The checksum binds the message type: an ACK payload replayed
        // as a HELLO is corruption, not a valid watermark.
        assert!(decode_ctrl_frame(MSG_EGRESS_HELLO, &payload).is_err());
    }

    #[test]
    fn data_frame_flip_sweep_is_typed() {
        let mut out = Vec::new();
        encode_data_frame(&mut out, 1, &records(5));
        let payload = out[6..].to_vec();
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                decode_data_frame(&bad).is_err(),
                "flip at {i} went undetected"
            );
        }
    }
}
