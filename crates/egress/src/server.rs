//! [`EgressServer`] — the receiving side of the egress protocol.
//!
//! Accepts connections from [`crate::TcpEgress`] senders, leads each
//! with a HELLO carrying its watermark, verifies and decodes DATA
//! frames, drops already-delivered records (delivery seq `<=`
//! watermark), hands fresh ones to the delivery callback **in order**,
//! and ACKs the advanced watermark. The watermark can be persisted to a
//! file *after* delivery, so a restarted server redelivers at most the
//! records of the frame it died in — at-least-once, duplicates bounded
//! by the ACK window.
//!
//! Concurrent connections (a sender racing its own reconnect) are safe:
//! delivery and the watermark live under one lock, so a record is
//! delivered once no matter which connection carries it first.
//!
//! Fail points: `egress.frame` fires after a DATA frame is decoded but
//! before delivery (kill = the sink dying mid-frame), `egress.ack`
//! before the ACK write (err = ACK suppressed — upstream retransmits;
//! kill = the sink dying mid-ACK).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use elasticutor_core::fault;
use elasticutor_core::ids::Key;
use elasticutor_ingress::FrameScanner;

use crate::frame::{
    decode_data_frame, encode_ctrl_frame, MSG_EGRESS_ACK, MSG_EGRESS_DATA, MSG_EGRESS_HELLO,
};
use crate::EgressError;

/// A delivered record: delivery seq, key, the record's own per-key seq,
/// and its payload.
pub type DeliverFn = dyn FnMut(u64, Key, u64, Bytes) + Send;

/// Tunables of an [`EgressServer`].
#[derive(Clone, Debug)]
pub struct EgressServerConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub bind: String,
    /// Send an ACK after this many delivered DATA frames (1 = every
    /// frame). The watermark in each ACK covers everything delivered,
    /// so a larger value only widens the duplicate window.
    pub ack_every_frames: u32,
    /// Persist the watermark here (write-then-rename) after each
    /// frame's delivery; on bind, an existing file seeds the watermark
    /// so a restarted server keeps deduplicating.
    pub watermark_path: Option<PathBuf>,
    /// Per-connection socket read timeout (idle poll; also bounds
    /// shutdown latency).
    pub io_timeout: Duration,
}

impl EgressServerConfig {
    /// Config bound to `bind` with defaults for everything else.
    pub fn new(bind: impl Into<String>) -> Self {
        Self {
            bind: bind.into(),
            ack_every_frames: 1,
            watermark_path: None,
            io_timeout: Duration::from_millis(50),
        }
    }

    /// Sets the watermark persistence file.
    pub fn with_watermark_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.watermark_path = Some(path.into());
        self
    }

    /// Sets the ACK cadence in frames.
    pub fn with_ack_every(mut self, frames: u32) -> Self {
        self.ack_every_frames = frames.max(1);
        self
    }
}

/// Point-in-time counters of a running [`EgressServer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// DATA frames processed (including all-duplicate ones).
    pub frames: u64,
    /// Records handed to the delivery callback.
    pub records_delivered: u64,
    /// Records dropped as duplicates (delivery seq `<=` watermark).
    pub duplicates_dropped: u64,
    /// Connections dropped for protocol violations (corrupt or unknown
    /// frames).
    pub protocol_errors: u64,
    /// Current watermark.
    pub watermark: u64,
}

struct DeliveryState {
    watermark: u64,
    deliver: Box<DeliverFn>,
}

struct ServerShared {
    delivery: Mutex<DeliveryState>,
    watermark_path: Option<PathBuf>,
    connections: AtomicU64,
    frames: AtomicU64,
    records_delivered: AtomicU64,
    duplicates_dropped: AtomicU64,
    protocol_errors: AtomicU64,
    watermark: AtomicU64,
    stop: AtomicBool,
}

/// The reference receiver. Bind it, point a [`crate::TcpEgress`] at
/// [`Self::local_addr`], and every record comes out of the delivery
/// callback exactly once per watermark window, in delivery order.
pub struct EgressServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl EgressServer {
    /// Binds and starts accepting. `deliver` is called under the
    /// server's delivery lock: `(delivery_seq, key, rec_seq, payload)`,
    /// strictly increasing `delivery_seq`.
    pub fn bind(config: EgressServerConfig, deliver: Box<DeliverFn>) -> Result<Self, EgressError> {
        let listener = TcpListener::bind(&config.bind)?;
        Self::bind_on(listener, config, deliver)
    }

    /// Like [`Self::bind`], but adopts an already-bound listener
    /// (`config.bind` is ignored) — port handoff for tests and the
    /// chaos bench.
    pub fn bind_on(
        listener: TcpListener,
        config: EgressServerConfig,
        deliver: Box<DeliverFn>,
    ) -> Result<Self, EgressError> {
        let local_addr = listener.local_addr()?;
        let initial_watermark = match &config.watermark_path {
            Some(p) => read_watermark_file(p),
            None => 0,
        };
        let shared = Arc::new(ServerShared {
            delivery: Mutex::new(DeliveryState {
                watermark: initial_watermark,
                deliver,
            }),
            watermark_path: config.watermark_path.clone(),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            records_delivered: AtomicU64::new(0),
            duplicates_dropped: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            watermark: AtomicU64::new(initial_watermark),
            stop: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("egress-server".into())
                .spawn(move || accept_loop(&listener, &shared, &config))
                .expect("spawn egress server")
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared;
        ServerStats {
            connections: s.connections.load(Ordering::Relaxed),
            frames: s.frames.load(Ordering::Relaxed),
            records_delivered: s.records_delivered.load(Ordering::Relaxed),
            duplicates_dropped: s.duplicates_dropped.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
            watermark: s.watermark.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes the listener, and joins the accept
    /// thread. Active connection handlers exit at their next read
    /// timeout.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Poke the listener out of accept() with a throwaway connect.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for EgressServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn read_watermark_file(path: &PathBuf) -> u64 {
    match std::fs::read(path) {
        Ok(data) if data.len() == 8 => u64::from_le_bytes(data.try_into().expect("8 bytes")),
        _ => 0,
    }
}

fn persist_watermark(path: &PathBuf, watermark: u64) {
    // Write-then-rename: a crash mid-persist leaves the previous value,
    // which only widens the duplicate window — never loses records.
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, watermark.to_le_bytes()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>, config: &EgressServerConfig) {
    loop {
        let (sock, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let config = config.clone();
        // One handler thread per connection: reconnect races between a
        // sender's old and new sockets must not deadlock behind each
        // other, and the shared delivery lock keeps them correct.
        let _ = std::thread::Builder::new()
            .name("egress-server-conn".into())
            .spawn(move || {
                if handle_connection(&sock, &shared, &config).is_err() {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                let _ = sock.shutdown(Shutdown::Both);
            });
    }
}

fn handle_connection(
    sock: &TcpStream,
    shared: &ServerShared,
    config: &EgressServerConfig,
) -> Result<(), EgressError> {
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(config.io_timeout));

    // Lead with HELLO: the sender rewinds its cursor to our watermark.
    let mut out = Vec::with_capacity(32);
    encode_ctrl_frame(
        &mut out,
        MSG_EGRESS_HELLO,
        shared.watermark.load(Ordering::Acquire),
    );
    (&mut (&*sock)).write_all(&out)?;

    let mut scanner = FrameScanner::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut frames_since_ack = 0u32;
    loop {
        while let Some((msg_type, payload)) = scanner.next_frame()? {
            if msg_type != MSG_EGRESS_DATA {
                return Err(EgressError::UnknownFrame(msg_type));
            }
            let frame = decode_data_frame(&payload)?;
            // Dies "mid-frame": after the frame is on the wire and
            // verified, before any of it is delivered or acked.
            let _ = fault::fail_point("egress.frame");
            shared.frames.fetch_add(1, Ordering::Relaxed);

            {
                let mut st = shared.delivery.lock().unwrap_or_else(|e| e.into_inner());
                let mut delivered = 0u64;
                let mut dups = 0u64;
                for (i, rec) in frame.records.iter().enumerate() {
                    let seq = frame.first_seq + i as u64;
                    if seq <= st.watermark {
                        dups += 1;
                    } else {
                        (st.deliver)(seq, rec.key, rec.rec_seq, rec.payload.clone());
                        delivered += 1;
                    }
                }
                if frame.last_seq() > st.watermark {
                    st.watermark = frame.last_seq();
                    shared.watermark.store(st.watermark, Ordering::Release);
                    if let Some(p) = &shared.watermark_path {
                        // After delivery, before the ACK: a crash here
                        // redelivers at most this frame (at-least-once).
                        persist_watermark(p, st.watermark);
                    }
                }
                shared
                    .records_delivered
                    .fetch_add(delivered, Ordering::Relaxed);
                shared.duplicates_dropped.fetch_add(dups, Ordering::Relaxed);
            }

            frames_since_ack += 1;
            if frames_since_ack >= config.ack_every_frames {
                frames_since_ack = 0;
                // Dies "mid-ACK" (kill), or an err action suppresses
                // the ACK — the sender's deadline then forces a
                // rewind-retransmit, all dups dropped here.
                if fault::fail_point("egress.ack").is_ok() {
                    let mut ack = Vec::with_capacity(32);
                    encode_ctrl_frame(
                        &mut ack,
                        MSG_EGRESS_ACK,
                        shared.watermark.load(Ordering::Acquire),
                    );
                    (&mut (&*sock)).write_all(&ack)?;
                }
            }
        }
        match (&mut (&*sock)).read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => scanner.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) => return Err(EgressError::Io(e)),
        }
    }
}
