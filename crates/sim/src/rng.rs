//! Deterministic RNG for simulations.
//!
//! A SplitMix64 generator: tiny state, excellent statistical quality for
//! simulation purposes, and — critically — stable output across
//! platforms and library versions, unlike `rand`'s unspecified `StdRng`
//! algorithm. Engines derive independent streams per component via
//! [`SimRng::fork`].

/// A deterministic pseudo-random generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for simulation purposes (< 2^-64 per draw).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Exponentially distributed sample with the given `rate` (events per
    /// time unit); mean = `1/rate`. Used for Poisson inter-arrival times
    /// and exponential service times (the M/M/k assumptions of the
    /// performance model).
    #[inline]
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Avoid ln(0): shift the uniform sample away from zero.
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// Derives an independent child generator (for per-component streams
    /// that stay deterministic regardless of interleaving).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0x6A09_E667_F3BC_C909)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bounded_sampling_in_range_and_covers() {
        let mut r = SimRng::new(13);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::new(17);
        let rate = 4.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_is_positive_and_finite() {
        let mut r = SimRng::new(19);
        for _ in 0..100_000 {
            let x = r.next_exp(1000.0);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Child and parent streams differ.
        let mut p = SimRng::new(99);
        let mut c = p.fork();
        assert_ne!(p.next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved things (astronomically unlikely to be id).
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::new(1).next_below(0);
    }
}
