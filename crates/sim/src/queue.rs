//! The deterministic event queue and simulation clock.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::SimTime;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// Heap entry: ordered by time, then by insertion sequence (FIFO for
/// simultaneous events — the property that makes runs deterministic).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A discrete-event simulation: an event queue plus the simulated clock.
///
/// `E` is the engine-defined event type. The driver loop is owned by the
/// engine:
///
/// ```
/// # use elasticutor_sim::Simulation;
/// #[derive(Debug)]
/// enum Ev { Tick }
/// let mut sim = Simulation::new();
/// sim.schedule_after(5, Ev::Tick);
/// while let Some(ev) = sim.pop() {
///     match ev { Ev::Tick => assert_eq!(sim.now(), 5) }
/// }
/// ```
pub struct Simulation<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    next_seq: u64,
    cancelled: HashSet<u64>,
    processed: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` at absolute time `at` (≥ `now`). Returns a token
    /// for cancellation.
    ///
    /// Panics if `at < now()` — scheduling into the past is always an
    /// engine bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
        EventToken(seq)
    }

    /// Schedules `event` `delay` nanoseconds from now.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) -> EventToken {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Cancels a scheduled event. Cheap (lazy): the entry is skipped when
    /// it surfaces. Returns `true` if this call newly marked the token.
    /// Cancelling a token whose event already fired is harmless (the mark
    /// refers to a sequence number that is never reused) but callers
    /// should treat tokens as single-use.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 < self.next_seq {
            self.cancelled.insert(token.0)
        } else {
            false
        }
    }

    /// Pops the next non-cancelled event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<E> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "time went backwards");
            self.now = entry.time;
            self.processed += 1;
            return Some(entry.event);
        }
        None
    }

    /// Pops the next event only if it fires at or before `deadline`;
    /// otherwise leaves it queued and returns `None` (the clock does not
    /// advance). Used to run a simulation "until time T".
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<E> {
        loop {
            let next_time = self.heap.peek().map(|Reverse(e)| (e.time, e.seq))?;
            if next_time.0 > deadline {
                return None;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked");
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            self.processed += 1;
            return Some(entry.event);
        }
    }

    /// Advances the clock to `at` without processing events. Panics if an
    /// uncancelled event earlier than `at` is pending (that would skip
    /// it) or if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.time > at {
                break;
            }
            if self.cancelled.contains(&e.seq) {
                let Reverse(e) = self.heap.pop().expect("peeked");
                self.cancelled.remove(&e.seq);
            } else {
                panic!("advance_to({at}) would skip a pending event at {}", e.time);
            }
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn pops_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(30, Ev::C);
        sim.schedule_at(10, Ev::A);
        sim.schedule_at(20, Ev::B);
        assert_eq!(sim.pop(), Some(Ev::A));
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.pop(), Some(Ev::B));
        assert_eq!(sim.now(), 20);
        assert_eq!(sim.pop(), Some(Ev::C));
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.pop(), None);
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut sim = Simulation::new();
        sim.schedule_at(5, Ev::A);
        sim.schedule_at(5, Ev::B);
        sim.schedule_at(5, Ev::C);
        assert_eq!(sim.pop(), Some(Ev::A));
        assert_eq!(sim.pop(), Some(Ev::B));
        assert_eq!(sim.pop(), Some(Ev::C));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut sim = Simulation::new();
        sim.schedule_at(100, Ev::A);
        sim.pop();
        sim.schedule_after(50, Ev::B);
        assert_eq!(sim.pop(), Some(Ev::B));
        assert_eq!(sim.now(), 150);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(100, Ev::A);
        sim.pop();
        sim.schedule_at(50, Ev::B);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut sim = Simulation::new();
        let t = sim.schedule_at(10, Ev::A);
        sim.schedule_at(20, Ev::B);
        assert!(sim.cancel(t));
        // Cancelling twice before the event surfaces is a no-op.
        assert!(!sim.cancel(t));
        assert_eq!(sim.pop(), Some(Ev::B));
        assert_eq!(sim.now(), 20);
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut sim: Simulation<Ev> = Simulation::new();
        assert!(!sim.cancel(EventToken(999)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut sim = Simulation::new();
        sim.schedule_at(10, Ev::A);
        sim.schedule_at(100, Ev::B);
        assert_eq!(sim.pop_until(50), Some(Ev::A));
        assert_eq!(sim.pop_until(50), None);
        assert_eq!(sim.now(), 10, "clock stays at last processed event");
        assert_eq!(sim.pop_until(100), Some(Ev::B));
    }

    #[test]
    fn pop_until_skips_cancelled() {
        let mut sim = Simulation::new();
        let t = sim.schedule_at(10, Ev::A);
        sim.schedule_at(20, Ev::B);
        sim.cancel(t);
        assert_eq!(sim.pop_until(100), Some(Ev::B));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut sim: Simulation<Ev> = Simulation::new();
        sim.advance_to(500);
        assert_eq!(sim.now(), 500);
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(10, Ev::A);
        sim.advance_to(20);
    }

    #[test]
    fn advance_over_cancelled_event_ok() {
        let mut sim = Simulation::new();
        let t = sim.schedule_at(10, Ev::A);
        sim.cancel(t);
        sim.advance_to(20);
        assert_eq!(sim.now(), 20);
        assert_eq!(sim.pop(), None);
    }

    #[test]
    fn determinism_same_schedule_same_order() {
        let run = || {
            let mut sim = Simulation::new();
            for i in 0..100u64 {
                sim.schedule_at((i * 7) % 13, i);
            }
            let mut order = Vec::new();
            while let Some(e) = sim.pop() {
                order.push((sim.now(), e));
            }
            order
        };
        assert_eq!(run(), run());
    }
}
