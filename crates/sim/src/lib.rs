//! # elasticutor-sim
//!
//! A small, deterministic discrete-event simulation kernel.
//!
//! The paper evaluates Elasticutor on a 32-node × 8-core EC2 cluster. We
//! reproduce those experiments on a single machine by running the *same
//! algorithm code* (routing tables, load balancer, scheduler, the
//! reassignment protocols) against simulated CPU cores and network links.
//! This crate provides the substrate: a time-ordered event queue with
//! stable FIFO tie-breaking, lazy event cancellation, and a seeded RNG —
//! everything needed for runs that are exactly reproducible bit-for-bit
//! across machines.
//!
//! * [`queue::Simulation`] — the event loop: `schedule_after`, `pop`,
//!   `cancel`, simulated `now()`.
//! * [`rng::SimRng`] — SplitMix64-based deterministic RNG with
//!   exponential/uniform helpers (service times, arrival processes).

#![warn(missing_docs)]

pub mod queue;
pub mod rng;

pub use queue::{EventToken, Simulation};
pub use rng::SimRng;

/// Simulated time in nanoseconds since the start of the run.
pub type SimTime = u64;

/// One second of simulated time.
pub const SECOND: SimTime = 1_000_000_000;

/// One millisecond of simulated time.
pub const MILLIS: SimTime = 1_000_000;

/// One microsecond of simulated time.
pub const MICROS: SimTime = 1_000;
