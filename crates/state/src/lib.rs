//! # elasticutor-state
//!
//! The in-memory, shard-grouped key-value state store of an elastic
//! executor process (paper §3.2, "intra-process state sharing").
//!
//! Each worker process of an elastic executor hosts one [`StateStore`].
//! All task threads in the process share it (via `Arc`), reading and
//! updating state **per key** through [`StateHandle`]s. Because the store
//! is process-wide rather than task-private, reassigning a shard between
//! two tasks of the *same* process requires no state movement at all —
//! the destination task simply starts accessing the same shard through
//! the shared interface. Only cross-process (remote) reassignments
//! serialize the shard into a [`ShardSnapshot`] and ship it.
//!
//! Design notes:
//! * One `RwLock` per shard: tasks touching different shards never
//!   contend, and the common case (the single task owning the shard) takes
//!   an uncontended lock.
//! * Byte accounting is maintained per shard so engines can (a) model
//!   migration cost `s_j` and (b) report the paper's state-migration-rate
//!   metric without walking the data.
//!
//! ## Durability
//!
//! [`StateStore::open_durable`] puts a per-group write-ahead log plus
//! checkpoint/restore machinery behind the same API: every mutation is
//! logged as a checksummed [`WalOp`] frame (`wal`), checkpoints spill
//! immutable sorted runs reusing the snapshot wire format (`runs`) and
//! truncate the WAL, and crash recovery replays the WAL over the newest
//! checkpoint (`recover`) to rebuild every hosted shard exactly. A
//! non-durable store pays one `Option` branch per mutation and nothing
//! else.

#![warn(missing_docs)]

pub mod recover;
pub mod runs;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use recover::{DurableOptions, DurableStats};
pub use snapshot::{ShardSnapshot, SNAPSHOT_FORMAT_VERSION};
pub use store::{StateHandle, StateStore};
pub use wal::{decode_tail, encode_tail, read_wal, WalError, WalOp, WalReplay, WalWriter};
