//! # elasticutor-state
//!
//! The in-memory, shard-grouped key-value state store of an elastic
//! executor process (paper §3.2, "intra-process state sharing").
//!
//! Each worker process of an elastic executor hosts one [`StateStore`].
//! All task threads in the process share it (via `Arc`), reading and
//! updating state **per key** through [`StateHandle`]s. Because the store
//! is process-wide rather than task-private, reassigning a shard between
//! two tasks of the *same* process requires no state movement at all —
//! the destination task simply starts accessing the same shard through
//! the shared interface. Only cross-process (remote) reassignments
//! serialize the shard into a [`ShardSnapshot`] and ship it.
//!
//! Design notes:
//! * One `RwLock` per shard: tasks touching different shards never
//!   contend, and the common case (the single task owning the shard) takes
//!   an uncontended lock.
//! * Byte accounting is maintained per shard so engines can (a) model
//!   migration cost `s_j` and (b) report the paper's state-migration-rate
//!   metric without walking the data.

#![warn(missing_docs)]

pub mod snapshot;
pub mod store;

pub use snapshot::{ShardSnapshot, SNAPSHOT_FORMAT_VERSION};
pub use store::{StateHandle, StateStore};
