//! Durable-store orchestration: the manifest, checkpoint/truncate,
//! background compaction, and crash recovery.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/MANIFEST            one checksummed frame: seq, wal epoch, run list, live set
//! <dir>/wal-XXXXXXXX.wal    WAL epoch files (current epoch = highest)
//! <dir>/run-XXXXXXXX.run    immutable sorted checkpoint runs
//! ```
//!
//! The manifest is the **commit point** of every checkpoint and
//! compaction: it is rewritten via temp + `fsync` + `rename`, so readers
//! see either the old or the new manifest, never a mix. Everything else
//! follows from which manifest won:
//!
//! * **Checkpoint**: rotate the WAL to a fresh epoch, snapshot the dirty
//!   shards (no locks held), spill them as a run, then commit a manifest
//!   naming the new run and the new epoch. Only after the commit are the
//!   old epochs deleted. A crash anywhere leaves either the old manifest
//!   (old epochs intact, replay reproduces everything; the orphan run is
//!   swept) or the new one (old epochs ignored).
//! * **Compaction** rewrites all runs into one (newest shard copy wins,
//!   dropped shards filtered out) and commits it the same way.
//! * **Recovery** loads runs in manifest order (later overrides earlier,
//!   whole-shard), filtered to the manifest's live set, then replays WAL
//!   epochs `>= manifest.wal_epoch` in ascending order. Epochs present
//!   on disk must be contiguous among themselves — a gap means a
//!   committed epoch vanished, which recovery refuses to paper over.
//!   Replayed shards seed the dirty set, so the next checkpoint persists
//!   them before truncating the epochs that carried them.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use elasticutor_core::fault;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum};
use parking_lot::Mutex;

use crate::runs::{read_run, sync_dir, write_run};
use crate::wal::{checked_body, read_wal, WalError, WalOp, WalWriter};
use crate::ShardSnapshot;

/// The manifest's single frame kind.
const M_MANIFEST: u8 = 64;

/// Default WAL-bytes threshold at which maintenance checkpoints.
const DEFAULT_CHECKPOINT_WAL_BYTES: u64 = 8 * 1024 * 1024;
/// Default run count at which maintenance compacts.
const DEFAULT_COMPACT_MIN_RUNS: usize = 4;

/// Configuration for [`StateStore::open_durable`](crate::StateStore::open_durable).
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Directory holding the WAL, runs, and manifest (created if absent).
    pub dir: PathBuf,
    /// WAL bytes in the current epoch that trigger an automatic
    /// checkpoint (when maintenance is on).
    pub checkpoint_wal_bytes: u64,
    /// Run count that triggers automatic compaction (when maintenance
    /// is on).
    pub compact_min_runs: usize,
    /// Whether to run the background maintenance thread (auto
    /// checkpoint + compaction). Tests that want deterministic disk
    /// layouts turn this off and call the operations directly.
    pub maintenance: bool,
}

impl DurableOptions {
    /// Options rooted at `dir` with default thresholds and maintenance
    /// enabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_wal_bytes: DEFAULT_CHECKPOINT_WAL_BYTES,
            compact_min_runs: DEFAULT_COMPACT_MIN_RUNS,
            maintenance: true,
        }
    }

    /// Disables the background maintenance thread.
    pub fn manual(mut self) -> Self {
        self.maintenance = false;
        self
    }

    /// Overrides the auto-checkpoint WAL-bytes threshold.
    pub fn checkpoint_wal_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_wal_bytes = bytes;
        self
    }

    /// Overrides the auto-compaction run-count threshold.
    pub fn compact_min_runs(mut self, runs: usize) -> Self {
        self.compact_min_runs = runs;
        self
    }
}

/// A snapshot of the durable backend's disk accounting, for benches and
/// tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableStats {
    /// Bytes appended to the current WAL epoch.
    pub wal_bytes: u64,
    /// The current WAL epoch number.
    pub wal_epoch: u64,
    /// Number of live checkpoint runs.
    pub runs: usize,
    /// The manifest sequence number (bumps at each checkpoint/compaction).
    pub manifest_seq: u64,
    /// Shards currently dirty (mutated since the last checkpoint).
    pub dirty_shards: usize,
}

/// The durable-state manifest: which runs and which WAL epoch
/// reconstruct the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub seq: u64,
    pub wal_epoch: u64,
    /// Run sequence numbers, oldest first — later runs override earlier
    /// ones shard-by-shard at recovery.
    pub runs: Vec<u64>,
    /// Shards the store hosted at manifest time. Runs may still carry
    /// shards that later migrated away; this set filters them out.
    pub live: BTreeSet<ShardId>,
}

impl Manifest {
    fn initial(num_shards: u32) -> Self {
        Self {
            seq: 0,
            wal_epoch: 0,
            runs: Vec::new(),
            live: (0..num_shards).map(ShardId).collect(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        wire::put_u64(&mut body, self.seq);
        wire::put_u64(&mut body, self.wal_epoch);
        wire::put_u32(&mut body, self.runs.len() as u32);
        for r in &self.runs {
            wire::put_u64(&mut body, *r);
        }
        wire::put_u32(&mut body, self.live.len() as u32);
        for s in &self.live {
            wire::put_u32(&mut body, s.0);
        }
        let mut c = Checksum::new();
        c.write(&[M_MANIFEST]);
        c.write(&body);
        wire::put_u64(&mut body, c.finish());
        let mut out = Vec::new();
        wire::write_frame(&mut out, M_MANIFEST, &body).expect("manifest frame within cap");
        out
    }

    fn decode(data: &[u8]) -> Result<Self, WalError> {
        let mut cursor = data;
        let (kind, payload) = wire::read_frame(&mut cursor)?;
        if kind != M_MANIFEST {
            return Err(WalError::Corrupt("manifest frame kind"));
        }
        if !cursor.is_empty() {
            return Err(WalError::Corrupt("trailing bytes after manifest frame"));
        }
        let body =
            checked_body(kind, &payload).map_err(|_| WalError::Corrupt("manifest checksum"))?;
        let mut r = ByteReader::new(body);
        let seq = r.u64()?;
        let wal_epoch = r.u64()?;
        let run_count = r.u32()?;
        let mut runs = Vec::with_capacity((run_count as usize).min(4096));
        for _ in 0..run_count {
            runs.push(r.u64()?);
        }
        let live_count = r.u32()?;
        let mut live = BTreeSet::new();
        for _ in 0..live_count {
            live.insert(ShardId(r.u32()?));
        }
        if !r.is_empty() {
            return Err(WalError::Corrupt("trailing bytes in manifest body"));
        }
        Ok(Self {
            seq,
            wal_epoch,
            runs,
            live,
        })
    }
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch:08}.wal"))
}

fn run_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("run-{seq:08}.run"))
}

/// Parses `prefix-XXXXXXXX.ext` file names back to their number.
fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

/// Writes the manifest atomically (temp + fsync + rename + dir sync) —
/// the commit point of checkpoint and compaction.
fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), WalError> {
    let tmp = dir.join("MANIFEST.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&m.encode())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, manifest_path(dir))?;
    sync_dir(dir)?;
    Ok(())
}

fn injected(point: &'static str) -> impl FnOnce(fault::InjectedFault) -> WalError {
    move |_| WalError::Corrupt(point)
}

/// Mutable durable-backend state, guarded by one mutex. Held briefly:
/// per-append during [`Durability::log`], and across the manifest swap
/// inside checkpoint/compaction.
pub(crate) struct DurInner {
    wal: WalWriter,
    epoch: u64,
    manifest: Manifest,
    next_run_seq: u64,
    /// Shards mutated since the last checkpoint — exactly the shards
    /// whose data lives only in WAL epochs a checkpoint would truncate.
    dirty: BTreeSet<ShardId>,
    /// Migration tails being recorded: live `Put`/`Del` ops per shard,
    /// captured while the base snapshot streams to the receiver.
    tails: BTreeMap<ShardId, Vec<WalOp>>,
}

/// The durable backend behind a [`StateStore`](crate::StateStore):
/// WAL writer, manifest, and the checkpoint/compaction machinery.
pub struct Durability {
    dir: PathBuf,
    opts: DurableOptions,
    inner: Mutex<DurInner>,
    /// Serializes checkpoint and compaction (both rewrite the manifest
    /// and shuffle files); never held while shard locks are held.
    ckpt_lock: Mutex<()>,
}

/// What [`Durability::open`] recovered from disk.
pub(crate) struct Recovered {
    pub dur: Durability,
    /// Per-shard reconstructed state (live shards with data).
    pub shards: BTreeMap<ShardId, Vec<(Key, Bytes)>>,
    /// Every live shard — a live shard absent from `shards` recovered
    /// empty but is still hosted.
    pub live: BTreeSet<ShardId>,
}

impl Durability {
    /// Opens (or creates) the durable directory and runs recovery:
    /// manifest, then runs, then WAL replay. See the module docs for
    /// ordering and tolerance rules.
    pub(crate) fn open(num_shards: u32, opts: DurableOptions) -> Result<Recovered, WalError> {
        let dir = opts.dir.clone();
        std::fs::create_dir_all(&dir)?;
        let manifest = match std::fs::read(manifest_path(&dir)) {
            Ok(data) => Manifest::decode(&data)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::initial(num_shards),
            Err(e) => return Err(e.into()),
        };

        // Scan the directory once for epochs and run files.
        let mut disk_epochs: Vec<u64> = Vec::new();
        let mut disk_runs: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(e) = parse_numbered(name, "wal-", ".wal") {
                disk_epochs.push(e);
            } else if let Some(s) = parse_numbered(name, "run-", ".run") {
                disk_runs.push(s);
            }
        }
        disk_epochs.sort_unstable();

        // Load runs in manifest order: later runs override earlier ones
        // whole-shard; the live set filters out shards that migrated
        // away after the run was written.
        let mut shards: BTreeMap<ShardId, BTreeMap<Key, Bytes>> = BTreeMap::new();
        for seq in &manifest.runs {
            for snap in read_run(&run_path(&dir, *seq))? {
                if manifest.live.contains(&snap.shard) {
                    shards.insert(snap.shard, snap.entries.into_iter().collect());
                }
            }
        }
        let mut live = manifest.live.clone();

        // Replay WAL epochs >= the manifest's, ascending. Epochs below
        // it are truncated leftovers; epochs present must be contiguous
        // among themselves (a mid-sequence gap is a lost committed
        // epoch). A torn tail is legal only in the newest epoch — the
        // one a crash could have interrupted.
        let replay_epochs: Vec<u64> = disk_epochs
            .iter()
            .copied()
            .filter(|e| *e >= manifest.wal_epoch)
            .collect();
        for pair in replay_epochs.windows(2) {
            if pair[1] != pair[0] + 1 {
                return Err(WalError::Corrupt("wal epoch gap"));
            }
        }
        let mut dirty: BTreeSet<ShardId> = BTreeSet::new();
        for (i, epoch) in replay_epochs.iter().enumerate() {
            let replay = read_wal(&wal_path(&dir, *epoch))?;
            if replay.torn_tail {
                if i + 1 != replay_epochs.len() {
                    return Err(WalError::Corrupt("torn tail in non-final wal epoch"));
                }
                // Tolerated once, repaired now: cut the file back to its
                // clean prefix so the next open — which will see a fresh
                // epoch above this one — does not re-judge the same tear
                // as mid-sequence corruption.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(wal_path(&dir, *epoch))?;
                f.set_len(replay.valid_bytes)?;
                f.sync_data()?;
            }
            for op in replay.ops {
                dirty.insert(op.shard());
                match op {
                    WalOp::Put { shard, key, value } => {
                        shards.entry(shard).or_default().insert(key, value);
                        live.insert(shard);
                    }
                    WalOp::Del { shard, key } => {
                        if let Some(map) = shards.get_mut(&shard) {
                            map.remove(&key);
                        }
                    }
                    WalOp::Install(snap) => {
                        live.insert(snap.shard);
                        shards.insert(snap.shard, snap.entries.into_iter().collect());
                    }
                    WalOp::Drop { shard } => {
                        live.remove(&shard);
                        shards.remove(&shard);
                    }
                }
            }
        }
        shards.retain(|s, _| live.contains(s));

        // Open a fresh epoch above everything seen — never append to a
        // possibly-torn file.
        let epoch = replay_epochs
            .last()
            .copied()
            .unwrap_or(manifest.wal_epoch)
            .max(manifest.wal_epoch)
            + 1;
        let wal = WalWriter::create(&wal_path(&dir, epoch))?;
        let next_run_seq = disk_runs.iter().copied().max().unwrap_or(0) + 1;

        // Sweep orphans now that recovery committed to this manifest:
        // temp files, runs it does not reference, epochs it truncated.
        let keep_runs: BTreeSet<u64> = manifest.runs.iter().copied().collect();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let orphan = name.ends_with(".tmp")
                || parse_numbered(name, "run-", ".run").is_some_and(|s| !keep_runs.contains(&s))
                || parse_numbered(name, "wal-", ".wal").is_some_and(|e| e < manifest.wal_epoch);
            if orphan {
                let _ = std::fs::remove_file(entry.path());
            }
        }

        let dur = Durability {
            dir,
            opts,
            inner: Mutex::new(DurInner {
                wal,
                epoch,
                manifest,
                next_run_seq,
                dirty,
                tails: BTreeMap::new(),
            }),
            ckpt_lock: Mutex::new(()),
        };
        Ok(Recovered {
            dur,
            shards: shards
                .into_iter()
                .map(|(s, m)| (s, m.into_iter().collect()))
                .collect(),
            live,
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// Appends one op to the WAL. Called with the mutated shard's lock
    /// held (mutation first, log second — the shard lock orders the two
    /// for any one key). Panics on I/O failure: a durable store that
    /// cannot log can no longer uphold its contract, and the mutation
    /// API has no error channel (classic write-ahead stores share this
    /// stance).
    pub(crate) fn log(&self, op: &WalOp) {
        let mut inner = self.inner.lock();
        if let Some(tail) = inner.tails.get_mut(&op.shard()) {
            if matches!(op, WalOp::Put { .. } | WalOp::Del { .. }) {
                tail.push(op.clone());
            }
        }
        inner.dirty.insert(op.shard());
        inner.wal.append(op).expect("wal append failed");
    }

    /// Forces the current WAL epoch to stable storage.
    pub(crate) fn sync(&self) -> Result<(), WalError> {
        self.inner.lock().wal.sync()
    }

    pub(crate) fn stats(&self) -> DurableStats {
        let inner = self.inner.lock();
        DurableStats {
            wal_bytes: inner.wal.bytes_written(),
            wal_epoch: inner.epoch,
            runs: inner.manifest.runs.len(),
            manifest_seq: inner.manifest.seq,
            dirty_shards: inner.dirty.len(),
        }
    }

    /// Starts recording a migration tail for `shard`: every subsequent
    /// `Put`/`Del` logged for it is also captured until taken or
    /// cancelled.
    pub(crate) fn start_tail(&self, shard: ShardId) {
        self.inner.lock().tails.insert(shard, Vec::new());
    }

    /// Stops recording and returns the captured tail.
    pub(crate) fn take_tail(&self, shard: ShardId) -> Vec<WalOp> {
        self.inner.lock().tails.remove(&shard).unwrap_or_default()
    }

    /// Drops a recording without returning it.
    pub(crate) fn cancel_tail(&self, shard: ShardId) {
        self.inner.lock().tails.remove(&shard);
    }

    /// Checkpoints the store: rotate the WAL, spill dirty shards as a
    /// run, commit a new manifest, delete truncated epochs. Returns
    /// `false` if nothing was dirty. `store_shards`/`snapshot` abstract
    /// the store so this module stays free of a circular dependency.
    pub(crate) fn checkpoint(
        &self,
        live_shards: impl FnOnce() -> Vec<ShardId>,
        snapshot: impl Fn(ShardId) -> Option<ShardSnapshot>,
    ) -> Result<bool, WalError> {
        let _serial = self.ckpt_lock.lock();
        fault::fail_point("state.ckpt.begin").map_err(injected("state.ckpt.begin"))?;

        // Rotate: new epoch file first, then swap the writer and take
        // the dirty set. Ops racing the swap land in one epoch or the
        // other; either way replay sees them (idempotent, absolute).
        let (dirty, new_epoch, run_seq, old_manifest) = {
            let mut inner = self.inner.lock();
            if inner.dirty.is_empty() {
                return Ok(false);
            }
            let new_epoch = inner.epoch + 1;
            // Create outside the lock? Creation is cheap and failure
            // must leave the writer untouched, so do it while holding.
            let wal = WalWriter::create(&wal_path(&self.dir, new_epoch))?;
            inner.wal = wal;
            inner.epoch = new_epoch;
            let dirty = std::mem::take(&mut inner.dirty);
            let run_seq = inner.next_run_seq;
            inner.next_run_seq += 1;
            (dirty, new_epoch, run_seq, inner.manifest.clone())
        };
        // From here on, any failure re-merges the taken dirty set so the
        // next checkpoint still persists those shards.
        let result = self.checkpoint_commit(
            &dirty,
            new_epoch,
            run_seq,
            old_manifest,
            snapshot,
            live_shards,
        );
        if result.is_err() {
            self.inner.lock().dirty.extend(dirty);
        }
        result
    }

    fn checkpoint_commit(
        &self,
        dirty: &BTreeSet<ShardId>,
        new_epoch: u64,
        run_seq: u64,
        old_manifest: Manifest,
        snapshot: impl Fn(ShardId) -> Option<ShardSnapshot>,
        live_shards: impl FnOnce() -> Vec<ShardId>,
    ) -> Result<bool, WalError> {
        fault::fail_point("state.ckpt.rotate").map_err(injected("state.ckpt.rotate"))?;

        // Snapshot the dirty shards with no durable locks held — only
        // each shard's own read lock, briefly. Shards dirtied then
        // dropped (migrated away) snapshot as None and are simply not
        // in the run; the manifest's live set is what un-hosts them.
        let snaps: Vec<ShardSnapshot> = dirty.iter().filter_map(|s| snapshot(*s)).collect();
        let wrote_run = !snaps.is_empty();
        if wrote_run {
            write_run(&run_path(&self.dir, run_seq), &snaps)?;
        }
        fault::fail_point("state.ckpt.run").map_err(injected("state.ckpt.run"))?;

        let live: BTreeSet<ShardId> = live_shards().into_iter().collect();
        let mut new_manifest = old_manifest;
        new_manifest.seq += 1;
        new_manifest.wal_epoch = new_epoch;
        if wrote_run {
            new_manifest.runs.push(run_seq);
        }
        new_manifest.live = live;
        fault::fail_point("state.ckpt.manifest").map_err(injected("state.ckpt.manifest"))?;
        {
            // The manifest swap is the commit point; holding the inner
            // lock across it keeps `stats()` and rotation consistent.
            let mut inner = self.inner.lock();
            write_manifest(&self.dir, &new_manifest)?;
            inner.manifest = new_manifest;
        }
        fault::fail_point("state.ckpt.cleanup").map_err(injected("state.ckpt.cleanup"))?;

        // Truncate: epochs below the committed one are dead weight.
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if parse_numbered(name, "wal-", ".wal").is_some_and(|e| e < new_epoch) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(true)
    }

    /// Merges all runs into one (newest shard copy wins, non-live
    /// shards dropped) and commits a manifest referencing only the
    /// merged run. Returns `false` when fewer than two runs exist.
    pub(crate) fn compact(&self) -> Result<bool, WalError> {
        let _serial = self.ckpt_lock.lock();
        let (runs, live, run_seq) = {
            let mut inner = self.inner.lock();
            if inner.manifest.runs.len() < 2 {
                return Ok(false);
            }
            let run_seq = inner.next_run_seq;
            inner.next_run_seq += 1;
            (
                inner.manifest.runs.clone(),
                inner.manifest.live.clone(),
                run_seq,
            )
        };
        // Whole-shard replacement, newest run wins — the same rule
        // recovery applies when loading runs in manifest order.
        let mut merged: BTreeMap<ShardId, ShardSnapshot> = BTreeMap::new();
        for seq in &runs {
            for snap in read_run(&run_path(&self.dir, *seq))? {
                if live.contains(&snap.shard) {
                    merged.insert(snap.shard, snap);
                }
            }
        }
        fault::fail_point("state.compact.write").map_err(injected("state.compact.write"))?;
        let snaps: Vec<ShardSnapshot> = merged.into_values().collect();
        write_run(&run_path(&self.dir, run_seq), &snaps)?;
        fault::fail_point("state.compact.manifest").map_err(injected("state.compact.manifest"))?;
        {
            let mut inner = self.inner.lock();
            let mut new_manifest = inner.manifest.clone();
            new_manifest.seq += 1;
            new_manifest.runs = vec![run_seq];
            write_manifest(&self.dir, &new_manifest)?;
            inner.manifest = new_manifest;
        }
        for seq in &runs {
            let _ = std::fs::remove_file(run_path(&self.dir, *seq));
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip_and_strictness() {
        let m = Manifest {
            seq: 7,
            wal_epoch: 3,
            runs: vec![1, 4, 9],
            live: [ShardId(0), ShardId(5), ShardId(300)].into_iter().collect(),
        };
        let data = m.encode();
        assert_eq!(Manifest::decode(&data).unwrap(), m);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "flip at {i} accepted");
        }
        for n in 0..data.len() {
            assert!(Manifest::decode(&data[..n]).is_err(), "cut at {n} accepted");
        }
    }

    #[test]
    fn initial_manifest_hosts_dense_range() {
        let m = Manifest::initial(4);
        assert_eq!(m.live.len(), 4);
        assert!(m.live.contains(&ShardId(3)));
        assert_eq!(m.wal_epoch, 0);
        assert!(m.runs.is_empty());
    }
}
