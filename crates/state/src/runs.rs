//! Immutable sorted checkpoint runs.
//!
//! A checkpoint spills each dirty shard into a **run file**: a sequence
//! of checksummed frames reusing [`ShardSnapshot`] as the payload format
//! (the same bytes that travel on a migration wire). Runs are written to
//! a temp file, `fsync`ed, then renamed into place and the directory
//! synced — a run either exists completely or not at all, so reading is
//! **strict**: any damage is a typed [`WalError`], never a tolerated
//! torn tail (that discipline belongs to the WAL alone).
//!
//! Frame kinds:
//!
//! | kind | payload |
//! |---|---|
//! | `R_CHUNK` | one snapshot chunk of the current shard |
//! | `R_SHARD` | marker sealing the preceding chunks: shard, entries, value bytes, digest |
//! | `R_SEAL` | final frame: shard count — a run missing it was never committed |

use std::io::Write;
use std::path::Path;

use elasticutor_core::ids::ShardId;
use elasticutor_core::wire::{self, ByteReader, Checksum};

use crate::wal::{checked_body, WalError};
use crate::ShardSnapshot;

/// One snapshot chunk of the shard currently being written.
pub const R_CHUNK: u8 = 16;
/// Marker sealing one shard's chunks.
pub const R_SHARD: u8 = 17;
/// Final frame sealing the whole run.
pub const R_SEAL: u8 = 18;

/// Encoded bytes per chunk frame inside a run.
const RUN_CHUNK_BYTES: u64 = 256 * 1024;

fn push_frame(buf: &mut Vec<u8>, kind: u8, mut body: Vec<u8>) {
    let mut c = Checksum::new();
    c.write(&[kind]);
    c.write(&body);
    wire::put_u64(&mut body, c.finish());
    wire::write_frame(buf, kind, &body).expect("run frame within cap");
}

/// `fsync` on a directory so a rename into it survives power loss.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), WalError> {
    // Best-effort on platforms where directories cannot be opened.
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

/// Writes `snapshots` as one immutable run at `path` (temp + fsync +
/// rename + dir-sync). Returns the file's size in bytes.
pub fn write_run(path: &Path, snapshots: &[ShardSnapshot]) -> Result<u64, WalError> {
    let dir = path
        .parent()
        .ok_or(WalError::Corrupt("run path has no parent"))?;
    let tmp = path.with_extension("tmp");
    let mut buf = Vec::new();
    for snap in snapshots {
        for chunk in snap.chunks(RUN_CHUNK_BYTES) {
            push_frame(&mut buf, R_CHUNK, chunk.encode());
        }
        let mut digest = Checksum::new();
        snap.fold_checksum(&mut digest);
        let mut marker = Vec::with_capacity(36);
        wire::put_u32(&mut marker, snap.shard.0);
        wire::put_u64(&mut marker, snap.len() as u64);
        wire::put_u64(&mut marker, snap.value_bytes());
        wire::put_u64(&mut marker, digest.finish());
        push_frame(&mut buf, R_SHARD, marker);
    }
    let mut seal = Vec::with_capacity(12);
    wire::put_u64(&mut seal, snapshots.len() as u64);
    push_frame(&mut buf, R_SEAL, seal);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    sync_dir(dir)?;
    Ok(buf.len() as u64)
}

/// Reads a run back, strictly: every frame checksum must verify, every
/// shard's marker totals must match its chunks, and the seal must close
/// the file exactly.
pub fn read_run(path: &Path) -> Result<Vec<ShardSnapshot>, WalError> {
    let data = std::fs::read(path)?;
    let mut cursor = &data[..];
    let mut shards = Vec::new();
    let mut pending: Vec<ShardSnapshot> = Vec::new();
    let mut sealed = false;
    while !cursor.is_empty() {
        if sealed {
            return Err(WalError::Corrupt("run frames after seal"));
        }
        let (kind, payload) = wire::read_frame(&mut cursor)?;
        let body =
            checked_body(kind, &payload).map_err(|_| WalError::Corrupt("run frame checksum"))?;
        match kind {
            R_CHUNK => {
                let chunk = ShardSnapshot::decode(body)
                    .map_err(|_| WalError::Corrupt("run chunk failed snapshot decode"))?;
                if let Some(first) = pending.first() {
                    if first.shard != chunk.shard {
                        return Err(WalError::Corrupt("run chunks switch shards unsealed"));
                    }
                }
                pending.push(chunk);
            }
            R_SHARD => {
                let mut r = ByteReader::new(body);
                let shard = ShardId(r.u32()?);
                let entries = r.u64()?;
                let value_bytes = r.u64()?;
                let digest = r.u64()?;
                if !r.is_empty() {
                    return Err(WalError::Corrupt("trailing bytes in run shard marker"));
                }
                let mut combined = ShardSnapshot::empty(shard);
                for chunk in pending.drain(..) {
                    if chunk.shard != shard {
                        return Err(WalError::Corrupt("run marker names a different shard"));
                    }
                    combined.entries.extend(chunk.entries);
                }
                let mut c = Checksum::new();
                combined.fold_checksum(&mut c);
                if combined.len() as u64 != entries
                    || combined.value_bytes() != value_bytes
                    || c.finish() != digest
                {
                    return Err(WalError::Corrupt("run marker totals mismatch"));
                }
                shards.push(combined);
            }
            R_SEAL => {
                if !pending.is_empty() {
                    return Err(WalError::Corrupt("run sealed with unmarked chunks"));
                }
                let mut r = ByteReader::new(body);
                let count = r.u64()?;
                if !r.is_empty() {
                    return Err(WalError::Corrupt("trailing bytes in run seal"));
                }
                if count != shards.len() as u64 {
                    return Err(WalError::Corrupt("run seal shard count mismatch"));
                }
                sealed = true;
            }
            _ => return Err(WalError::Corrupt("unknown run frame kind")),
        }
    }
    if !sealed {
        return Err(WalError::Corrupt("run missing seal"));
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use elasticutor_core::ids::Key;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("elasticutor-run-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("r.run")
    }

    fn sample_runs() -> Vec<ShardSnapshot> {
        vec![
            ShardSnapshot {
                shard: ShardId(0),
                entries: (0..100u64)
                    .map(|i| (Key(i), Bytes::from(vec![i as u8; 64])))
                    .collect(),
            },
            ShardSnapshot::empty(ShardId(4)),
            ShardSnapshot {
                shard: ShardId(7),
                entries: vec![(Key(9), Bytes::from_static(b"lone"))],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let path = tmp_path("roundtrip");
        let snaps = sample_runs();
        let bytes = write_run(&path, &snaps).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_run(&path).unwrap(), snaps);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn any_damage_is_a_typed_error() {
        let path = tmp_path("damage");
        write_run(&path, &sample_runs()).unwrap();
        let data = std::fs::read(&path).unwrap();
        // Truncation anywhere: strict error (runs are atomic — a short
        // file means the rename lied, which we refuse to paper over).
        for n in [0, 1, 7, data.len() / 2, data.len() - 1] {
            assert!(
                decode_slice(&data[..n]).is_err(),
                "truncation at {n} accepted"
            );
        }
        // A sample of single-bit flips.
        for i in (0..data.len()).step_by(97) {
            let mut bad = data.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(decode_slice(&bad).is_err(), "bit flip at {i} accepted");
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    /// read_run over a byte slice, via a scratch file.
    fn decode_slice(data: &[u8]) -> Result<Vec<ShardSnapshot>, WalError> {
        let path = tmp_path("slice");
        std::fs::write(&path, data).unwrap();
        let out = read_run(&path);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
        out
    }
}
