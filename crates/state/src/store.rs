//! The process-wide shard-grouped state store.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use parking_lot::RwLock;

use crate::recover::{Durability, DurableOptions, DurableStats};
use crate::wal::{WalError, WalOp};

/// One shard's data plus its byte accounting.
#[derive(Default)]
struct ShardCell {
    /// Key→value map. BTreeMap gives deterministic iteration for
    /// snapshots (and the per-shard key counts are small: state is split
    /// across `z = 256` shards per executor).
    entries: BTreeMap<Key, Bytes>,
    /// Sum of value lengths, maintained incrementally.
    bytes: u64,
    /// Whether this store currently hosts the shard. Dense cells are
    /// permanent allocations whose *contents* come and go with
    /// migration; this flag is what "removed" means for them.
    hosted: bool,
}

impl ShardCell {
    fn hosted() -> Self {
        Self {
            hosted: true,
            ..Self::default()
        }
    }
}

/// The process-wide state store shared by all task threads of an elastic
/// executor's worker process.
///
/// Thread safety and the hot path: shards `0..z` declared at
/// construction ([`Self::with_shards`]) live in a **dense slab** indexed
/// directly by shard id — a per-record state access touches only that
/// shard's own `RwLock`, with no registry lock and no `Arc` clone in
/// between. Shards outside the dense range (installed dynamically by
/// migration) fall back to a `RwLock`-protected registry map, which is
/// fine because they are touched through the same rare control paths
/// that created them. Tasks working different shards never contend
/// either way.
#[derive(Default)]
pub struct StateStore {
    /// Shards `0..dense.len()`: direct-indexed, allocation-free lookup.
    dense: Box<[RwLock<ShardCell>]>,
    /// Shards at or beyond the dense range, keyed sparsely.
    dynamic: RwLock<BTreeMap<ShardId, Arc<RwLock<ShardCell>>>>,
    /// Total value bytes across shards (kept eventually-exact via atomic
    /// deltas; used for cheap `s_j` reads by the scheduler).
    total_bytes: AtomicU64,
    /// The durable backend, when opened via [`Self::open_durable`].
    /// `None` keeps the in-memory store allocation-identical to before
    /// durability existed — one branch per mutation is the whole cost.
    dur: Option<Arc<Durability>>,
}

impl StateStore {
    /// Creates an empty store (no dense range; every shard is dynamic).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store pre-registered with shards `0..num_shards` (the
    /// local main process of a fresh executor owns all its shards),
    /// placing them on the dense fast path.
    pub fn with_shards(num_shards: u32) -> Self {
        Self {
            dense: (0..num_shards)
                .map(|_| RwLock::new(ShardCell::hosted()))
                .collect(),
            ..Self::default()
        }
    }

    /// Runs `f` under `shard`'s read lock; `None` if the shard is not
    /// hosted here.
    fn with_cell_read<R>(&self, shard: ShardId, f: impl FnOnce(&ShardCell) -> R) -> Option<R> {
        if let Some(cell) = self.dense.get(shard.index()) {
            let guard = cell.read();
            return guard.hosted.then(|| f(&guard));
        }
        let cell = self.dynamic.read().get(&shard).cloned()?;
        let guard = cell.read();
        guard.hosted.then(|| f(&guard))
    }

    /// Runs `f` under `shard`'s write lock. With `create`, an unhosted
    /// shard is (re)created empty first; otherwise `None`.
    fn with_cell_write<R>(
        &self,
        shard: ShardId,
        create: bool,
        f: impl FnOnce(&mut ShardCell) -> R,
    ) -> Option<R> {
        if let Some(cell) = self.dense.get(shard.index()) {
            let mut guard = cell.write();
            if !guard.hosted {
                if !create {
                    return None;
                }
                guard.hosted = true;
            }
            return Some(f(&mut guard));
        }
        let cell = if create {
            self.dynamic
                .write()
                .entry(shard)
                .or_insert_with(|| Arc::new(RwLock::new(ShardCell::hosted())))
                .clone()
        } else {
            self.dynamic.read().get(&shard).cloned()?
        };
        let mut guard = cell.write();
        Some(f(&mut guard))
    }

    /// Whether the store currently hosts `shard`.
    pub fn hosts(&self, shard: ShardId) -> bool {
        if let Some(cell) = self.dense.get(shard.index()) {
            return cell.read().hosted;
        }
        self.dynamic.read().contains_key(&shard)
    }

    /// Shards currently hosted, ascending.
    pub fn shards(&self) -> Vec<ShardId> {
        let mut out: Vec<ShardId> = self
            .dense
            .iter()
            .enumerate()
            .filter(|(_, c)| c.read().hosted)
            .map(|(i, _)| ShardId::from_index(i))
            .collect();
        out.extend(self.dynamic.read().keys().copied());
        out.sort_unstable();
        out
    }

    /// Reads the value of `key` in `shard`. `None` if absent (or the
    /// shard is not hosted here).
    pub fn get(&self, shard: ShardId, key: Key) -> Option<Bytes> {
        self.with_cell_read(shard, |cell| cell.entries.get(&key).cloned())
            .flatten()
    }

    /// Writes `value` for `key` in `shard`, creating the shard if absent.
    /// Returns the previous value, if any.
    pub fn put(&self, shard: ShardId, key: Key, value: Bytes) -> Option<Bytes> {
        self.with_cell_write(shard, true, |cell| {
            let new_len = value.len() as u64;
            let old = cell.entries.insert(key, value.clone());
            let old_len = old.as_ref().map_or(0, |v| v.len() as u64);
            cell.bytes = cell.bytes + new_len - old_len;
            self.adjust_total(old_len, new_len);
            // Logged under the shard's write lock, after the mutation:
            // the lock serializes WAL order with mutation order per key.
            if let Some(dur) = &self.dur {
                dur.log(&WalOp::Put { shard, key, value });
            }
            old
        })
        .expect("create-mode write always finds a cell")
    }

    /// Removes `key` from `shard`, returning the previous value.
    pub fn remove(&self, shard: ShardId, key: Key) -> Option<Bytes> {
        self.with_cell_write(shard, false, |cell| {
            let old = cell.entries.remove(&key);
            if let Some(v) = &old {
                cell.bytes -= v.len() as u64;
                self.total_bytes
                    .fetch_sub(v.len() as u64, Ordering::Relaxed);
                // A remove of an absent key logs nothing — replay would
                // be a no-op anyway.
                if let Some(dur) = &self.dur {
                    dur.log(&WalOp::Del { shard, key });
                }
            }
            old
        })
        .flatten()
    }

    /// Atomically read-modify-writes the value of `key` in `shard`. The
    /// closure receives the current value and returns the replacement
    /// (`None` deletes). Holds the shard's write lock for the duration —
    /// this is the per-key update primitive operators use, so tuples of
    /// the same key serialize here even across (transiently) concurrent
    /// tasks.
    pub fn update<F>(&self, shard: ShardId, key: Key, f: F) -> Option<Bytes>
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        self.with_cell_write(shard, true, |cell| {
            let old_len = cell.entries.get(&key).map_or(0, |v| v.len() as u64);
            let next = f(cell.entries.get(&key));
            let result = next.clone();
            match next {
                Some(v) => {
                    let new_len = v.len() as u64;
                    cell.entries.insert(key, v.clone());
                    cell.bytes = cell.bytes + new_len - old_len;
                    self.adjust_total(old_len, new_len);
                    if let Some(dur) = &self.dur {
                        dur.log(&WalOp::Put {
                            shard,
                            key,
                            value: v,
                        });
                    }
                }
                None => {
                    if cell.entries.remove(&key).is_some() {
                        cell.bytes -= old_len;
                        self.total_bytes.fetch_sub(old_len, Ordering::Relaxed);
                        if let Some(dur) = &self.dur {
                            dur.log(&WalOp::Del { shard, key });
                        }
                    }
                }
            }
            result
        })
        .expect("create-mode write always finds a cell")
    }

    fn adjust_total(&self, old_len: u64, new_len: u64) {
        if new_len >= old_len {
            self.total_bytes
                .fetch_add(new_len - old_len, Ordering::Relaxed);
        } else {
            self.total_bytes
                .fetch_sub(old_len - new_len, Ordering::Relaxed);
        }
    }

    /// Value bytes currently held for `shard` (0 if not hosted).
    pub fn shard_bytes(&self, shard: ShardId) -> u64 {
        self.with_cell_read(shard, |cell| cell.bytes).unwrap_or(0)
    }

    /// Number of keys in `shard`.
    pub fn shard_keys(&self, shard: ShardId) -> usize {
        self.with_cell_read(shard, |cell| cell.entries.len())
            .unwrap_or(0)
    }

    /// Total value bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Extracts `shard` for migration: removes it from this store and
    /// returns its snapshot. Returns `None` if the shard is not hosted.
    pub fn extract_shard(&self, shard: ShardId) -> Option<crate::ShardSnapshot> {
        if let Some(cell) = self.dense.get(shard.index()) {
            let mut guard = cell.write();
            if !guard.hosted {
                return None;
            }
            self.total_bytes.fetch_sub(guard.bytes, Ordering::Relaxed);
            let entries = std::mem::take(&mut guard.entries);
            guard.bytes = 0;
            guard.hosted = false;
            if let Some(dur) = &self.dur {
                dur.log(&WalOp::Drop { shard });
            }
            return Some(crate::ShardSnapshot {
                shard,
                entries: entries.into_iter().collect(),
            });
        }
        let cell = self.dynamic.write().remove(&shard)?;
        let guard = cell.read();
        self.total_bytes.fetch_sub(guard.bytes, Ordering::Relaxed);
        if let Some(dur) = &self.dur {
            dur.log(&WalOp::Drop { shard });
        }
        Some(crate::ShardSnapshot {
            shard,
            entries: guard.entries.iter().map(|(k, v)| (*k, v.clone())).collect(),
        })
    }

    /// Copies `shard` without removing it (for replication/tests).
    pub fn snapshot_shard(&self, shard: ShardId) -> Option<crate::ShardSnapshot> {
        self.with_cell_read(shard, |cell| crate::ShardSnapshot {
            shard,
            entries: cell.entries.iter().map(|(k, v)| (*k, v.clone())).collect(),
        })
    }

    /// Installs a migrated shard. Panics if the shard is already hosted
    /// (two processes must never both own a shard — the reassignment
    /// protocol guarantees extract-before-install).
    pub fn install_shard(&self, snapshot: crate::ShardSnapshot) {
        let bytes: u64 = snapshot.entries.iter().map(|(_, v)| v.len() as u64).sum();
        // Logged as a whole-shard `Install` after the mutation; the
        // clone is cheap (`Bytes` are refcounted) and only taken when
        // durable.
        let log_op = self.dur.as_ref().map(|_| WalOp::Install(snapshot.clone()));
        if let Some(cell) = self.dense.get(snapshot.shard.index()) {
            let mut guard = cell.write();
            assert!(
                !guard.hosted,
                "shard {} already hosted — double install",
                snapshot.shard
            );
            guard.entries = snapshot.entries.into_iter().collect();
            guard.bytes = bytes;
            guard.hosted = true;
            self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
            if let (Some(dur), Some(op)) = (&self.dur, &log_op) {
                dur.log(op);
            }
            return;
        }
        let mut reg = self.dynamic.write();
        assert!(
            !reg.contains_key(&snapshot.shard),
            "shard {} already hosted — double install",
            snapshot.shard
        );
        let cell = ShardCell {
            entries: snapshot.entries.into_iter().collect(),
            bytes,
            hosted: true,
        };
        reg.insert(snapshot.shard, Arc::new(RwLock::new(cell)));
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let (Some(dur), Some(op)) = (&self.dur, &log_op) {
            dur.log(op);
        }
    }

    /// A [`StateHandle`] scoped to one shard, the interface handed to
    /// operator code.
    pub fn handle(self: &Arc<Self>, shard: ShardId) -> StateHandle {
        StateHandle {
            store: Arc::clone(self),
            shard,
        }
    }

    // ---- durable backend -------------------------------------------------

    /// Opens (or recovers) a durable store rooted at `opts.dir`: loads
    /// the newest checkpoint runs, replays the WAL over them, and
    /// rebuilds every hosted shard exactly as it was at the crash.
    /// Shards `0..num_shards` form the dense fast path, exactly as in
    /// [`Self::with_shards`]; a fresh directory starts with all of them
    /// hosted empty.
    pub fn open_durable(num_shards: u32, opts: DurableOptions) -> Result<Arc<Self>, WalError> {
        let recovered = Durability::open(num_shards, opts)?;
        let maintenance = recovered.dur.options().maintenance;
        let mut store = StateStore {
            dense: (0..num_shards)
                .map(|i| {
                    RwLock::new(if recovered.live.contains(&ShardId(i)) {
                        ShardCell::hosted()
                    } else {
                        ShardCell::default()
                    })
                })
                .collect(),
            dynamic: RwLock::new(BTreeMap::new()),
            total_bytes: AtomicU64::new(0),
            dur: None,
        };
        // Seed recovered contents directly (dur is still None: recovery
        // must not re-log what the disk already holds).
        let mut total = 0u64;
        for (shard, entries) in recovered.shards {
            let bytes: u64 = entries.iter().map(|(_, v)| v.len() as u64).sum();
            total += bytes;
            let cell = ShardCell {
                entries: entries.into_iter().collect(),
                bytes,
                hosted: true,
            };
            if let Some(slot) = store.dense.get(shard.index()) {
                *slot.write() = cell;
            } else {
                store
                    .dynamic
                    .get_mut()
                    .insert(shard, Arc::new(RwLock::new(cell)));
            }
        }
        // Live shards beyond the dense range with no recovered data
        // still need a hosted (empty) cell.
        for shard in &recovered.live {
            if shard.index() >= store.dense.len() && !store.dynamic.get_mut().contains_key(shard) {
                store
                    .dynamic
                    .get_mut()
                    .insert(*shard, Arc::new(RwLock::new(ShardCell::hosted())));
            }
        }
        store.total_bytes = AtomicU64::new(total);
        store.dur = Some(Arc::new(recovered.dur));
        let store = Arc::new(store);
        if maintenance {
            Self::spawn_maintenance(&store);
        }
        Ok(store)
    }

    /// Whether this store has a durable backend.
    pub fn is_durable(&self) -> bool {
        self.dur.is_some()
    }

    /// The durable directory, when durable.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.dur.as_deref().map(Durability::dir)
    }

    /// Checkpoints now: rotates the WAL, spills dirty shards as an
    /// immutable run, commits the manifest, truncates old WAL epochs.
    /// Returns `Ok(false)` when there was nothing dirty (or the store
    /// is not durable).
    pub fn checkpoint(&self) -> Result<bool, WalError> {
        match &self.dur {
            Some(dur) => dur.checkpoint(|| self.shards(), |s| self.snapshot_shard(s)),
            None => Ok(false),
        }
    }

    /// Merges all checkpoint runs into one. Returns `Ok(false)` with
    /// fewer than two runs (or when not durable).
    pub fn compact(&self) -> Result<bool, WalError> {
        match &self.dur {
            Some(dur) => dur.compact(),
            None => Ok(false),
        }
    }

    /// Forces the WAL to stable storage (process aborts are already
    /// safe without this; power loss is not).
    pub fn sync_wal(&self) -> Result<(), WalError> {
        match &self.dur {
            Some(dur) => dur.sync(),
            None => Ok(()),
        }
    }

    /// Disk accounting for benches and tests; `None` when not durable.
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.dur.as_ref().map(|d| d.stats())
    }

    /// Starts recording a migration tail for `shard`: `Put`/`Del` ops
    /// logged for it from now on are also captured, so a migration can
    /// stream a base snapshot while the shard stays live and ship only
    /// the delta during the pause window. No-op when not durable.
    pub fn start_tail(&self, shard: ShardId) {
        if let Some(dur) = &self.dur {
            dur.start_tail(shard);
        }
    }

    /// Stops recording and returns the captured ops (empty when not
    /// durable or not recording).
    pub fn take_tail(&self, shard: ShardId) -> Vec<WalOp> {
        self.dur
            .as_ref()
            .map(|d| d.take_tail(shard))
            .unwrap_or_default()
    }

    /// Abandons a tail recording.
    pub fn cancel_tail(&self, shard: ShardId) {
        if let Some(dur) = &self.dur {
            dur.cancel_tail(shard);
        }
    }

    /// The background maintenance loop: checkpoint when the WAL epoch
    /// grows past the configured bytes, compact when runs pile up.
    /// Holds only a `Weak` — the loop dies with the store.
    fn spawn_maintenance(store: &Arc<Self>) {
        let weak: Weak<Self> = Arc::downgrade(store);
        std::thread::Builder::new()
            .name("elasticutor-dur-maint".into())
            .spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let Some(store) = weak.upgrade() else { return };
                let Some(dur) = store.dur.as_ref() else {
                    return;
                };
                let stats = dur.stats();
                let opts = dur.options();
                // Maintenance failures are not fatal: the next tick
                // retries, and an injected fault should surface in the
                // test's own checkpoint call, not here.
                if stats.wal_bytes >= opts.checkpoint_wal_bytes {
                    let _ = store.checkpoint();
                }
                if stats.runs >= opts.compact_min_runs {
                    let _ = store.compact();
                }
            })
            .expect("spawn durability maintenance thread");
    }
}

/// A shard-scoped view of the process state store, passed to operator
/// `process()` callbacks so user logic can only touch the state of the
/// shard its current tuple belongs to (preserving shard isolation, which
/// is what makes shards migratable units).
#[derive(Clone)]
pub struct StateHandle {
    store: Arc<StateStore>,
    shard: ShardId,
}

impl StateHandle {
    /// The shard this handle is scoped to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Reads `key`.
    pub fn get(&self, key: Key) -> Option<Bytes> {
        self.store.get(self.shard, key)
    }

    /// Writes `key`.
    pub fn put(&self, key: Key, value: Bytes) -> Option<Bytes> {
        self.store.put(self.shard, key, value)
    }

    /// Removes `key`.
    pub fn remove(&self, key: Key) -> Option<Bytes> {
        self.store.remove(self.shard, key)
    }

    /// Read-modify-writes `key`.
    pub fn update<F>(&self, key: Key, f: F) -> Option<Bytes>
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        self.store.update(self.shard, key, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let store = StateStore::new();
        assert_eq!(store.put(ShardId(1), Key(10), b("alpha")), None);
        assert_eq!(store.get(ShardId(1), Key(10)), Some(b("alpha")));
        assert_eq!(store.put(ShardId(1), Key(10), b("beta")), Some(b("alpha")));
        assert_eq!(store.remove(ShardId(1), Key(10)), Some(b("beta")));
        assert_eq!(store.get(ShardId(1), Key(10)), None);
    }

    #[test]
    fn byte_accounting_tracks_mutations() {
        let store = StateStore::new();
        store.put(ShardId(0), Key(1), b("12345"));
        store.put(ShardId(0), Key(2), b("123"));
        store.put(ShardId(1), Key(1), b("1"));
        assert_eq!(store.shard_bytes(ShardId(0)), 8);
        assert_eq!(store.shard_bytes(ShardId(1)), 1);
        assert_eq!(store.total_bytes(), 9);
        store.put(ShardId(0), Key(1), b("1")); // shrink 5 → 1
        assert_eq!(store.shard_bytes(ShardId(0)), 4);
        store.remove(ShardId(0), Key(2));
        assert_eq!(store.shard_bytes(ShardId(0)), 1);
        assert_eq!(store.total_bytes(), 2);
    }

    #[test]
    fn keys_in_different_shards_are_isolated() {
        let store = StateStore::new();
        store.put(ShardId(0), Key(7), b("zero"));
        store.put(ShardId(1), Key(7), b("one"));
        assert_eq!(store.get(ShardId(0), Key(7)), Some(b("zero")));
        assert_eq!(store.get(ShardId(1), Key(7)), Some(b("one")));
    }

    #[test]
    fn update_counter_semantics() {
        let store = StateStore::new();
        for _ in 0..5 {
            store.update(ShardId(0), Key(1), |old| {
                let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
            });
        }
        let v = store.get(ShardId(0), Key(1)).unwrap();
        assert_eq!(u64::from_le_bytes(v.as_ref().try_into().unwrap()), 5);
    }

    #[test]
    fn update_returning_none_deletes() {
        let store = StateStore::new();
        store.put(ShardId(0), Key(1), b("x"));
        store.update(ShardId(0), Key(1), |_| None);
        assert_eq!(store.get(ShardId(0), Key(1)), None);
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn extract_then_install_conserves_state() {
        let src = StateStore::new();
        src.put(ShardId(3), Key(1), b("a"));
        src.put(ShardId(3), Key(2), b("bb"));
        src.put(ShardId(4), Key(1), b("stay"));
        let snap = src.extract_shard(ShardId(3)).unwrap();
        assert!(!src.hosts(ShardId(3)));
        assert_eq!(src.total_bytes(), 4);
        assert_eq!(snap.len(), 2);

        let dst = StateStore::new();
        dst.install_shard(snap);
        assert_eq!(dst.get(ShardId(3), Key(1)), Some(b("a")));
        assert_eq!(dst.get(ShardId(3), Key(2)), Some(b("bb")));
        assert_eq!(dst.total_bytes(), 3);
        assert_eq!(dst.shard_bytes(ShardId(3)), 3);
    }

    #[test]
    #[should_panic(expected = "double install")]
    fn double_install_panics() {
        let store = StateStore::with_shards(4);
        store.install_shard(crate::ShardSnapshot::empty(ShardId(0)));
    }

    #[test]
    fn extract_missing_shard_is_none() {
        let store = StateStore::new();
        assert!(store.extract_shard(ShardId(9)).is_none());
    }

    #[test]
    fn with_shards_pre_registers() {
        let store = StateStore::with_shards(8);
        assert_eq!(store.shards().len(), 8);
        assert!(store.hosts(ShardId(7)));
        assert!(!store.hosts(ShardId(8)));
    }

    #[test]
    fn handle_scopes_to_shard() {
        let store = Arc::new(StateStore::new());
        let h = store.handle(ShardId(2));
        h.put(Key(1), b("via-handle"));
        assert_eq!(h.shard(), ShardId(2));
        assert_eq!(store.get(ShardId(2), Key(1)), Some(b("via-handle")));
        assert_eq!(h.get(Key(1)), Some(b("via-handle")));
        h.update(Key(1), |v| {
            assert!(v.is_some());
            None
        });
        assert_eq!(h.remove(Key(1)), None);
    }

    #[test]
    fn concurrent_updates_are_linearized() {
        let store = Arc::new(StateStore::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    store.update(ShardId(0), Key(1), |old| {
                        let n = old
                            .map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                        Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = store.get(ShardId(0), Key(1)).unwrap();
        assert_eq!(u64::from_le_bytes(v.as_ref().try_into().unwrap()), 8000);
    }

    #[test]
    fn concurrent_shards_do_not_interfere() {
        let store = Arc::new(StateStore::new());
        let mut handles = Vec::new();
        for shard in 0..4u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for k in 0..500u64 {
                    store.put(ShardId(shard), Key(k), Bytes::from(vec![shard as u8; 16]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for shard in 0..4u32 {
            assert_eq!(store.shard_keys(ShardId(shard)), 500);
            assert_eq!(store.shard_bytes(ShardId(shard)), 500 * 16);
        }
        assert_eq!(store.total_bytes(), 4 * 500 * 16);
    }

    #[test]
    fn snapshot_without_removal() {
        let store = StateStore::new();
        store.put(ShardId(0), Key(1), b("keep"));
        let snap = store.snapshot_shard(ShardId(0)).unwrap();
        assert_eq!(snap.len(), 1);
        assert!(store.hosts(ShardId(0)), "snapshot must not remove");
        assert_eq!(store.get(ShardId(0), Key(1)), Some(b("keep")));
    }
}
