//! The per-shard-group write-ahead log.
//!
//! Every mutation a durable [`StateStore`](crate::StateStore) applies is
//! first-class here as a [`WalOp`], encoded as one length-prefixed
//! [`elasticutor_core::wire`] frame whose payload carries a trailing
//! FNV-64 checksum — the same per-entry discipline as the migration
//! recovery journal. A whole-shard install streams as chunk frames
//! followed by a marker frame (marker-last atomicity: a crash mid-install
//! leaves unmarked chunks that replay discards as torn tail), mirroring
//! `runtime/src/journal.rs`.
//!
//! # Frame kinds
//!
//! | kind | payload |
//! |---|---|
//! | `W_PUT` | shard `u32`, key `u64`, value bytes, checksum `u64` |
//! | `W_DEL` | shard `u32`, key `u64`, checksum `u64` |
//! | `W_CHUNK` | one [`ShardSnapshot`] chunk (snapshot wire format), checksum `u64` |
//! | `W_INSTALL` | shard `u32`, entries `u64`, value bytes `u64`, digest `u64`, checksum `u64` |
//! | `W_DROP` | shard `u32`, checksum `u64` |
//!
//! The checksum is FNV-1a over the frame kind byte plus the payload that
//! precedes it, so a bit flip anywhere in a record — including its kind
//! byte — fails validation.
//!
//! # Torn tails vs. corruption
//!
//! [`read_wal`] tolerates exactly one failure shape: damage at the
//! **physical end** of the file (a crash mid-append). Everything decoded
//! before it is returned; the torn suffix is reported, never applied
//! half-way. Damage *followed by* further readable frames is mid-file
//! corruption and surfaces as a typed [`WalError`] — silently skipping a
//! committed record would be data loss.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use bytes::Bytes;
use elasticutor_core::fault;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum, WireError};

use crate::ShardSnapshot;

/// `PUT`: one key written (full value — replay is idempotent).
pub const W_PUT: u8 = 1;
/// `DEL`: one key removed.
pub const W_DEL: u8 = 2;
/// `CHUNK`: part of a whole-shard install (snapshot wire format).
pub const W_CHUNK: u8 = 3;
/// `INSTALL`: the marker sealing the preceding chunks of an install.
pub const W_INSTALL: u8 = 4;
/// `DROP`: the shard left this store (migrated out or discarded).
pub const W_DROP: u8 = 5;

/// Encoded bytes per install chunk frame (large shards span many).
pub const WAL_CHUNK_BYTES: u64 = 256 * 1024;

/// Errors raised by the durable state backend (WAL, checkpoint runs,
/// manifest, recovery). Every decoding path returns one of these —
/// corrupt on-disk bytes must never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An I/O error from the filesystem.
    Io(std::io::ErrorKind),
    /// A wire-level decoding failure (bad version, truncated frame, …).
    Wire(WireError),
    /// The input parsed structurally but failed a semantic check
    /// (checksum mismatch mid-file, epoch gap, marker total mismatch, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(kind) => write!(f, "wal i/o error: {kind}"),
            WalError::Wire(e) => write!(f, "wal wire error: {e}"),
            WalError::Corrupt(what) => write!(f, "corrupt wal data: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.kind())
    }
}

impl From<WireError> for WalError {
    fn from(e: WireError) -> Self {
        WalError::Wire(e)
    }
}

/// One logged state mutation. `Put`/`Del` carry absolute values, so
/// replaying an op over state that already reflects it is a no-op —
/// the property checkpoint rotation and migration tail-shipping lean on.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// A key written with its full new value.
    Put {
        /// The shard the key lives in.
        shard: ShardId,
        /// The written key.
        key: Key,
        /// The full value after the write.
        value: Bytes,
    },
    /// A key removed.
    Del {
        /// The shard the key lived in.
        shard: ShardId,
        /// The removed key.
        key: Key,
    },
    /// A whole shard installed (migration adoption, recovery restore).
    Install(ShardSnapshot),
    /// A whole shard dropped (migrated out or discarded).
    Drop {
        /// The dropped shard.
        shard: ShardId,
    },
}

impl WalOp {
    /// The shard this op touches.
    pub fn shard(&self) -> ShardId {
        match self {
            WalOp::Put { shard, .. } | WalOp::Del { shard, .. } | WalOp::Drop { shard } => *shard,
            WalOp::Install(snap) => snap.shard,
        }
    }
}

/// Appends one checksummed frame to `buf`: the payload grows a trailing
/// FNV-64 over `kind || payload` before framing (the shared checked-
/// frame discipline from [`wire::put_checked_frame`]).
fn push_frame(buf: &mut Vec<u8>, kind: u8, body: Vec<u8>) {
    wire::put_checked_frame(buf, kind, body);
}

/// Splits a frame payload into body + checksum and validates it.
/// `Err(())` means the *entry* is damaged (the frame itself framed
/// fine) — the caller decides whether that is a torn tail or mid-file
/// corruption.
pub(crate) fn checked_body(kind: u8, payload: &[u8]) -> Result<&[u8], ()> {
    wire::checked_frame_body(kind, payload).map_err(|_| ())
}

fn encode_put(buf: &mut Vec<u8>, shard: ShardId, key: Key, value: &Bytes) {
    let mut body = Vec::with_capacity(16 + value.len() + 12);
    wire::put_u32(&mut body, shard.0);
    wire::put_u64(&mut body, key.value());
    wire::put_bytes(&mut body, value);
    push_frame(buf, W_PUT, body);
}

fn encode_del(buf: &mut Vec<u8>, shard: ShardId, key: Key) {
    let mut body = Vec::with_capacity(20);
    wire::put_u32(&mut body, shard.0);
    wire::put_u64(&mut body, key.value());
    push_frame(buf, W_DEL, body);
}

fn encode_drop(buf: &mut Vec<u8>, shard: ShardId) {
    let mut body = Vec::with_capacity(12);
    wire::put_u32(&mut body, shard.0);
    push_frame(buf, W_DROP, body);
}

/// The marker body sealing an install: totals plus the entry digest of
/// the combined chunks.
fn encode_install_marker(buf: &mut Vec<u8>, snap: &ShardSnapshot) {
    let mut digest = Checksum::new();
    snap.fold_checksum(&mut digest);
    let mut body = Vec::with_capacity(36);
    wire::put_u32(&mut body, snap.shard.0);
    wire::put_u64(&mut body, snap.len() as u64);
    wire::put_u64(&mut body, snap.value_bytes());
    wire::put_u64(&mut body, digest.finish());
    push_frame(buf, W_INSTALL, body);
}

/// A writer over one WAL epoch file. Every append is a single `write`
/// syscall of fully-framed bytes, so a process abort — the in-tree
/// `kill -9` analogue — never loses an acknowledged append (the bytes
/// are in the page cache); [`Self::sync`] additionally forces them to
/// stable storage for power-loss durability.
pub struct WalWriter {
    file: File,
    bytes: u64,
}

impl WalWriter {
    /// Creates (truncating) the epoch file at `path`.
    pub fn create(path: &Path) -> Result<Self, WalError> {
        Ok(Self {
            file: File::create(path)?,
            bytes: 0,
        })
    }

    /// Appends one op as a complete frame (or chunk frames + marker for
    /// an install). Carries the `state.wal.append` fail point before any
    /// byte is written, and `state.wal.install` between an install's
    /// chunks and its marker — the torn-install crash point.
    pub fn append(&mut self, op: &WalOp) -> Result<(), WalError> {
        fault::fail_point("state.wal.append")
            .map_err(|_| WalError::Corrupt("injected fault at state.wal.append"))?;
        let mut buf = Vec::new();
        match op {
            WalOp::Put { shard, key, value } => encode_put(&mut buf, *shard, *key, value),
            WalOp::Del { shard, key } => encode_del(&mut buf, *shard, *key),
            WalOp::Drop { shard } => encode_drop(&mut buf, *shard),
            WalOp::Install(snap) => {
                for chunk in snap.chunks(WAL_CHUNK_BYTES) {
                    push_frame(&mut buf, W_CHUNK, chunk.encode());
                }
                self.file.write_all(&buf)?;
                self.bytes += buf.len() as u64;
                // The marker is a separate write: a kill here leaves
                // sealed-off chunks that replay discards as torn tail.
                fault::fail_point("state.wal.install")
                    .map_err(|_| WalError::Corrupt("injected fault at state.wal.install"))?;
                let mut marker = Vec::new();
                encode_install_marker(&mut marker, snap);
                self.file.write_all(&marker)?;
                self.bytes += marker.len() as u64;
                return Ok(());
            }
        }
        self.file.write_all(&buf)?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Forces appended bytes to stable storage (power-loss durability;
    /// process-abort durability needs no sync).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Bytes appended to this epoch so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// The outcome of replaying one WAL epoch file.
#[derive(Debug)]
pub struct WalReplay {
    /// Fully-validated ops, in append order.
    pub ops: Vec<WalOp>,
    /// Whether the file ended in a damaged or unmarked suffix (crash
    /// mid-append) that was discarded.
    pub torn_tail: bool,
    /// Bytes up to and including the last fully-validated op — the
    /// clean prefix a repair would truncate to.
    pub valid_bytes: u64,
}

/// Replays one epoch file. See the module docs for the torn-tail vs.
/// mid-file-corruption contract.
pub fn read_wal(path: &Path) -> Result<WalReplay, WalError> {
    let data = std::fs::read(path)?;
    decode_wal(&data)
}

/// [`read_wal`] over in-memory bytes (the chaos sweep drives this
/// directly).
pub fn decode_wal(data: &[u8]) -> Result<WalReplay, WalError> {
    let mut ops = Vec::new();
    let mut cursor = data;
    let mut valid_bytes = 0u64;
    // Chunks of an install awaiting their marker.
    let mut pending: Vec<ShardSnapshot> = Vec::new();
    // A frame that framed fine but failed its entry checksum: tolerated
    // only if nothing readable follows (then it is the torn tail).
    let mut suspect = false;
    loop {
        if cursor.is_empty() {
            // Unmarked chunks at physical EOF: a crash between an
            // install's chunks and its marker. Discard as torn tail.
            let torn = suspect || !pending.is_empty();
            return Ok(WalReplay {
                ops,
                torn_tail: torn,
                valid_bytes,
            });
        }
        let (kind, payload) = match wire::read_frame(&mut cursor) {
            Ok(frame) => frame,
            Err(_) => {
                // Unreadable bytes at the tail — the crash-torn suffix.
                return Ok(WalReplay {
                    ops,
                    torn_tail: true,
                    valid_bytes,
                });
            }
        };
        if suspect {
            // The damaged entry was *followed* by a readable frame, so
            // it was not the physical tail: committed data is damaged.
            return Err(WalError::Corrupt("mid-wal entry checksum mismatch"));
        }
        let Ok(body) = checked_body(kind, &payload) else {
            suspect = true;
            continue;
        };
        let consumed = (data.len() - cursor.len()) as u64;
        match kind {
            W_CHUNK => {
                let chunk = ShardSnapshot::decode(body).map_err(|_| {
                    // Structurally valid checksummed frame whose inner
                    // snapshot does not parse: real corruption.
                    WalError::Corrupt("install chunk failed snapshot decode")
                })?;
                if let Some(first) = pending.first() {
                    if first.shard != chunk.shard {
                        return Err(WalError::Corrupt("install chunks switch shards"));
                    }
                }
                pending.push(chunk);
                // valid_bytes holds back until the marker seals them.
            }
            W_INSTALL => {
                let mut r = ByteReader::new(body);
                let shard = ShardId(r.u32()?);
                let entries = r.u64()?;
                let value_bytes = r.u64()?;
                let digest = r.u64()?;
                if !r.is_empty() {
                    return Err(WalError::Corrupt("trailing bytes in install marker"));
                }
                let mut combined = ShardSnapshot::empty(shard);
                for chunk in pending.drain(..) {
                    if chunk.shard != shard {
                        return Err(WalError::Corrupt("install marker names a different shard"));
                    }
                    combined.entries.extend(chunk.entries);
                }
                let mut c = Checksum::new();
                combined.fold_checksum(&mut c);
                if combined.len() as u64 != entries
                    || combined.value_bytes() != value_bytes
                    || c.finish() != digest
                {
                    return Err(WalError::Corrupt("install marker totals mismatch"));
                }
                ops.push(WalOp::Install(combined));
                valid_bytes = consumed;
            }
            W_PUT | W_DEL | W_DROP => {
                if !pending.is_empty() {
                    return Err(WalError::Corrupt("install chunks not sealed by a marker"));
                }
                let mut r = ByteReader::new(body);
                let shard = ShardId(r.u32()?);
                let op = match kind {
                    W_PUT => {
                        let key = Key(r.u64()?);
                        let value = Bytes::copy_from_slice(r.bytes()?);
                        WalOp::Put { shard, key, value }
                    }
                    W_DEL => WalOp::Del {
                        shard,
                        key: Key(r.u64()?),
                    },
                    _ => WalOp::Drop { shard },
                };
                if !r.is_empty() {
                    return Err(WalError::Corrupt("trailing bytes in wal op"));
                }
                ops.push(op);
                valid_bytes = consumed;
            }
            _ => {
                // Unknown kind *with a valid checksum* is data from a
                // future format version, not a bit flip.
                return Err(WalError::Corrupt("unknown wal frame kind"));
            }
        }
    }
}

/// Encodes migration-tail ops (`Put`/`Del` only) into `MSG_TAIL` frame
/// payloads, each holding a `u32` op count followed by that many op
/// frames and staying under roughly [`WAL_CHUNK_BYTES`] so a huge tail
/// streams as several frames.
pub fn encode_tail(ops: &[WalOp]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut frames = Vec::new();
    let mut count = 0u32;
    let flush = |out: &mut Vec<Vec<u8>>, frames: &mut Vec<u8>, count: &mut u32| {
        if *count > 0 {
            let mut payload = Vec::with_capacity(4 + frames.len());
            wire::put_u32(&mut payload, *count);
            payload.extend_from_slice(frames);
            out.push(payload);
            frames.clear();
            *count = 0;
        }
    };
    for op in ops {
        match op {
            WalOp::Put { shard, key, value } => encode_put(&mut frames, *shard, *key, value),
            WalOp::Del { shard, key } => encode_del(&mut frames, *shard, *key),
            // Installs and drops never ride a migration tail: the tail
            // records live mutations of one still-hosted shard.
            WalOp::Install(_) | WalOp::Drop { .. } => continue,
        }
        count += 1;
        if frames.len() as u64 >= WAL_CHUNK_BYTES {
            flush(&mut out, &mut frames, &mut count);
        }
    }
    flush(&mut out, &mut frames, &mut count);
    out
}

/// Decodes one `MSG_TAIL` payload. Strict: the announced count must be
/// present exactly, every checksum must verify, and nothing may trail.
pub fn decode_tail(payload: &[u8]) -> Result<Vec<WalOp>, WalError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    let mut cursor = r.take(r.remaining())?;
    let mut ops = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let (kind, frame_payload) = wire::read_frame(&mut cursor)?;
        let body = checked_body(kind, &frame_payload)
            .map_err(|_| WalError::Corrupt("tail op checksum"))?;
        let mut b = ByteReader::new(body);
        let shard = ShardId(b.u32()?);
        let op = match kind {
            W_PUT => {
                let key = Key(b.u64()?);
                let value = Bytes::copy_from_slice(b.bytes()?);
                WalOp::Put { shard, key, value }
            }
            W_DEL => WalOp::Del {
                shard,
                key: Key(b.u64()?),
            },
            _ => return Err(WalError::Corrupt("tail frame is not a put or del")),
        };
        if !b.is_empty() {
            return Err(WalError::Corrupt("trailing bytes in tail op"));
        }
        ops.push(op);
    }
    if !cursor.is_empty() {
        return Err(WalError::Corrupt("trailing bytes after tail ops"));
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_roundtrip(ops: &[WalOp]) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!(
            "elasticutor-wal-test-{}-{:p}",
            std::process::id(),
            ops
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path).unwrap();
        for op in ops {
            w.append(op).unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        let replay = decode_wal(&data).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.ops, ops);
        assert_eq!(replay.valid_bytes, data.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
        data
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Put {
                shard: ShardId(1),
                key: Key(10),
                value: Bytes::from_static(b"alpha"),
            },
            WalOp::Del {
                shard: ShardId(1),
                key: Key(10),
            },
            WalOp::Install(ShardSnapshot {
                shard: ShardId(2),
                entries: (0..40u64)
                    .map(|i| (Key(i), Bytes::from(vec![i as u8; 33])))
                    .collect(),
            }),
            WalOp::Drop { shard: ShardId(3) },
            WalOp::Put {
                shard: ShardId(2),
                key: Key(7),
                value: Bytes::new(),
            },
        ]
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        ops_roundtrip(&sample_ops());
    }

    #[test]
    fn truncated_file_is_a_torn_tail_never_an_error() {
        let data = ops_roundtrip(&sample_ops());
        for n in 0..data.len() {
            let replay = decode_wal(&data[..n]).expect("truncation never errors");
            // Decoded ops are always an exact prefix of what was logged;
            // a cut that is not at a frame boundary reports a torn tail.
            assert_eq!(replay.ops[..], sample_ops()[..replay.ops.len()]);
            assert!(
                replay.torn_tail || replay.valid_bytes == n as u64,
                "byte {n}: clean replay but {} valid bytes",
                replay.valid_bytes
            );
        }
    }

    #[test]
    fn mid_file_bit_flip_is_typed() {
        let data = ops_roundtrip(&sample_ops());
        // Flip a byte of the very first op's value: readable frames
        // follow, so this must be Corrupt, not a silent skip.
        let mut bad = data.clone();
        bad[10] ^= 0x40;
        assert!(decode_wal(&bad).is_err());
    }

    #[test]
    fn tail_roundtrip_and_strictness() {
        let ops = vec![
            WalOp::Put {
                shard: ShardId(5),
                key: Key(1),
                value: Bytes::from_static(b"v1"),
            },
            WalOp::Del {
                shard: ShardId(5),
                key: Key(2),
            },
        ];
        let frames = encode_tail(&ops);
        assert_eq!(frames.len(), 1);
        assert_eq!(decode_tail(&frames[0]).unwrap(), ops);
        // Any single-bit flip must surface as a typed error.
        for i in 0..frames[0].len() {
            let mut bad = frames[0].clone();
            bad[i] ^= 1;
            assert!(decode_tail(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn big_tail_spans_frames() {
        let ops: Vec<WalOp> = (0..600u64)
            .map(|i| WalOp::Put {
                shard: ShardId(0),
                key: Key(i),
                value: Bytes::from(vec![0xAB; 1024]),
            })
            .collect();
        let frames = encode_tail(&ops);
        assert!(frames.len() > 1, "600 KiB of ops should span frames");
        let decoded: Vec<WalOp> = frames
            .iter()
            .flat_map(|f| decode_tail(f).unwrap())
            .collect();
        assert_eq!(decoded, ops);
    }
}
