//! Serializable shard snapshots — the unit of state migration.

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};

/// A point-in-time copy of one shard's state, extracted for migration to
/// another process (paper §3.3: the shard's state is migrated only after
/// the labeling tuple confirms all pending tuples were processed).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSnapshot {
    /// The shard this snapshot captures.
    pub shard: ShardId,
    /// All key→value entries, in ascending key order (deterministic wire
    /// format; also makes snapshot equality meaningful in tests).
    pub entries: Vec<(Key, Bytes)>,
}

impl ShardSnapshot {
    /// An empty snapshot for `shard`.
    pub fn empty(shard: ShardId) -> Self {
        Self {
            shard,
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes held by the snapshot (sum of value lengths).
    pub fn value_bytes(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v.len() as u64).sum()
    }

    /// The size of the snapshot on the wire: per-entry framing (key +
    /// length prefix) plus the values. Engines charge this against link
    /// bandwidth when a shard migrates across nodes.
    pub fn wire_bytes(&self) -> u64 {
        const PER_ENTRY: u64 = 12; // 8-byte key + 4-byte length prefix
        const HEADER: u64 = 16; // shard id, entry count, checksum
        HEADER + self.entries.len() as u64 * PER_ENTRY + self.value_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = ShardSnapshot::empty(ShardId(3));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.value_bytes(), 0);
        assert_eq!(s.wire_bytes(), 16);
    }

    #[test]
    fn wire_bytes_accounts_entries() {
        let s = ShardSnapshot {
            shard: ShardId(0),
            entries: vec![
                (Key(1), Bytes::from_static(b"hello")),
                (Key(2), Bytes::from_static(b"world!")),
            ],
        };
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_bytes(), 11);
        assert_eq!(s.wire_bytes(), 16 + 2 * 12 + 11);
    }
}
