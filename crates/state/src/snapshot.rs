//! Serializable shard snapshots — the unit of state migration.
//!
//! # Wire format
//!
//! [`ShardSnapshot::encode`] / [`ShardSnapshot::decode`] implement the
//! versioned payload format shipped inside `STATE` frames of the
//! cross-process migration protocol (little-endian throughout):
//!
//! ```text
//! [u8  format version]      currently 1
//! [u32 shard id]
//! [u64 entry count]
//! per entry: [u64 key][u32 value len][value bytes]   ascending key order
//! [u64 FNV-1a checksum]     over every preceding byte
//! ```
//!
//! Decoding returns a typed [`WireError`] — never panics — on truncated
//! input, an unknown version, an entry count that cannot fit the input,
//! keys out of order, a checksum mismatch, or trailing garbage. The
//! checksum guards each frame in isolation; the migration transport adds
//! an end-to-end checksum across chunked snapshots on top.

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum, WireError};

/// Version byte leading every encoded snapshot.
pub const SNAPSHOT_FORMAT_VERSION: u8 = 1;

/// A point-in-time copy of one shard's state, extracted for migration to
/// another process (paper §3.3: the shard's state is migrated only after
/// the labeling tuple confirms all pending tuples were processed).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSnapshot {
    /// The shard this snapshot captures.
    pub shard: ShardId,
    /// All key→value entries, in ascending key order (deterministic wire
    /// format; also makes snapshot equality meaningful in tests).
    pub entries: Vec<(Key, Bytes)>,
}

impl ShardSnapshot {
    /// An empty snapshot for `shard`.
    pub fn empty(shard: ShardId) -> Self {
        Self {
            shard,
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes held by the snapshot (sum of value lengths).
    pub fn value_bytes(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v.len() as u64).sum()
    }

    /// The size of the snapshot on the wire: per-entry framing (key +
    /// length prefix) plus the values. Engines charge this against link
    /// bandwidth when a shard migrates across nodes.
    pub fn wire_bytes(&self) -> u64 {
        const PER_ENTRY: u64 = 12; // 8-byte key + 4-byte length prefix
        const HEADER: u64 = 16; // shard id, entry count, checksum
        HEADER + self.entries.len() as u64 * PER_ENTRY + self.value_bytes()
    }

    /// Encodes the snapshot into the versioned wire format (see the
    /// module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + self.wire_bytes() as usize);
        wire::put_u8(&mut out, SNAPSHOT_FORMAT_VERSION);
        wire::put_u32(&mut out, self.shard.0);
        wire::put_u64(&mut out, self.entries.len() as u64);
        for (key, value) in &self.entries {
            wire::put_u64(&mut out, key.value());
            wire::put_bytes(&mut out, value);
        }
        let sum = wire::checksum(&out);
        wire::put_u64(&mut out, sum);
        out
    }

    /// Decodes a snapshot from `buf`, validating version, structure,
    /// key order, checksum, and the absence of trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        let version = r.u8()?;
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let shard = ShardId(r.u32()?);
        let count = r.u64()?;
        // Each entry takes at least 12 bytes; reject impossible counts
        // before reserving capacity for them.
        if count > (r.remaining() as u64) / 12 {
            return Err(WireError::Corrupt("entry count exceeds input size"));
        }
        let mut entries = Vec::with_capacity(count as usize);
        let mut prev: Option<Key> = None;
        for _ in 0..count {
            let key = Key(r.u64()?);
            if prev.is_some_and(|p| p >= key) {
                return Err(WireError::Corrupt("entry keys not strictly ascending"));
            }
            prev = Some(key);
            let value = Bytes::copy_from_slice(r.bytes()?);
            entries.push((key, value));
        }
        let expected = {
            let mut c = Checksum::new();
            c.write(&buf[..r.consumed()]);
            c.finish()
        };
        if r.u64()? != expected {
            return Err(WireError::Corrupt("checksum mismatch"));
        }
        if !r.is_empty() {
            return Err(WireError::Corrupt("trailing bytes after checksum"));
        }
        Ok(Self { shard, entries })
    }

    /// Encoded bytes one entry contributes to the wire format (key +
    /// length prefix + value).
    fn entry_encoded_bytes(value: &Bytes) -> u64 {
        12 + value.len() as u64
    }

    /// Splits the snapshot into chunks of at most `max_encoded_bytes`
    /// of **encoded** payload each — per-entry framing counted, so both
    /// value-heavy and key-heavy shards chunk into bounded `STATE`
    /// frames (always at least one entry per chunk; a single entry
    /// larger than the budget travels alone). An empty snapshot yields
    /// a single empty chunk so the receiver still learns the shard id
    /// from the stream itself.
    pub fn chunks(&self, max_encoded_bytes: u64) -> Vec<ShardSnapshot> {
        if self.entries.is_empty() {
            return vec![ShardSnapshot::empty(self.shard)];
        }
        let mut chunks = Vec::new();
        let mut current: Vec<(Key, Bytes)> = Vec::new();
        let mut current_bytes = 0u64;
        for (key, value) in &self.entries {
            let cost = Self::entry_encoded_bytes(value);
            if !current.is_empty() && current_bytes + cost > max_encoded_bytes {
                chunks.push(ShardSnapshot {
                    shard: self.shard,
                    entries: std::mem::take(&mut current),
                });
                current_bytes = 0;
            }
            current_bytes += cost;
            current.push((*key, value.clone()));
        }
        if !current.is_empty() {
            chunks.push(ShardSnapshot {
                shard: self.shard,
                entries: current,
            });
        }
        chunks
    }

    /// Folds the entries into an incremental checksum (key, then value
    /// bytes, in entry order) — the end-to-end integrity check a chunked
    /// transfer uses across `STATE` frames. Also the state digest the
    /// migration demo compares across processes.
    pub fn fold_checksum(&self, c: &mut Checksum) {
        for (key, value) in &self.entries {
            c.write_u64(key.value());
            c.write(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = ShardSnapshot::empty(ShardId(3));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.value_bytes(), 0);
        assert_eq!(s.wire_bytes(), 16);
    }

    #[test]
    fn wire_bytes_accounts_entries() {
        let s = ShardSnapshot {
            shard: ShardId(0),
            entries: vec![
                (Key(1), Bytes::from_static(b"hello")),
                (Key(2), Bytes::from_static(b"world!")),
            ],
        };
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_bytes(), 11);
        assert_eq!(s.wire_bytes(), 16 + 2 * 12 + 11);
    }

    fn sample() -> ShardSnapshot {
        ShardSnapshot {
            shard: ShardId(9),
            entries: vec![
                (Key(1), Bytes::from_static(b"")),
                (Key(5), Bytes::from_static(b"abc")),
                (Key(u64::MAX), Bytes::from(vec![0xAB; 100])),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        assert_eq!(ShardSnapshot::decode(&s.encode()).unwrap(), s);
        let empty = ShardSnapshot::empty(ShardId(0));
        assert_eq!(ShardSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut buf = sample().encode();
        buf[0] = 42;
        assert_eq!(ShardSnapshot::decode(&buf), Err(WireError::BadVersion(42)));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let buf = sample().encode();
        for cut in [buf.len() - 1, buf.len() - 9, 5, 1, 0] {
            assert!(
                ShardSnapshot::decode(&buf[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut long = buf.clone();
        long.push(0);
        assert_eq!(
            ShardSnapshot::decode(&long),
            Err(WireError::Corrupt("trailing bytes after checksum"))
        );
    }

    #[test]
    fn decode_rejects_flipped_bits() {
        let buf = sample().encode();
        // Flip one payload byte: checksum must catch it.
        let mut bad = buf.clone();
        let mid = buf.len() / 2;
        bad[mid] ^= 0x01;
        assert!(ShardSnapshot::decode(&bad).is_err());
    }

    #[test]
    fn decode_rejects_unordered_keys() {
        let s = ShardSnapshot {
            shard: ShardId(1),
            entries: vec![
                (Key(5), Bytes::from_static(b"x")),
                (Key(2), Bytes::from_static(b"y")),
            ],
        };
        // encode() doesn't sort — an out-of-order source is a caller
        // bug, and decode refuses to accept it.
        assert_eq!(
            ShardSnapshot::decode(&s.encode()),
            Err(WireError::Corrupt("entry keys not strictly ascending"))
        );
    }

    #[test]
    fn decode_rejects_impossible_entry_count() {
        let mut buf = Vec::new();
        elasticutor_core::wire::put_u8(&mut buf, SNAPSHOT_FORMAT_VERSION);
        elasticutor_core::wire::put_u32(&mut buf, 0);
        elasticutor_core::wire::put_u64(&mut buf, u64::MAX); // absurd count
        assert_eq!(
            ShardSnapshot::decode(&buf),
            Err(WireError::Corrupt("entry count exceeds input size"))
        );
    }

    #[test]
    fn chunks_partition_entries_in_order() {
        let s = ShardSnapshot {
            shard: ShardId(3),
            entries: (0..10u64)
                .map(|k| (Key(k), Bytes::from(vec![k as u8; 40])))
                .collect(),
        };
        let chunks = s.chunks(100);
        assert!(chunks.len() > 1);
        let reassembled: Vec<(Key, Bytes)> = chunks
            .iter()
            .flat_map(|c| c.entries.iter().cloned())
            .collect();
        assert_eq!(reassembled, s.entries);
        assert!(chunks.iter().all(|c| c.shard == s.shard));
        assert!(chunks.iter().all(|c| c.value_bytes() <= 120));
        // An oversized single entry still travels (one entry per chunk).
        let big = ShardSnapshot {
            shard: ShardId(0),
            entries: vec![(Key(0), Bytes::from(vec![1u8; 500]))],
        };
        assert_eq!(big.chunks(100).len(), 1);
        // Key-heavy shards chunk too: empty values still cost their
        // 12-byte entry framing, so the budget bounds encoded size.
        let keys_only = ShardSnapshot {
            shard: ShardId(0),
            entries: (0..100u64).map(|k| (Key(k), Bytes::new())).collect(),
        };
        let chunks = keys_only.chunks(120);
        assert!(chunks.len() >= 10, "got {} chunks", chunks.len());
        assert!(chunks.iter().all(|c| c.len() <= 10));
        // Empty snapshots yield one empty chunk.
        assert_eq!(ShardSnapshot::empty(ShardId(7)).chunks(100).len(), 1);
    }

    #[test]
    fn fold_checksum_matches_across_chunking() {
        let s = sample();
        let mut whole = Checksum::new();
        s.fold_checksum(&mut whole);
        let mut chunked = Checksum::new();
        for c in s.chunks(16) {
            c.fold_checksum(&mut chunked);
        }
        assert_eq!(whole.finish(), chunked.finish());
    }
}
