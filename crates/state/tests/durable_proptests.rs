//! Property-based proof of the durable store's core contract:
//! `replay(WAL) ∘ load(checkpoint)` equals the in-memory history, for
//! arbitrary interleavings of puts, deletes, checkpoints, compactions,
//! and crashes.
//!
//! A `Crash` drops the store on the floor (no checkpoint, no sync) and
//! reopens the same directory. Because every append is a single `write`
//! syscall, dropping the process-local handle is byte-equivalent to the
//! process aborting — the torn-write cases the in-process model cannot
//! produce are covered by the kill-matrix bench and the WAL chaos sweep.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_state::{DurableOptions, StateStore};
use proptest::prelude::*;

const NUM_SHARDS: u32 = 4;

/// One step of a durable-store history.
#[derive(Clone, Debug)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Checkpoint,
    Compact,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's prop_oneof! picks uniformly; listing Put twice skews
    // histories toward data-bearing ops without weight syntax.
    prop_oneof![
        (0u64..40, prop::collection::vec(any::<u8>(), 0..48)).prop_map(|(k, v)| Op::Put(k, v)),
        (40u64..80, prop::collection::vec(any::<u8>(), 0..48)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..80).prop_map(Op::Delete),
        Just(Op::Checkpoint),
        Just(Op::Compact),
        Just(Op::Crash),
    ]
}

fn shard_of(key: u64) -> ShardId {
    ShardId((key % NUM_SHARDS as u64) as u32)
}

fn unique_dir(tag: u64) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "elasticutor-durprop-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

fn open(dir: &Path) -> Arc<StateStore> {
    StateStore::open_durable(NUM_SHARDS, DurableOptions::new(dir.to_path_buf()).manual())
        .expect("open durable store")
}

/// The recovered store must match the model exactly: per shard, the
/// same keys, the same bytes.
fn assert_matches_model(store: &StateStore, model: &HashMap<u64, Vec<u8>>) {
    for s in 0..NUM_SHARDS {
        let shard = ShardId(s);
        let expected: Vec<(Key, Bytes)> = {
            let mut v: Vec<(Key, Bytes)> = model
                .iter()
                .filter(|(k, _)| shard_of(**k) == shard)
                .map(|(k, val)| (Key(*k), Bytes::from(val.clone())))
                .collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        let got = store
            .snapshot_shard(shard)
            .map(|s| s.entries)
            .unwrap_or_default();
        assert_eq!(got, expected, "shard {shard} diverged from the model");
    }
}

proptest! {
    /// After any prefix of operations ending in a crash, recovery
    /// yields exactly the model's state — regardless of how many
    /// checkpoints, compactions, or earlier crashes preceded it.
    #[test]
    fn recovery_equals_model(
        (tag, ops) in (any::<u64>(), prop::collection::vec(op_strategy(), 1..48)),
    ) {
        let dir = unique_dir(tag);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut store = open(&dir);
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(shard_of(*k), Key(*k), Bytes::from(v.clone()));
                    model.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    store.remove(shard_of(*k), Key(*k));
                    model.remove(k);
                }
                Op::Checkpoint => {
                    store.checkpoint().expect("checkpoint");
                }
                Op::Compact => {
                    store.compact().expect("compact");
                }
                Op::Crash => {
                    drop(store);
                    store = open(&dir);
                    assert_matches_model(&store, &model);
                }
            }
        }
        // Terminal crash: every history ends with one.
        drop(store);
        let recovered = open(&dir);
        assert_matches_model(&recovered, &model);
        // And the recovered store is fully operational: checkpoint it
        // and recover once more.
        recovered.checkpoint().expect("post-recovery checkpoint");
        drop(recovered);
        let again = open(&dir);
        assert_matches_model(&again, &model);
        drop(again);
        std::fs::remove_dir_all(&dir).ok();
    }
}
