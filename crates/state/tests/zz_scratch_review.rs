use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_state::{DurableOptions, StateStore};

#[test]
fn reopen_after_torn_tail_reopen() {
    let dir = std::env::temp_dir().join(format!("review-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // First open: write some ops, then simulate a crash with a torn
    // tail by appending garbage to the current epoch file.
    {
        let store = StateStore::open_durable(4, DurableOptions::new(&dir).manual()).unwrap();
        store.put(ShardId(0), Key(1), Bytes::from_static(b"v"));
        drop(store);
    }
    // Find the newest wal epoch file and append garbage (torn append).
    let mut wals: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().map_or(false, |e| e == "wal"))
        .collect();
    wals.sort();
    let newest = wals.last().unwrap().clone();
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(&newest).unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    drop(f);
    // Second open: torn tail in newest epoch — must be tolerated.
    {
        let store = StateStore::open_durable(4, DurableOptions::new(&dir).manual()).unwrap();
        assert_eq!(store.get(ShardId(0), Key(1)), Some(Bytes::from_static(b"v")));
        drop(store);
    }
    // Third open: no checkpoint ran in between. Does the store still open?
    let res = StateStore::open_durable(4, DurableOptions::new(&dir).manual());
    match &res {
        Ok(_) => println!("third open OK"),
        Err(e) => println!("third open FAILED: {e}"),
    }
    assert!(res.is_ok(), "store bricked after torn-tail recovery");
}
