//! Property-based tests for the shard-grouped state store: the
//! invariants the reassignment protocol leans on.

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_state::StateStore;
use proptest::prelude::*;

/// An abstract operation against one shard.
#[derive(Clone, Debug)]
enum Op {
    Put(u64, Vec<u8>),
    Remove(u64),
    Update(u64, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50, prop::collection::vec(any::<u8>(), 0..32)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..50).prop_map(Op::Remove),
        (0u64..50, any::<u8>()).prop_map(|(k, b)| Op::Update(k, b)),
    ]
}

/// Applies an op to both the store and a model HashMap.
fn apply(
    store: &StateStore,
    shard: ShardId,
    model: &mut std::collections::HashMap<u64, Vec<u8>>,
    op: &Op,
) {
    match op {
        Op::Put(k, v) => {
            let prev = store.put(shard, Key(*k), Bytes::from(v.clone()));
            assert_eq!(
                prev.map(|b| b.to_vec()),
                model.insert(*k, v.clone()),
                "put must return the previous value"
            );
        }
        Op::Remove(k) => {
            let prev = store.remove(shard, Key(*k));
            assert_eq!(prev.map(|b| b.to_vec()), model.remove(k));
        }
        Op::Update(k, byte) => {
            // Append a byte to the existing value (or create one).
            store.update(shard, Key(*k), |old| {
                let mut v = old.map_or_else(Vec::new, |b| b.to_vec());
                v.push(*byte);
                Some(Bytes::from(v))
            });
            model.entry(*k).or_default().push(*byte);
        }
    }
}

proptest! {
    /// The store behaves like a per-shard map, and its byte accounting
    /// always equals the sum of live value sizes.
    #[test]
    fn store_matches_model_and_accounts_bytes(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let store = StateStore::with_shards(4);
        let shard = ShardId(2);
        let mut model = std::collections::HashMap::new();
        for op in &ops {
            apply(&store, shard, &mut model, op);
        }
        for (k, v) in &model {
            prop_assert_eq!(
                store.get(shard, Key(*k)).map(|b| b.to_vec()),
                Some(v.clone())
            );
        }
        let expected_bytes: u64 = model.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(store.shard_bytes(shard), expected_bytes);
        prop_assert_eq!(store.shard_keys(shard), model.len());
        prop_assert_eq!(store.total_bytes(), expected_bytes);
    }

    /// Extract → install round-trips a shard exactly (the migration
    /// path): no key lost, no byte miscounted, and the source store no
    /// longer holds the shard.
    #[test]
    fn extract_install_conserves_state(
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let source = StateStore::with_shards(2);
        let shard = ShardId(1);
        let mut model = std::collections::HashMap::new();
        for op in &ops {
            apply(&source, shard, &mut model, op);
        }
        let before_bytes = source.shard_bytes(shard);

        let snapshot = source.extract_shard(shard).expect("shard exists");
        prop_assert_eq!(snapshot.len(), model.len());
        prop_assert_eq!(snapshot.value_bytes(), before_bytes);
        prop_assert!(!source.hosts(shard), "extraction removes the shard");
        prop_assert_eq!(source.shard_bytes(shard), 0);

        let dest = StateStore::new();
        dest.install_shard(snapshot);
        prop_assert!(dest.hosts(shard));
        for (k, v) in &model {
            prop_assert_eq!(
                dest.get(shard, Key(*k)).map(|b| b.to_vec()),
                Some(v.clone())
            );
        }
        prop_assert_eq!(dest.shard_bytes(shard), before_bytes);
    }

    /// Snapshots (non-destructive) leave the source intact and agree
    /// with a later destructive extraction.
    #[test]
    fn snapshot_is_nondestructive(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let store = StateStore::with_shards(1);
        let shard = ShardId(0);
        let mut model = std::collections::HashMap::new();
        for op in &ops {
            apply(&store, shard, &mut model, op);
        }
        let snap = store.snapshot_shard(shard).expect("hosted");
        prop_assert!(store.hosts(shard), "snapshot must not remove");
        prop_assert_eq!(store.shard_keys(shard), model.len());
        let extracted = store.extract_shard(shard).expect("still hosted");
        prop_assert_eq!(snap.len(), extracted.len());
        prop_assert_eq!(snap.value_bytes(), extracted.value_bytes());
    }

    /// Operations on different shards never interfere.
    #[test]
    fn shards_are_isolated(
        ops_a in prop::collection::vec(op_strategy(), 1..60),
        ops_b in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let store = StateStore::with_shards(8);
        let (sa, sb) = (ShardId(3), ShardId(5));
        let mut model_a = std::collections::HashMap::new();
        let mut model_b = std::collections::HashMap::new();
        // Interleave the two shards' operations.
        let mut ia = ops_a.iter();
        let mut ib = ops_b.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(op) = a {
                        apply(&store, sa, &mut model_a, op);
                    }
                    if let Some(op) = b {
                        apply(&store, sb, &mut model_b, op);
                    }
                }
            }
        }
        let bytes_a: u64 = model_a.values().map(|v| v.len() as u64).sum();
        let bytes_b: u64 = model_b.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(store.shard_bytes(sa), bytes_a);
        prop_assert_eq!(store.shard_bytes(sb), bytes_b);
        prop_assert_eq!(store.total_bytes(), bytes_a + bytes_b);
    }
}
