//! Property-based tests for the shard-grouped state store: the
//! invariants the reassignment protocol leans on.

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_state::{ShardSnapshot, StateStore};
use proptest::prelude::*;

/// An abstract operation against one shard.
#[derive(Clone, Debug)]
enum Op {
    Put(u64, Vec<u8>),
    Remove(u64),
    Update(u64, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50, prop::collection::vec(any::<u8>(), 0..32)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..50).prop_map(Op::Remove),
        (0u64..50, any::<u8>()).prop_map(|(k, b)| Op::Update(k, b)),
    ]
}

/// Applies an op to both the store and a model HashMap.
fn apply(
    store: &StateStore,
    shard: ShardId,
    model: &mut std::collections::HashMap<u64, Vec<u8>>,
    op: &Op,
) {
    match op {
        Op::Put(k, v) => {
            let prev = store.put(shard, Key(*k), Bytes::from(v.clone()));
            assert_eq!(
                prev.map(|b| b.to_vec()),
                model.insert(*k, v.clone()),
                "put must return the previous value"
            );
        }
        Op::Remove(k) => {
            let prev = store.remove(shard, Key(*k));
            assert_eq!(prev.map(|b| b.to_vec()), model.remove(k));
        }
        Op::Update(k, byte) => {
            // Append a byte to the existing value (or create one).
            store.update(shard, Key(*k), |old| {
                let mut v = old.map_or_else(Vec::new, |b| b.to_vec());
                v.push(*byte);
                Some(Bytes::from(v))
            });
            model.entry(*k).or_default().push(*byte);
        }
    }
}

proptest! {
    /// The store behaves like a per-shard map, and its byte accounting
    /// always equals the sum of live value sizes.
    #[test]
    fn store_matches_model_and_accounts_bytes(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let store = StateStore::with_shards(4);
        let shard = ShardId(2);
        let mut model = std::collections::HashMap::new();
        for op in &ops {
            apply(&store, shard, &mut model, op);
        }
        for (k, v) in &model {
            prop_assert_eq!(
                store.get(shard, Key(*k)).map(|b| b.to_vec()),
                Some(v.clone())
            );
        }
        let expected_bytes: u64 = model.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(store.shard_bytes(shard), expected_bytes);
        prop_assert_eq!(store.shard_keys(shard), model.len());
        prop_assert_eq!(store.total_bytes(), expected_bytes);
    }

    /// Extract → install round-trips a shard exactly (the migration
    /// path): no key lost, no byte miscounted, and the source store no
    /// longer holds the shard.
    #[test]
    fn extract_install_conserves_state(
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let source = StateStore::with_shards(2);
        let shard = ShardId(1);
        let mut model = std::collections::HashMap::new();
        for op in &ops {
            apply(&source, shard, &mut model, op);
        }
        let before_bytes = source.shard_bytes(shard);

        let snapshot = source.extract_shard(shard).expect("shard exists");
        prop_assert_eq!(snapshot.len(), model.len());
        prop_assert_eq!(snapshot.value_bytes(), before_bytes);
        prop_assert!(!source.hosts(shard), "extraction removes the shard");
        prop_assert_eq!(source.shard_bytes(shard), 0);

        let dest = StateStore::new();
        dest.install_shard(snapshot);
        prop_assert!(dest.hosts(shard));
        for (k, v) in &model {
            prop_assert_eq!(
                dest.get(shard, Key(*k)).map(|b| b.to_vec()),
                Some(v.clone())
            );
        }
        prop_assert_eq!(dest.shard_bytes(shard), before_bytes);
    }

    /// Snapshots (non-destructive) leave the source intact and agree
    /// with a later destructive extraction.
    #[test]
    fn snapshot_is_nondestructive(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let store = StateStore::with_shards(1);
        let shard = ShardId(0);
        let mut model = std::collections::HashMap::new();
        for op in &ops {
            apply(&store, shard, &mut model, op);
        }
        let snap = store.snapshot_shard(shard).expect("hosted");
        prop_assert!(store.hosts(shard), "snapshot must not remove");
        prop_assert_eq!(store.shard_keys(shard), model.len());
        let extracted = store.extract_shard(shard).expect("still hosted");
        prop_assert_eq!(snap.len(), extracted.len());
        prop_assert_eq!(snap.value_bytes(), extracted.value_bytes());
    }

    /// Operations on different shards never interfere.
    #[test]
    fn shards_are_isolated(
        ops_a in prop::collection::vec(op_strategy(), 1..60),
        ops_b in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let store = StateStore::with_shards(8);
        let (sa, sb) = (ShardId(3), ShardId(5));
        let mut model_a = std::collections::HashMap::new();
        let mut model_b = std::collections::HashMap::new();
        // Interleave the two shards' operations.
        let mut ia = ops_a.iter();
        let mut ib = ops_b.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(op) = a {
                        apply(&store, sa, &mut model_a, op);
                    }
                    if let Some(op) = b {
                        apply(&store, sb, &mut model_b, op);
                    }
                }
            }
        }
        let bytes_a: u64 = model_a.values().map(|v| v.len() as u64).sum();
        let bytes_b: u64 = model_b.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(store.shard_bytes(sa), bytes_a);
        prop_assert_eq!(store.shard_bytes(sb), bytes_b);
        prop_assert_eq!(store.total_bytes(), bytes_a + bytes_b);
    }
}

/// Strategy for a snapshot with arbitrary keys and value bytes. Sizes
/// are weighted toward small shards, but one arm produces values past
/// 64 KiB so the wire format's length-prefix handling of large entries
/// is exercised every run.
fn snapshot_strategy() -> impl Strategy<Value = ShardSnapshot> {
    let value = prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64),
        // >64 KiB values: generate a seed and tile it, so the case is
        // cheap to produce but the decoder still sees real size.
        (
            prop::collection::vec(any::<u8>(), 1..8),
            65_537usize..90_000
        )
            .prop_map(|(seed, len)| seed.iter().copied().cycle().take(len).collect()),
    ];
    (
        0u32..1024,
        prop::collection::vec((any::<u64>(), value), 0..12),
    )
        .prop_map(|(shard, mut raw)| {
            // The format requires strictly ascending keys; sort and
            // dedup like the BTreeMap-backed store does naturally.
            raw.sort_by_key(|(k, _)| *k);
            raw.dedup_by_key(|(k, _)| *k);
            ShardSnapshot {
                shard: ShardId(shard),
                entries: raw
                    .into_iter()
                    .map(|(k, v)| (Key(k), Bytes::from(v)))
                    .collect(),
            }
        })
}

proptest! {
    /// Encode → decode is the identity for every well-formed snapshot,
    /// including empty shards and >64 KiB values.
    #[test]
    fn wire_roundtrip_is_identity(snap in snapshot_strategy()) {
        let encoded = snap.encode();
        let decoded = ShardSnapshot::decode(&encoded).expect("well-formed input decodes");
        prop_assert_eq!(decoded, snap);
    }

    /// Every strict prefix of a valid encoding errors — never panics,
    /// never yields a snapshot.
    #[test]
    fn truncated_encodings_error(
        snap in snapshot_strategy(),
        frac in 0.0f64..1.0,
    ) {
        let encoded = snap.encode();
        let cut = ((encoded.len() as f64) * frac) as usize;
        // cut < len always (frac < 1.0), so this is a strict prefix.
        prop_assert!(ShardSnapshot::decode(&encoded[..cut]).is_err());
    }

    /// An unknown version byte is rejected up front.
    #[test]
    fn bad_version_errors(
        snap in snapshot_strategy(),
        version in (0u8..254).prop_map(|v| v + 2),
    ) {
        let mut encoded = snap.encode();
        encoded[0] = version;
        prop_assert_eq!(
            ShardSnapshot::decode(&encoded),
            Err(elasticutor_core::wire::WireError::BadVersion(version))
        );
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Random input overwhelmingly fails one of the checks; the
        // property is only that decode returns (no panic, no abort).
        let _ = ShardSnapshot::decode(&bytes);
    }

    /// Corrupting any single byte of a non-empty encoding is detected
    /// (checksum or structural validation), except when the flip lands
    /// in a value byte AND collides the checksum — which FNV-1a makes
    /// impossible for single-byte flips (the mix is bijective per byte).
    #[test]
    fn single_byte_corruption_is_detected(
        snap in snapshot_strategy(),
        pos_frac in 0.0f64..1.0,
        flip in (0u8..255).prop_map(|v| v + 1),
    ) {
        let mut encoded = snap.encode();
        let pos = ((encoded.len() as f64) * pos_frac) as usize % encoded.len();
        encoded[pos] ^= flip;
        prop_assert!(ShardSnapshot::decode(&encoded).is_err());
    }
}
