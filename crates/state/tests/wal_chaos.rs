//! Byte-level chaos against the WAL codec, mirroring the migration
//! protocol's `wire_chaos` suite: a recorded log is truncated at
//! **every** byte offset and single-bit-flipped at every byte, and the
//! decoder must answer each case with either a clean prefix of the
//! original ops (possibly marked torn) or a typed [`WalError`] — never
//! a panic, never an altered or half-applied record.

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_state::wal::decode_wal;
use elasticutor_state::{DurableOptions, ShardSnapshot, StateStore, WalOp, WalWriter};

/// A representative log: small puts, deletes, a chunked install (value
/// sizes force multiple chunk frames), a drop, and trailing puts so
/// damage in the middle has committed data after it.
fn sample_ops() -> Vec<WalOp> {
    let mut ops: Vec<WalOp> = (0..6u64)
        .map(|i| WalOp::Put {
            shard: ShardId((i % 3) as u32),
            key: Key(i),
            value: Bytes::from(vec![i as u8; 16 + (i as usize * 7) % 40]),
        })
        .collect();
    ops.push(WalOp::Del {
        shard: ShardId(1),
        key: Key(4),
    });
    ops.push(WalOp::Install(ShardSnapshot {
        shard: ShardId(5),
        entries: (0..24u64)
            .map(|i| (Key(i * 3), Bytes::from(vec![0xC3 ^ i as u8; 64])))
            .collect(),
    }));
    ops.push(WalOp::Drop { shard: ShardId(2) });
    ops.extend((100..104u64).map(|i| WalOp::Put {
        shard: ShardId(0),
        key: Key(i),
        value: Bytes::from(vec![0xEE; 8]),
    }));
    ops
}

/// Records [`sample_ops`] through the real writer and returns the raw
/// log bytes.
fn recorded_log() -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("elasticutor-walchaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("recorded.wal");
    let mut w = WalWriter::create(&path).unwrap();
    for op in sample_ops() {
        w.append(&op).unwrap();
    }
    let data = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    data
}

/// Whatever the decoder returns, the ops must be an exact prefix of
/// what was recorded — a corrupted log may lose the tail, but it must
/// never invent, reorder, or mutate a record.
fn assert_prefix(ops: &[WalOp], label: &str) {
    let original = sample_ops();
    assert!(ops.len() <= original.len(), "{label}: more ops out than in");
    assert_eq!(
        ops,
        &original[..ops.len()],
        "{label}: decoded ops are not a prefix of the recorded ops"
    );
}

/// Truncation at every byte offset: always `Ok` (a shorter file is a
/// crash, not corruption), always a clean prefix, and a cut off a frame
/// boundary always reports its torn tail.
#[test]
fn truncation_at_every_offset_yields_a_clean_prefix() {
    let data = recorded_log();
    for n in 0..=data.len() {
        let replay =
            decode_wal(&data[..n]).unwrap_or_else(|e| panic!("truncation at {n} errored: {e}"));
        assert_prefix(&replay.ops, &format!("truncate {n}"));
        assert!(
            replay.valid_bytes <= n as u64,
            "truncate {n}: valid_bytes past the cut"
        );
        assert!(
            replay.torn_tail || replay.valid_bytes == n as u64,
            "truncate {n}: silent data loss ({} valid bytes)",
            replay.valid_bytes
        );
    }
    // The untouched log replays completely.
    let full = decode_wal(&data).unwrap();
    assert_eq!(full.ops, sample_ops());
    assert!(!full.torn_tail);
}

/// A single bit flipped at every byte: the decoder returns a typed
/// error or a clean (possibly torn) prefix — never panics, never an
/// altered record. Damage followed by readable frames must not be
/// skipped silently: the flip may cost the log's tail, never its
/// middle.
#[test]
fn bit_flip_at_every_byte_never_alters_a_record() {
    let data = recorded_log();
    let mut errors = 0usize;
    for i in 0..data.len() {
        let mut bad = data.clone();
        bad[i] ^= 1 << (i % 8);
        match decode_wal(&bad) {
            Ok(replay) => assert_prefix(&replay.ops, &format!("flip {i}")),
            Err(_) => errors += 1,
        }
    }
    assert!(
        errors > 0,
        "mid-log flips must surface as typed errors somewhere"
    );
}

/// Flips across all eight bit positions at a spread of offsets —
/// headers, kind bytes, lengths, checksums, payload bytes.
#[test]
fn all_bit_positions_at_sampled_offsets() {
    let data = recorded_log();
    for offset in (0..data.len()).step_by(37) {
        for bit in 0..8 {
            let mut bad = data.clone();
            bad[offset] ^= 1 << bit;
            if let Ok(replay) = decode_wal(&bad) {
                assert_prefix(&replay.ops, &format!("offset {offset} bit {bit}"));
            }
        }
    }
}

/// A torn tail must not brick the store: after recovery tolerates the
/// damage once, subsequent reopens — with **no** checkpoint in between
/// to rewrite the damaged epoch — must keep succeeding. Regression for
/// a review finding where the tolerated-torn epoch was replayed again
/// verbatim on the next open.
#[test]
fn reopen_twice_after_torn_tail_without_checkpoint() {
    let dir = std::env::temp_dir().join(format!(
        "elasticutor-walchaos-torn-reopen-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // First open: write an op, then simulate a crash mid-append by
    // tearing the tail of the newest epoch file.
    {
        let store = StateStore::open_durable(4, DurableOptions::new(&dir).manual()).unwrap();
        store.put(ShardId(0), Key(1), Bytes::from_static(b"v"));
    }
    let mut wals: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    wals.sort();
    let newest = wals.last().unwrap().clone();
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&newest)
        .unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    drop(f);
    // Second open tolerates the torn tail; third open (still no
    // checkpoint) must tolerate it again and keep the data.
    for reopen in 0..2 {
        let store = StateStore::open_durable(4, DurableOptions::new(&dir).manual())
            .unwrap_or_else(|e| panic!("store bricked on reopen {reopen}: {e}"));
        assert_eq!(
            store.get(ShardId(0), Key(1)),
            Some(Bytes::from_static(b"v")),
            "data lost on reopen {reopen}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncation *and* a flip inside the surviving prefix — compound
/// damage must still never mutate a decoded record.
#[test]
fn compound_damage_never_mutates_records() {
    let data = recorded_log();
    for frac in [3usize, 5, 7] {
        let cut = data.len() * frac / 8;
        for i in (0..cut).step_by(53) {
            let mut bad = data[..cut].to_vec();
            bad[i] ^= 0x80;
            if let Ok(replay) = decode_wal(&bad) {
                assert_prefix(&replay.ops, &format!("cut {cut} flip {i}"));
            }
        }
    }
}
