//! Zipf-distributed key sampling.
//!
//! Rank `r` (1-based) of `n` items receives probability `r^(-s) / H(n,s)`
//! where `H(n,s)` is the generalized harmonic number. Sampling is by
//! binary search over the precomputed CDF — O(log n) per draw, exact, and
//! deterministic given the RNG stream.

use elasticutor_sim::SimRng;

/// A sampler over ranks `0..n` following Zipf(s).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `s ≥ 0` (s = 0 is
    /// uniform; the paper's micro-benchmark uses s = 0.5).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("nonempty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is degenerate (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        // partition_point: first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// The probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_skew_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(1000, 0.5);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_are_monotone_in_probability() {
        let z = ZipfSampler::new(100, 1.0);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = ZipfSampler::new(10_000, 0.5);
        let mut rng = SimRng::new(42);
        let mut counts = vec![0u64; 10_000];
        let n = 200_000;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!(r < 10_000);
            counts[r] += 1;
        }
        // Empirical frequency of rank 0 ≈ pmf(0) within 10%.
        let emp = counts[0] as f64 / n as f64;
        let theory = z.pmf(0);
        assert!(
            (emp - theory).abs() / theory < 0.1,
            "rank-0: empirical {emp}, theory {theory}"
        );
        // Head heavier than tail.
        assert!(counts[0] > counts[9999]);
    }

    #[test]
    fn singleton_always_zero() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn high_skew_concentrates() {
        let z = ZipfSampler::new(100, 2.0);
        assert!(z.pmf(0) > 0.6, "skew 2 concentrates most mass at rank 0");
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
