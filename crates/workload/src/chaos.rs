//! Chaos-scenario shapes for the robustness harness: flash-crowd rate
//! spikes and slow-consumer stall windows, as pure time functions so
//! the bench binary and tests can drive them deterministically.
//!
//! Both profiles are clock-driven (`t` is nanoseconds since scenario
//! start) and carry no state, so a driver can query them at any cadence
//! without affecting the shape.

use std::time::Duration;

/// A flash-crowd profile: a steady base rate with one multiplicative
/// spike window — the "100× for a few seconds" shape the chaos suite
/// throws at a live topology mid-rescale.
#[derive(Clone, Copy, Debug)]
pub struct SpikeProfile {
    /// Steady-state rate in records/second.
    pub base_rate: f64,
    /// Multiplier applied during the spike window (e.g. 100.0).
    pub spike_factor: f64,
    /// Offset of the spike's start from scenario start.
    pub spike_start: Duration,
    /// Length of the spike window.
    pub spike_len: Duration,
}

impl SpikeProfile {
    /// The target rate (records/second) at `t` nanoseconds from start.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        let start = self.spike_start.as_nanos() as u64;
        let end = start.saturating_add(self.spike_len.as_nanos() as u64);
        if (start..end).contains(&t_ns) {
            self.base_rate * self.spike_factor
        } else {
            self.base_rate
        }
    }

    /// Records due by `t` nanoseconds from start (the integral of
    /// [`Self::rate_at`]) — drivers emit until their sent-count catches
    /// up, which keeps the shape exact regardless of polling cadence.
    pub fn due_by(&self, t_ns: u64) -> u64 {
        let start = self.spike_start.as_nanos() as u64;
        let end = start.saturating_add(self.spike_len.as_nanos() as u64);
        let base = self.base_rate * t_ns as f64 / 1e9;
        let spiked_ns = t_ns.clamp(start, end) - start;
        let extra = self.base_rate * (self.spike_factor - 1.0) * spiked_ns as f64 / 1e9;
        (base + extra) as u64
    }
}

/// A slow-consumer profile: periodic windows during which the consumer
/// stops draining entirely, forcing backpressure through every bounded
/// edge upstream.
#[derive(Clone, Copy, Debug)]
pub struct StallSchedule {
    /// Offset of the first stall from scenario start.
    pub first_stall: Duration,
    /// Distance between stall starts.
    pub period: Duration,
    /// Length of each stall window (must be shorter than `period`).
    pub stall_len: Duration,
}

impl StallSchedule {
    /// Whether the consumer should be stalled at `t` nanoseconds from
    /// scenario start.
    pub fn is_stalled(&self, t_ns: u64) -> bool {
        let first = self.first_stall.as_nanos() as u64;
        if t_ns < first {
            return false;
        }
        let period = (self.period.as_nanos() as u64).max(1);
        (t_ns - first) % period < self.stall_len.as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_profile_shape() {
        let p = SpikeProfile {
            base_rate: 1000.0,
            spike_factor: 100.0,
            spike_start: Duration::from_secs(1),
            spike_len: Duration::from_secs(2),
        };
        assert_eq!(p.rate_at(0), 1000.0);
        assert_eq!(p.rate_at(1_500_000_000), 100_000.0);
        assert_eq!(p.rate_at(3_000_000_000), 1000.0);
        // Integral: 1s base + 2s spiked + 1s base.
        assert_eq!(p.due_by(0), 0);
        assert_eq!(p.due_by(1_000_000_000), 1000);
        assert_eq!(p.due_by(3_000_000_000), 3000 + 99 * 1000 * 2);
        assert_eq!(p.due_by(4_000_000_000), 4000 + 99 * 1000 * 2);
    }

    #[test]
    fn stall_schedule_windows() {
        let s = StallSchedule {
            first_stall: Duration::from_millis(500),
            period: Duration::from_secs(1),
            stall_len: Duration::from_millis(200),
        };
        assert!(!s.is_stalled(0));
        assert!(s.is_stalled(500_000_000));
        assert!(s.is_stalled(699_999_999));
        assert!(!s.is_stalled(700_000_000));
        assert!(s.is_stalled(1_500_000_000));
        assert!(!s.is_stalled(1_800_000_000));
    }
}
