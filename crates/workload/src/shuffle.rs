//! The ω-shuffled key space.
//!
//! Paper §5.1: "To emulate workload dynamics, we shuffle the frequencies
//! of tuple keys by applying a random permutation ω times per minute."
//!
//! [`ShuffledKeySpace`] draws a Zipf *rank* and maps it through a
//! permutation to a *key*; every `60/ω` seconds the permutation is
//! redrawn, instantly handing the hot ranks to different keys (and thus
//! different shards and executors) — the workload dynamic that elasticity
//! mechanisms must chase.

use elasticutor_core::ids::Key;
use elasticutor_sim::SimRng;

use crate::zipf::ZipfSampler;

/// Zipf sampling through a periodically reshuffled rank→key permutation.
#[derive(Clone, Debug)]
pub struct ShuffledKeySpace {
    zipf: ZipfSampler,
    /// `perm[rank] = key index`.
    perm: Vec<u32>,
    /// Shuffle period in nanoseconds; `None` disables shuffling (ω = 0).
    period_ns: Option<u64>,
    next_shuffle_ns: u64,
    shuffles_applied: u64,
    rng: SimRng,
}

impl ShuffledKeySpace {
    /// Creates a key space of `num_keys` keys with Zipf skew `skew`,
    /// shuffled `omega` times per minute (ω = 0 disables shuffling).
    pub fn new(num_keys: usize, skew: f64, omega: f64, rng: SimRng) -> Self {
        assert!(omega >= 0.0 && omega.is_finite(), "omega must be >= 0");
        let period_ns = if omega > 0.0 {
            Some((60.0e9 / omega) as u64)
        } else {
            None
        };
        Self {
            zipf: ZipfSampler::new(num_keys, skew),
            perm: (0..num_keys as u32).collect(),
            period_ns,
            next_shuffle_ns: period_ns.unwrap_or(u64::MAX),
            shuffles_applied: 0,
            rng,
        }
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.perm.len()
    }

    /// How many shuffles have been applied so far.
    pub fn shuffles_applied(&self) -> u64 {
        self.shuffles_applied
    }

    /// Advances shuffle state to `now_ns`, applying any permutations due.
    pub fn advance(&mut self, now_ns: u64) {
        let Some(period) = self.period_ns else { return };
        while now_ns >= self.next_shuffle_ns {
            self.rng.shuffle(&mut self.perm);
            self.shuffles_applied += 1;
            self.next_shuffle_ns += period;
        }
    }

    /// Draws a key at time `now_ns` (applies due shuffles first).
    pub fn sample(&mut self, now_ns: u64) -> Key {
        self.advance(now_ns);
        let rank = self.zipf.sample(&mut self.rng);
        Key(u64::from(self.perm[rank]))
    }

    /// The key currently occupying `rank` (0 = hottest).
    pub fn key_at_rank(&self, rank: usize) -> Key {
        Key(u64::from(self.perm[rank]))
    }

    /// The probability mass of `rank`.
    pub fn rank_pmf(&self, rank: usize) -> f64 {
        self.zipf.pmf(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_shuffle_when_omega_zero() {
        let mut ks = ShuffledKeySpace::new(100, 0.5, 0.0, SimRng::new(1));
        ks.advance(u64::MAX - 1);
        assert_eq!(ks.shuffles_applied(), 0);
        assert_eq!(ks.key_at_rank(0), Key(0));
    }

    #[test]
    fn shuffles_fire_on_schedule() {
        // ω = 2/min → every 30 s.
        let mut ks = ShuffledKeySpace::new(100, 0.5, 2.0, SimRng::new(2));
        ks.advance(29_999_999_999);
        assert_eq!(ks.shuffles_applied(), 0);
        ks.advance(30_000_000_000);
        assert_eq!(ks.shuffles_applied(), 1);
        ks.advance(95_000_000_000);
        assert_eq!(ks.shuffles_applied(), 3);
    }

    #[test]
    fn shuffle_changes_hot_key() {
        let mut ks = ShuffledKeySpace::new(1000, 0.5, 1.0, SimRng::new(3));
        let before = ks.key_at_rank(0);
        ks.advance(60_000_000_000);
        let after = ks.key_at_rank(0);
        // With 1000 keys the chance the hot key is unchanged is 0.1%.
        assert_ne!(before, after);
    }

    #[test]
    fn samples_stay_in_key_range() {
        let mut ks = ShuffledKeySpace::new(50, 1.0, 4.0, SimRng::new(4));
        for i in 0..10_000u64 {
            let k = ks.sample(i * 1_000_000);
            assert!(k.value() < 50);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut ks = ShuffledKeySpace::new(100, 0.5, 10.0, SimRng::new(seed));
            (0..1000u64)
                .map(|i| ks.sample(i * 10_000_000).value())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn hot_rank_mass_survives_shuffles() {
        // The distribution over *ranks* is invariant; only the key
        // identities move. Check the hottest key after many shuffles
        // still attracts ≈ pmf(0) of traffic.
        let mut ks = ShuffledKeySpace::new(100, 1.0, 60.0, SimRng::new(5));
        ks.advance(10 * 60_000_000_000); // 600 shuffles
        let hot = ks.key_at_rank(0);
        let now = 10 * 60_000_000_000u64;
        let mut hits = 0;
        let n = 20_000;
        for i in 0..n {
            // Stay within the current shuffle period (1 s window).
            if ks.sample(now + i % 900_000_000) == hot {
                hits += 1;
            }
        }
        let emp = hits as f64 / n as f64;
        let theory = ks.rank_pmf(0);
        assert!(
            (emp - theory).abs() / theory < 0.15,
            "hot key: empirical {emp}, theory {theory}"
        );
    }
}
