//! The Shanghai-Stock-Exchange application workload (paper §5.4).
//!
//! The paper's dataset — three months of anonymized SSE limit orders at
//! ~8 million records per trading hour — is proprietary. This module is
//! the substitution documented in DESIGN.md: a synthetic order stream
//! whose *statistical shape* matches what the paper reports:
//!
//! * orders are 96-byte tuples keyed by stock id; executed transactions
//!   produce 160-byte records fanned out to 11 analytics operators
//!   (Figure 14's topology: 6 statistics + 5 event operators);
//! * per-stock arrival rates fluctuate strongly and *cross over* — the
//!   hottest stock changes over time (Figure 15) — produced here by a
//!   Zipf popularity base modulated by rotating "hot stock" boosts and a
//!   global intensity regime.
//!
//! The dynamics knobs (`hot_rotation_period`, `regime_period`, boost
//! range) control how hard the elasticity mechanisms must work, playing
//! the role of ω in the micro-benchmark.

use elasticutor_core::ids::Key;
use elasticutor_core::topology::{Topology, TopologyBuilder};
use elasticutor_core::tuple::Tuple;
use elasticutor_sim::SimRng;

use crate::profile::{CostModel, OperatorProfile};
use crate::zipf::ZipfSampler;
use crate::TupleSource;

/// Names of the 6 statistics operators (Figure 14).
pub const STATISTICS_OPS: [&str; 6] = [
    "moving_average",
    "composite_index",
    "volume_stats",
    "price_stats",
    "turnover_stats",
    "volatility_stats",
];

/// Names of the 5 event operators (Figure 14).
pub const EVENT_OPS: [&str; 5] = [
    "price_alarm",
    "fraud_detection",
    "large_trade_alert",
    "circuit_breaker",
    "order_imbalance",
];

/// Configuration for the SSE workload.
#[derive(Clone, Debug)]
pub struct SseConfig {
    /// Number of distinct stocks (keys).
    pub num_stocks: usize,
    /// Zipf skew of base stock popularity.
    pub popularity_skew: f64,
    /// Long-run average order rate, orders/s. The paper's trace averages
    /// ~8 M records per trading hour ≈ 2 222 orders/s.
    pub base_rate: f64,
    /// Order tuple payload bytes (paper: 96).
    pub order_bytes: u32,
    /// Transaction record payload bytes (paper: 160).
    pub record_bytes: u32,
    /// Mean CPU cost of the transactor per order, ns.
    pub transactor_cost_ns: u64,
    /// Mean CPU cost of each analytics operator per record, ns.
    pub analytics_cost_ns: u64,
    /// Parallelism of the order source.
    pub source_parallelism: u32,
    /// `y` — executors per analytic/transactor operator.
    pub executors_per_operator: u32,
    /// `z` — shards per executor.
    pub shards_per_executor: u32,
    /// How often the set of boosted ("hot") stocks rotates, ns.
    pub hot_rotation_period_ns: u64,
    /// Number of simultaneously boosted stocks.
    pub num_hot_stocks: usize,
    /// Hot-stock rate multiplier range `[lo, hi)`.
    pub hot_boost: (f64, f64),
    /// How often the global intensity regime resamples, ns.
    pub regime_period_ns: u64,
    /// Global intensity multiplier range `[lo, hi)`.
    pub regime_range: (f64, f64),
}

impl Default for SseConfig {
    fn default() -> Self {
        Self {
            num_stocks: 3000,
            popularity_skew: 0.8,
            base_rate: 2222.0,
            order_bytes: 96,
            record_bytes: 160,
            transactor_cost_ns: 500_000,
            analytics_cost_ns: 100_000,
            source_parallelism: 8,
            executors_per_operator: 32,
            shards_per_executor: 256,
            hot_rotation_period_ns: 120 * 1_000_000_000,
            num_hot_stocks: 20,
            hot_boost: (2.0, 10.0),
            regime_period_ns: 300 * 1_000_000_000,
            regime_range: (0.5, 2.0),
        }
    }
}

impl SseConfig {
    /// Builds the Figure 14 topology: orders → transactor → 6 statistics
    /// + 5 event operators, all key-grouped by stock id.
    pub fn topology(&self) -> Topology {
        let mut b = TopologyBuilder::new();
        let src = b.source("orders", self.source_parallelism);
        let tx = b.transform(
            "transactor",
            self.executors_per_operator,
            self.shards_per_executor,
        );
        b.key_edge(src, tx);
        for name in STATISTICS_OPS.iter().chain(EVENT_OPS.iter()) {
            let op = b.transform(*name, self.executors_per_operator, self.shards_per_executor);
            b.key_edge(tx, op);
        }
        b.build().expect("SSE topology is statically valid")
    }

    /// Execution profiles for every operator of [`Self::topology`], in
    /// `OperatorId` order: source (no cost), transactor, 11 analytics.
    pub fn profiles(&self) -> Vec<OperatorProfile> {
        let mut v = Vec::with_capacity(13);
        // Source: emits orders; cost irrelevant (generation is free).
        v.push(OperatorProfile {
            cost: CostModel::Deterministic { ns: 1 },
            output_bytes: self.order_bytes,
            state_write_bytes: 0,
        });
        // Transactor: matches orders against the book, emits records.
        v.push(OperatorProfile {
            cost: CostModel::Exponential {
                mean_ns: self.transactor_cost_ns,
            },
            output_bytes: self.record_bytes,
            state_write_bytes: 64,
        });
        // Analytics: consume records, keep per-stock aggregates.
        for _ in 0..11 {
            v.push(OperatorProfile {
                cost: CostModel::Exponential {
                    mean_ns: self.analytics_cost_ns,
                },
                output_bytes: 0,
                state_write_bytes: 16,
            });
        }
        v
    }
}

/// The SSE order stream generator.
pub struct SseWorkload {
    config: SseConfig,
    /// Base popularity weight per stock (Zipf pmf by rank, permuted so
    /// stock id ≠ rank).
    base_weight: Vec<f64>,
    /// Current boost multiplier per stock (1.0 = unboosted).
    boost: Vec<f64>,
    /// Cumulative weights for sampling; rebuilt when boosts change.
    cdf: Vec<f64>,
    total_weight: f64,
    /// Current global intensity multiplier.
    regime: f64,
    next_rotation_ns: u64,
    next_regime_ns: u64,
    rng: SimRng,
    rotations: u64,
}

impl SseWorkload {
    /// Creates the workload from a config and seed.
    pub fn new(config: SseConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let zipf = ZipfSampler::new(config.num_stocks, config.popularity_skew);
        // Permute ranks over stock ids so "stock 0" is not always hottest.
        let mut ids: Vec<u32> = (0..config.num_stocks as u32).collect();
        rng.shuffle(&mut ids);
        let mut base_weight = vec![0.0; config.num_stocks];
        for (rank, &stock) in ids.iter().enumerate() {
            base_weight[stock as usize] = zipf.pmf(rank);
        }
        let boost = vec![1.0; config.num_stocks];
        let mut w = Self {
            next_rotation_ns: config.hot_rotation_period_ns,
            next_regime_ns: config.regime_period_ns,
            cdf: Vec::new(),
            total_weight: 0.0,
            regime: 1.0,
            rotations: 0,
            config,
            base_weight,
            boost,
            rng,
        };
        w.rotate_hot_stocks(); // initial boosted set
        w.rotations = 0;
        w.rebuild_cdf();
        w
    }

    /// The configuration.
    pub fn config(&self) -> &SseConfig {
        &self.config
    }

    fn rebuild_cdf(&mut self) {
        self.cdf.clear();
        self.cdf.reserve(self.base_weight.len());
        let mut acc = 0.0;
        for (w, b) in self.base_weight.iter().zip(&self.boost) {
            acc += w * b;
            self.cdf.push(acc);
        }
        self.total_weight = acc;
    }

    fn rotate_hot_stocks(&mut self) {
        self.boost.iter_mut().for_each(|b| *b = 1.0);
        let (lo, hi) = self.config.hot_boost;
        // Hot stocks are drawn popularity-weighted: bursts of activity
        // concentrate in already-liquid names, so a boosted runner-up
        // regularly overtakes the base-rank leader — Figure 15's
        // crossovers.
        let total: f64 = self.base_weight.iter().sum();
        for _ in 0..self.config.num_hot_stocks {
            let mut u = self.rng.next_f64() * total;
            let mut stock = 0;
            for (i, &w) in self.base_weight.iter().enumerate() {
                if u < w {
                    stock = i;
                    break;
                }
                u -= w;
            }
            self.boost[stock] = lo + self.rng.next_f64() * (hi - lo);
        }
        self.rotations += 1;
    }

    fn resample_regime(&mut self) {
        let (lo, hi) = self.config.regime_range;
        self.regime = lo + self.rng.next_f64() * (hi - lo);
    }

    /// Advances the dynamics to `now_ns`.
    pub fn advance(&mut self, now_ns: u64) {
        let mut dirty = false;
        while now_ns >= self.next_rotation_ns {
            self.rotate_hot_stocks();
            self.next_rotation_ns += self.config.hot_rotation_period_ns;
            dirty = true;
        }
        while now_ns >= self.next_regime_ns {
            self.resample_regime();
            self.next_regime_ns += self.config.regime_period_ns;
        }
        if dirty {
            self.rebuild_cdf();
        }
    }

    /// The instantaneous aggregate order rate at the current regime.
    pub fn current_rate(&self) -> f64 {
        self.config.base_rate * self.regime
    }

    /// The instantaneous arrival rate of one stock, orders/s — the
    /// quantity plotted in Figure 15.
    pub fn stock_rate(&self, stock: usize) -> f64 {
        self.current_rate() * self.base_weight[stock] * self.boost[stock] / self.total_weight
    }

    /// The `n` currently hottest stocks (by instantaneous rate),
    /// descending.
    pub fn top_stocks(&self, n: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.base_weight.len()).collect();
        ids.sort_by(|&a, &b| {
            (self.base_weight[b] * self.boost[b])
                .partial_cmp(&(self.base_weight[a] * self.boost[a]))
                .unwrap()
        });
        ids.truncate(n);
        ids
    }

    /// Number of hot-set rotations applied.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    fn sample_stock(&mut self) -> usize {
        let u = self.rng.next_f64() * self.total_weight;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

impl TupleSource for SseWorkload {
    fn next_tuple(&mut self, now_ns: u64) -> (u64, Tuple) {
        self.advance(now_ns);
        let rate = self.current_rate();
        let gap_s = self.rng.next_exp(rate);
        let gap = ((gap_s * 1e9) as u64).max(1);
        let at = now_ns + gap;
        let stock = self.sample_stock();
        let tuple = Tuple::new(
            Key(stock as u64),
            self.config.order_bytes,
            self.config.transactor_cost_ns,
            at,
        );
        (gap, tuple)
    }

    fn nominal_rate(&self) -> f64 {
        let (lo, hi) = self.config.regime_range;
        self.config.base_rate * (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_figure_14() {
        let c = SseConfig::default();
        let t = c.topology();
        // orders + transactor + 6 statistics + 5 events = 13 operators.
        assert_eq!(t.operators().len(), 13);
        let tx = t.operator_by_name("transactor").unwrap();
        assert_eq!(t.downstream(tx.id).len(), 11);
        assert_eq!(t.upstream_executor_count(tx.id), 8);
        for name in STATISTICS_OPS.iter().chain(EVENT_OPS.iter()) {
            let op = t.operator_by_name(name).unwrap();
            assert_eq!(t.upstream(op.id), &[tx.id]);
            assert_eq!(t.upstream_executor_count(op.id), 32);
        }
        // Profiles align with operators.
        assert_eq!(c.profiles().len(), 13);
    }

    #[test]
    fn order_stream_has_paper_sizes() {
        let mut w = SseWorkload::new(SseConfig::default(), 1);
        let (_, t) = w.next_tuple(0);
        assert_eq!(t.payload_bytes, 96);
        assert!(t.key.value() < 3000);
    }

    #[test]
    fn rate_approximates_base_rate() {
        let mut w = SseWorkload::new(SseConfig::default(), 2);
        let mut now = 0u64;
        let mut count = 0u64;
        let horizon = 30_000_000_000; // 30 s, inside the first regime
        while now < horizon {
            let (gap, _) = w.next_tuple(now);
            now += gap;
            count += 1;
        }
        let rate = count as f64 / 30.0;
        // regime = 1.0 initially → base_rate.
        assert!((rate - 2222.0).abs() / 2222.0 < 0.1, "measured rate {rate}");
    }

    #[test]
    fn hot_rotation_changes_top_stocks() {
        let mut w = SseWorkload::new(SseConfig::default(), 3);
        let before = w.top_stocks(5);
        w.advance(10 * 120_000_000_000); // 10 rotations
        assert!(w.rotations() >= 10);
        let after = w.top_stocks(5);
        assert_ne!(before, after, "hot set must rotate");
    }

    #[test]
    fn stock_rates_sum_to_total() {
        let w = SseWorkload::new(SseConfig::default(), 4);
        let sum: f64 = (0..3000).map(|s| w.stock_rate(s)).sum();
        assert!((sum - w.current_rate()).abs() / w.current_rate() < 1e-9);
    }

    #[test]
    fn regime_switches() {
        let mut w = SseWorkload::new(SseConfig::default(), 5);
        let r0 = w.current_rate();
        w.advance(301 * 1_000_000_000);
        let r1 = w.current_rate();
        assert_ne!(r0, r1, "regime must resample");
        let (lo, hi) = w.config().regime_range;
        assert!(r1 >= w.config().base_rate * lo && r1 <= w.config().base_rate * hi);
    }

    #[test]
    fn determinism() {
        let draw = |seed| {
            let mut w = SseWorkload::new(SseConfig::default(), seed);
            let mut now = 0;
            let mut v = Vec::new();
            for _ in 0..500 {
                let (gap, t) = w.next_tuple(now);
                now += gap;
                v.push((gap, t.key));
            }
            v
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn empirical_stock_distribution_tracks_weights() {
        let mut w = SseWorkload::new(SseConfig::default(), 6);
        let hot = w.top_stocks(1)[0];
        let expected_share = w.stock_rate(hot) / w.current_rate();
        let mut hits = 0u64;
        let n = 100_000u64;
        for _ in 0..n {
            // Sample without advancing time (stays in the initial epoch).
            let (_, t) = w.next_tuple(0);
            if t.key.value() as usize == hot {
                hits += 1;
            }
        }
        let emp = hits as f64 / n as f64;
        assert!(
            (emp - expected_share).abs() / expected_share < 0.15,
            "hot stock share: empirical {emp}, expected {expected_share}"
        );
    }
}
