//! # elasticutor-workload
//!
//! Workload generators reproducing the paper's evaluation inputs (§5).
//!
//! * [`zipf::ZipfSampler`] — keys drawn from a Zipf distribution (the
//!   micro-benchmark uses 10 K distinct keys with skew 0.5).
//! * [`shuffle::ShuffledKeySpace`] — "to emulate workload dynamics, we
//!   shuffle the frequencies of tuple keys by applying a random
//!   permutation ω times per minute": a Zipf rank→key permutation that is
//!   re-drawn on a fixed period.
//! * [`arrivals::ArrivalProcess`] — Poisson or deterministic inter-arrival
//!   gaps.
//! * [`micro::MicroWorkload`] — the Figure 5 generator→calculator
//!   topology with configurable tuple size, CPU cost, rate, and ω.
//! * [`chaos::SpikeProfile`] / [`chaos::StallSchedule`] — clock-driven
//!   flash-crowd and slow-consumer shapes for the chaos harness.
//! * [`sse::SseWorkload`] — a synthetic stand-in for the proprietary
//!   Shanghai Stock Exchange order trace: the Figure 14 topology
//!   (transactor → 6 statistics + 5 event operators) fed by a
//!   regime-switching order stream whose per-stock rates fluctuate like
//!   Figure 15.
//!
//! All generators draw from the deterministic [`elasticutor_sim::SimRng`]
//! so experiment runs are exactly reproducible.

#![warn(missing_docs)]

pub mod arrivals;
pub mod chaos;
pub mod micro;
pub mod profile;
pub mod shuffle;
pub mod sse;
pub mod zipf;

pub use arrivals::ArrivalProcess;
pub use chaos::{SpikeProfile, StallSchedule};
pub use micro::{MicroConfig, MicroWorkload};
pub use profile::{CostModel, OperatorProfile};
pub use shuffle::ShuffledKeySpace;
pub use sse::{SseConfig, SseWorkload};
pub use zipf::ZipfSampler;

use elasticutor_core::tuple::Tuple;

/// A pull-based tuple source driven by the engine's clock.
///
/// `next_tuple(now)` returns the gap to the next tuple's arrival and the
/// tuple itself; generators advance their internal dynamics (key
/// shuffles, rate regimes) based on `now`.
pub trait TupleSource {
    /// Draws the next tuple. `now_ns` is the emission time of the
    /// *previous* tuple (or 0); the returned gap is relative to it.
    fn next_tuple(&mut self, now_ns: u64) -> (u64, Tuple);

    /// The long-run average external arrival rate in tuples/s (λ0 of the
    /// performance model), if known.
    fn nominal_rate(&self) -> f64;
}
