//! Arrival processes: the gaps between consecutive source tuples.

use elasticutor_sim::SimRng;

/// How inter-arrival gaps are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` tuples/s (exponential gaps) — matches
    /// the M/M/k modeling assumption.
    Poisson {
        /// Arrival rate in tuples per second.
        rate: f64,
    },
    /// Deterministic arrivals at `rate` tuples/s (constant gap).
    Deterministic {
        /// Arrival rate in tuples per second.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// The long-run rate in tuples/s.
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Deterministic { rate } => rate,
        }
    }

    /// Draws the next inter-arrival gap in nanoseconds (at least 1 ns so
    /// simulated time always advances).
    pub fn next_gap_ns(&self, rng: &mut SimRng) -> u64 {
        let gap_s = match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                rng.next_exp(rate)
            }
            ArrivalProcess::Deterministic { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                1.0 / rate
            }
        };
        ((gap_s * 1e9) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_gap_is_constant() {
        let p = ArrivalProcess::Deterministic { rate: 1000.0 };
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(p.next_gap_ns(&mut rng), 1_000_000);
        }
        assert_eq!(p.rate(), 1000.0);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 5000.0 };
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ns(&mut rng)).sum();
        let mean_ns = total as f64 / n as f64;
        let expect = 1e9 / 5000.0;
        assert!(
            (mean_ns - expect).abs() / expect < 0.02,
            "mean gap {mean_ns} ns, expected {expect}"
        );
    }

    #[test]
    fn gaps_are_positive() {
        let p = ArrivalProcess::Poisson { rate: 1e9 }; // pathologically fast
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(p.next_gap_ns(&mut rng) >= 1);
        }
    }
}
