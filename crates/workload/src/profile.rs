//! Per-operator execution profiles.
//!
//! A topology describes *structure*; an [`OperatorProfile`] describes
//! *cost*: how long an operator's tuples take on a core and how large its
//! output tuples are. Engines look profiles up by `OperatorId` when
//! simulating service times and constructing emitted tuples.

use elasticutor_core::tuple::Tuple;
use elasticutor_sim::SimRng;

/// How an operator's per-tuple CPU cost is determined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostModel {
    /// Use the cost carried by the tuple itself (the micro-benchmark
    /// encodes its swept cost in the source tuples).
    FromTuple,
    /// Exponentially distributed with the given mean (matches the M/M/k
    /// modeling assumption).
    Exponential {
        /// Mean service demand in nanoseconds.
        mean_ns: u64,
    },
    /// Constant cost.
    Deterministic {
        /// Service demand in nanoseconds.
        ns: u64,
    },
}

impl CostModel {
    /// Draws a service demand for `tuple` in nanoseconds (≥ 1).
    pub fn draw(&self, tuple: &Tuple, rng: &mut SimRng) -> u64 {
        match *self {
            CostModel::FromTuple => tuple.cpu_cost_ns.max(1),
            CostModel::Exponential { mean_ns } => {
                (rng.next_exp(1.0 / mean_ns as f64) as u64).max(1)
            }
            CostModel::Deterministic { ns } => ns.max(1),
        }
    }

    /// The mean service demand in nanoseconds (for the performance
    /// model's μ). `None` for [`CostModel::FromTuple`], where the mean is
    /// workload-defined.
    pub fn mean_ns(&self) -> Option<u64> {
        match *self {
            CostModel::FromTuple => None,
            CostModel::Exponential { mean_ns } => Some(mean_ns),
            CostModel::Deterministic { ns } => Some(ns),
        }
    }
}

/// Execution profile of one operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperatorProfile {
    /// Per-tuple CPU cost model.
    pub cost: CostModel,
    /// Payload size of tuples this operator emits downstream.
    pub output_bytes: u32,
    /// Mean bytes of state written per processed tuple (state growth
    /// model; engines cap shard state at the workload's configured shard
    /// state size).
    pub state_write_bytes: u32,
}

impl OperatorProfile {
    /// A profile that processes according to the tuple's own cost and
    /// forwards same-sized tuples.
    pub fn passthrough() -> Self {
        Self {
            cost: CostModel::FromTuple,
            output_bytes: 0,
            state_write_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticutor_core::ids::Key;

    fn t(cost: u64) -> Tuple {
        Tuple::new(Key(1), 128, cost, 0)
    }

    #[test]
    fn from_tuple_uses_tuple_cost() {
        let mut rng = SimRng::new(1);
        assert_eq!(CostModel::FromTuple.draw(&t(777), &mut rng), 777);
        assert_eq!(CostModel::FromTuple.draw(&t(0), &mut rng), 1, "min 1 ns");
        assert_eq!(CostModel::FromTuple.mean_ns(), None);
    }

    #[test]
    fn deterministic_is_constant() {
        let mut rng = SimRng::new(2);
        let m = CostModel::Deterministic { ns: 1000 };
        for _ in 0..10 {
            assert_eq!(m.draw(&t(5), &mut rng), 1000);
        }
        assert_eq!(m.mean_ns(), Some(1000));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(3);
        let m = CostModel::Exponential { mean_ns: 100_000 };
        let n = 100_000;
        let total: u64 = (0..n).map(|_| m.draw(&t(5), &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100_000.0).abs() / 100_000.0 < 0.02, "mean {mean}");
        assert_eq!(m.mean_ns(), Some(100_000));
    }
}
