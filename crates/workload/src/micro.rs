//! The micro-benchmark workload (paper §5.1, Figure 5).
//!
//! Topology: `generator → calculator`, key-grouped. "Each tuple consists
//! of an integer key and a 128-byte payload, and takes an average CPU
//! cost of 1 ms for processing. The key space contains 10 K distinct
//! values, whose frequencies follow a zipf distribution with a skew
//! factor of 0.5. The shard state is 32 KB in size."

use elasticutor_core::topology::{Topology, TopologyBuilder};
use elasticutor_core::tuple::Tuple;
use elasticutor_sim::SimRng;

use crate::arrivals::ArrivalProcess;
use crate::shuffle::ShuffledKeySpace;
use crate::TupleSource;

/// Configuration of the micro-benchmark. Defaults reproduce §5.1.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// External arrival rate (tuples/s).
    pub rate: f64,
    /// Whether arrivals are Poisson (default) or deterministic.
    pub poisson: bool,
    /// Tuple payload size `s` in bytes (default 128; the data-intensive
    /// workload uses 8192).
    pub tuple_bytes: u32,
    /// Mean per-tuple CPU cost in nanoseconds (default 1 ms; Figure 10
    /// sweeps 0.01–10 ms).
    pub cpu_cost_ns: u64,
    /// Whether CPU costs are exponentially distributed around the mean
    /// (matching M/M/k) or deterministic.
    pub exponential_cost: bool,
    /// Number of distinct keys (default 10 000).
    pub num_keys: usize,
    /// Zipf skew (default 0.5).
    pub skew: f64,
    /// `ω` — key-frequency shuffles per minute (default 0).
    pub omega: f64,
    /// Number of generator (source) executors.
    pub generator_parallelism: u32,
    /// `y` — calculator executors (default 32).
    pub calculator_executors: u32,
    /// `z` — shards per calculator executor (default 256).
    pub shards_per_executor: u32,
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            rate: 10_000.0,
            poisson: true,
            tuple_bytes: 128,
            cpu_cost_ns: 1_000_000,
            exponential_cost: true,
            num_keys: 10_000,
            skew: 0.5,
            omega: 0.0,
            generator_parallelism: 8,
            calculator_executors: 32,
            shards_per_executor: 256,
        }
    }
}

impl MicroConfig {
    /// Builds the Figure 5 topology for this configuration.
    pub fn topology(&self) -> Topology {
        let mut b = TopologyBuilder::new();
        let gen = b.source("generator", self.generator_parallelism);
        let calc = b.transform(
            "calculator",
            self.calculator_executors,
            self.shards_per_executor,
        );
        b.key_edge(gen, calc);
        b.build().expect("micro topology is statically valid")
    }
}

/// The running tuple generator for the micro-benchmark.
pub struct MicroWorkload {
    config: MicroConfig,
    keys: ShuffledKeySpace,
    arrivals: ArrivalProcess,
    rng: SimRng,
    /// Per-key sequence numbers for the ordering invariant. Only tracked
    /// when `track_sequences` is set (costs one u32 slot per key).
    seqs: Option<Vec<u64>>,
}

impl MicroWorkload {
    /// Creates the workload from a config and a seed.
    pub fn new(config: MicroConfig, seed: u64) -> Self {
        let mut root = SimRng::new(seed);
        let keys = ShuffledKeySpace::new(config.num_keys, config.skew, config.omega, root.fork());
        let arrivals = if config.poisson {
            ArrivalProcess::Poisson { rate: config.rate }
        } else {
            ArrivalProcess::Deterministic { rate: config.rate }
        };
        Self {
            keys,
            arrivals,
            rng: root.fork(),
            config,
            seqs: None,
        }
    }

    /// Enables per-key sequence numbering (used by ordering tests).
    pub fn track_sequences(&mut self) {
        self.seqs = Some(vec![0; self.config.num_keys]);
    }

    /// The configuration.
    pub fn config(&self) -> &MicroConfig {
        &self.config
    }

    /// Number of key shuffles applied so far.
    pub fn shuffles_applied(&self) -> u64 {
        self.keys.shuffles_applied()
    }

    fn draw_cost(&mut self) -> u64 {
        if self.config.exponential_cost {
            let mean = self.config.cpu_cost_ns as f64;
            (self.rng.next_exp(1.0 / mean) as u64).max(1)
        } else {
            self.config.cpu_cost_ns
        }
    }
}

impl TupleSource for MicroWorkload {
    fn next_tuple(&mut self, now_ns: u64) -> (u64, Tuple) {
        let gap = self.arrivals.next_gap_ns(&mut self.rng);
        let at = now_ns + gap;
        let key = self.keys.sample(at);
        let cost = self.draw_cost();
        let mut tuple = Tuple::new(key, self.config.tuple_bytes, cost, at);
        if let Some(seqs) = &mut self.seqs {
            let slot = &mut seqs[key.value() as usize];
            *slot += 1;
            tuple = tuple.with_seq(*slot);
        }
        (gap, tuple)
    }

    fn nominal_rate(&self) -> f64 {
        self.config.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = MicroConfig::default();
        assert_eq!(c.tuple_bytes, 128);
        assert_eq!(c.cpu_cost_ns, 1_000_000);
        assert_eq!(c.num_keys, 10_000);
        assert!((c.skew - 0.5).abs() < 1e-12);
        assert_eq!(c.calculator_executors, 32);
        assert_eq!(c.shards_per_executor, 256);
        let t = c.topology();
        assert_eq!(t.operators().len(), 2);
        assert_eq!(t.operator_by_name("calculator").unwrap().parallelism, 32);
    }

    #[test]
    fn generates_plausible_stream() {
        let mut w = MicroWorkload::new(
            MicroConfig {
                rate: 1000.0,
                ..Default::default()
            },
            42,
        );
        let mut now = 0u64;
        let mut count = 0u64;
        while now < 10_000_000_000 {
            let (gap, t) = w.next_tuple(now);
            now += gap;
            count += 1;
            assert!(t.key.value() < 10_000);
            assert_eq!(t.payload_bytes, 128);
            assert!(t.cpu_cost_ns >= 1);
            assert_eq!(t.created_at_ns, now);
        }
        // ≈ 10 000 tuples over 10 s at 1 000/s (±10%).
        assert!(
            (count as f64 - 10_000.0).abs() < 1_000.0,
            "generated {count}"
        );
    }

    #[test]
    fn deterministic_costs_when_configured() {
        let mut w = MicroWorkload::new(
            MicroConfig {
                exponential_cost: false,
                cpu_cost_ns: 500_000,
                ..Default::default()
            },
            1,
        );
        for _ in 0..100 {
            let (_, t) = w.next_tuple(0);
            assert_eq!(t.cpu_cost_ns, 500_000);
        }
    }

    #[test]
    fn exponential_costs_average_to_mean() {
        let mut w = MicroWorkload::new(MicroConfig::default(), 7);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| w.next_tuple(0).1.cpu_cost_ns).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1_000_000.0).abs() / 1_000_000.0 < 0.03,
            "mean cost {mean}"
        );
    }

    #[test]
    fn sequences_increase_per_key() {
        let mut w = MicroWorkload::new(MicroConfig::default(), 3);
        w.track_sequences();
        let mut last_seq = std::collections::HashMap::new();
        let mut now = 0;
        for _ in 0..10_000 {
            let (gap, t) = w.next_tuple(now);
            now += gap;
            let prev = last_seq.insert(t.key, t.seq);
            if let Some(p) = prev {
                assert!(t.seq > p, "per-key seq must increase");
            }
        }
    }

    #[test]
    fn omega_shuffles_fire() {
        let mut w = MicroWorkload::new(
            MicroConfig {
                omega: 16.0,
                rate: 10_000.0,
                ..Default::default()
            },
            9,
        );
        let mut now = 0;
        while now < 60_000_000_000 {
            let (gap, _) = w.next_tuple(now);
            now += gap;
        }
        // ω = 16/min over one minute.
        assert!(w.shuffles_applied() >= 15 && w.shuffles_applied() <= 17);
    }

    #[test]
    fn same_seed_same_stream() {
        let stream = |seed| {
            let mut w = MicroWorkload::new(MicroConfig::default(), seed);
            let mut now = 0;
            let mut v = Vec::new();
            for _ in 0..200 {
                let (gap, t) = w.next_tuple(now);
                now += gap;
                v.push((gap, t.key, t.cpu_cost_ns));
            }
            v
        };
        assert_eq!(stream(5), stream(5));
        assert_ne!(stream(5), stream(6));
    }
}
