//! # elasticutor-core
//!
//! Core abstractions for the Elasticutor stream-processing framework
//! (Wang et al., *Elasticutor: Rapid Elasticity for Realtime Stateful
//! Stream Processing*, SIGMOD 2019).
//!
//! This crate is substrate-agnostic: the same types and algorithms are used
//! by the live multithreaded runtime (`elasticutor-runtime`) and by the
//! discrete-event simulated cluster (`elasticutor-cluster`).
//!
//! The pieces implemented here:
//!
//! * [`ids`] — strongly-typed identifiers for keys, shards, tasks,
//!   executors, operators, nodes, and worker processes.
//! * [`mod@tuple`] — the data-plane tuple metadata (key, payload size, CPU
//!   cost, timestamps).
//! * [`hash`] — stable 64-bit hashing used by both tiers of the routing
//!   scheme, so that key→shard mappings are reproducible everywhere.
//! * [`topology`] — the user-facing computation graph: operators with
//!   parallelism and shard counts, connected by grouped streams.
//! * [`instances`] — consistent-hash (rendezvous) shard→instance
//!   assignment for multi-executor operators, minimizing shard movement
//!   when an executor group is resized live.
//! * [`partition`] — operator-level key partitioning. Static hash
//!   partitioning (the executor-centric and static paradigms) and dynamic
//!   shard-granular partitioning (the resource-centric baseline).
//! * [`routing`] — the two-tier routing table of an elastic executor:
//!   a static key→shard hash tier and a dynamic shard→task map with
//!   pause/buffer semantics used by the consistent-reassignment protocol.
//! * [`reassign`] — the labeling-tuple reassignment state machine of the
//!   §3.3 consistent-reassignment protocol: in-flight move tracking with
//!   exactly-once completion, shared by the live executor and the
//!   simulated cluster engine.
//! * [`balance`] — intra-executor load balancing (paper §3.1): the
//!   First-Fit-Decreasing-style algorithm that moves shards between tasks
//!   until the imbalance factor δ drops below θ, minimizing moved shards.
//! * [`wire`] — the versioned, length-prefixed frame format and
//!   primitive encoding helpers shared by every cross-process protocol
//!   (state migration's control frames and shard-snapshot payloads).
//! * [`fault`] — deterministic fault injection: named fail points on
//!   the runtime's protocol paths, armed via `ELASTICUTOR_FAILPOINTS`
//!   (kill/panic/err/delay, optionally probabilistic with a fixed
//!   seed), costing nothing when disarmed.
//! * [`config`] — framework configuration with the paper's defaults.
//! * [`error`] — shared error type.

#![warn(missing_docs)]

pub mod balance;
pub mod config;
pub mod error;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod instances;
pub mod partition;
pub mod reassign;
pub mod routing;
pub mod topology;
pub mod tuple;
pub mod wire;

pub use balance::{BalanceOutcome, LoadBalancer, ShardMove, TaskLoads};
pub use config::ElasticutorConfig;
pub use error::{Error, Result};
pub use ids::{CoreId, ExecutorId, Key, NodeId, OperatorId, ProcessId, ShardId, TaskId};
pub use instances::{ShardInstanceMap, ShardMoveTo};
pub use partition::{DynamicPartition, StaticHashPartition};
pub use reassign::{Completion, InFlight, ReassignmentTracker};
pub use routing::{RouteDecision, RoutingTable};
pub use topology::{Edge, EdgeId, Grouping, OperatorKind, OperatorSpec, Topology, TopologyBuilder};
pub use tuple::Tuple;
pub use wire::WireError;
