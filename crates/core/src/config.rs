//! Framework configuration with the paper's default parameters.

use crate::error::{Error, Result};

/// Tunable parameters of the Elasticutor framework.
///
/// Defaults reproduce the paper's evaluation setup (§5): 32 elastic
/// executors per operator, 256 shards per executor (8192 per operator),
/// imbalance threshold θ = 1.2, base data-intensity threshold
/// φ̃ = 512 KB/s, and a 100 ms scheduling interval.
#[derive(Clone, Debug, PartialEq)]
pub struct ElasticutorConfig {
    /// `y` — number of elastic executors per operator.
    pub executors_per_operator: u32,
    /// `z` — number of shards per executor.
    pub shards_per_executor: u32,
    /// `θ` — maximum tolerated workload imbalance factor
    /// (max task load / mean task load) before the intra-executor load
    /// balancer intervenes. The paper uses 1.2.
    pub imbalance_threshold: f64,
    /// `φ̃` — base data-intensity threshold in bytes per second. Executors
    /// whose per-core input+output data rate exceeds φ are constrained to
    /// local cores. The paper uses 512 KB/s.
    pub data_intensity_threshold: f64,
    /// User-specified target for average end-to-end processing latency, in
    /// nanoseconds. The dynamic scheduler provisions cores until the
    /// modeled `E[T]` drops below this.
    pub latency_target_ns: u64,
    /// Interval between dynamic-scheduler invocations, in nanoseconds.
    pub scheduling_interval_ns: u64,
    /// Length of the sliding window used to measure executor rates, in
    /// nanoseconds.
    pub metrics_window_ns: u64,
    /// Bound on task pending queues, in tuples. When a queue is full the
    /// receiver exerts backpressure on upstream emitters (Storm-style
    /// max-pending).
    pub pending_queue_capacity: usize,
    /// Upper bound on shard moves applied per balancing round-trip, a
    /// safety valve against pathological churn.
    pub max_moves_per_rebalance: usize,
}

impl Default for ElasticutorConfig {
    fn default() -> Self {
        Self {
            executors_per_operator: 32,
            shards_per_executor: 256,
            imbalance_threshold: 1.2,
            data_intensity_threshold: 512.0 * 1024.0,
            latency_target_ns: 50_000_000,       // 50 ms
            scheduling_interval_ns: 100_000_000, // 100 ms
            metrics_window_ns: 1_000_000_000,    // 1 s
            pending_queue_capacity: 1024,
            max_moves_per_rebalance: 64,
        }
    }
}

impl ElasticutorConfig {
    /// Validates parameter ranges, returning a descriptive error for the
    /// first violation found.
    pub fn validate(&self) -> Result<()> {
        if self.executors_per_operator == 0 {
            return Err(Error::InvalidConfig(
                "executors_per_operator must be >= 1".into(),
            ));
        }
        if self.shards_per_executor == 0 {
            return Err(Error::InvalidConfig(
                "shards_per_executor must be >= 1".into(),
            ));
        }
        if self.imbalance_threshold < 1.0 || self.imbalance_threshold.is_nan() {
            return Err(Error::InvalidConfig(format!(
                "imbalance_threshold must be >= 1.0, got {}",
                self.imbalance_threshold
            )));
        }
        if self.data_intensity_threshold <= 0.0 || self.data_intensity_threshold.is_nan() {
            return Err(Error::InvalidConfig(
                "data_intensity_threshold must be positive".into(),
            ));
        }
        if self.pending_queue_capacity == 0 {
            return Err(Error::InvalidConfig(
                "pending_queue_capacity must be >= 1".into(),
            ));
        }
        if self.max_moves_per_rebalance == 0 {
            return Err(Error::InvalidConfig(
                "max_moves_per_rebalance must be >= 1".into(),
            ));
        }
        Ok(())
    }

    /// Total shards per operator (`y * z`), the granularity at which the
    /// resource-centric baseline repartitions.
    pub fn shards_per_operator(&self) -> u32 {
        self.executors_per_operator * self.shards_per_executor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ElasticutorConfig::default();
        assert_eq!(c.executors_per_operator, 32);
        assert_eq!(c.shards_per_executor, 256);
        assert_eq!(c.shards_per_operator(), 8192);
        assert!((c.imbalance_threshold - 1.2).abs() < 1e-12);
        assert!((c.data_intensity_threshold - 524_288.0).abs() < 1e-6);
        c.validate().expect("defaults must validate");
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = ElasticutorConfig {
            imbalance_threshold: 0.9,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ElasticutorConfig {
            executors_per_operator: 0,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ElasticutorConfig {
            shards_per_executor: 0,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ElasticutorConfig {
            pending_queue_capacity: 0,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ElasticutorConfig {
            data_intensity_threshold: 0.0,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ElasticutorConfig {
            max_moves_per_rebalance: 0,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn nan_threshold_rejected() {
        let c = ElasticutorConfig {
            imbalance_threshold: f64::NAN,
            ..ElasticutorConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
