//! The labeling-tuple reassignment state machine (paper §3.3).
//!
//! Both live substrates of the framework execute the same consistent
//! shard-reassignment protocol: pause routing for the shard, send a
//! **labeling tuple** down the source task's FIFO queue, wait for it to
//! surface (at which point every tuple of the shard that preceded it has
//! been processed), optionally migrate state, update the shard→task map,
//! and flush the tuples buffered while paused. The [`RoutingTable`]
//! handles pause/buffer/flush; this module owns the other half — the
//! bookkeeping of **in-flight moves keyed by label** — which was
//! previously duplicated between the live executor
//! (`elasticutor-runtime`) and the simulated cluster engine
//! (`elasticutor-cluster`).
//!
//! [`ReassignmentTracker`] guarantees the protocol's core invariant:
//! each move **completes (or aborts) exactly once**, no matter how label
//! delivery, task retirement, and state arrival interleave. A label is
//! minted by [`ReassignmentTracker::begin`], consumed by exactly one of
//! [`ReassignmentTracker::complete`] / [`ReassignmentTracker::abort`],
//! and any second consumption reports [`Error::UnknownLabel`] instead of
//! silently re-running map surgery.
//!
//! The tracker is substrate-agnostic: it never touches channels, clocks,
//! or the network. Callers feed it monotonic timestamps and attach a
//! `meta` payload (e.g. the simulated engine's executor index and state
//! size) that is handed back on completion.
//!
//! [`RoutingTable`]: crate::routing::RoutingTable

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::ids::{ShardId, TaskId};

/// One in-flight shard move.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight<M> {
    /// The shard being moved.
    pub shard: ShardId,
    /// The task that owned the shard when the move started.
    pub from: TaskId,
    /// The destination task.
    pub to: TaskId,
    /// When the move started (protocol initiation).
    pub started_ns: u64,
    /// When the labeling tuple surfaced at the source task (`None` while
    /// it is still queued).
    pub label_reached_ns: Option<u64>,
    /// Caller-owned metadata returned on completion/abort.
    pub meta: M,
}

/// A completed move: timing decomposition plus the caller's metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion<M> {
    /// The shard that moved.
    pub shard: ShardId,
    /// The task that owned the shard when the move started.
    pub from: TaskId,
    /// The destination task.
    pub to: TaskId,
    /// When the move started.
    pub started_ns: u64,
    /// Synchronization time: protocol start → label surfacing (the
    /// paper's "sync" phase; Figure 8).
    pub sync_ns: u64,
    /// Total time: protocol start → completion (includes any state
    /// migration after the label surfaced).
    pub total_ns: u64,
    /// Caller-owned metadata attached at [`ReassignmentTracker::begin`].
    pub meta: M,
}

/// Tracks every in-flight shard reassignment of one executor (live
/// runtime) or one whole cluster (simulated engine), keyed by label.
#[derive(Debug, Clone)]
pub struct ReassignmentTracker<M> {
    pending: BTreeMap<u64, InFlight<M>>,
    next_label: u64,
    completed: u64,
    aborted: u64,
}

impl<M> Default for ReassignmentTracker<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ReassignmentTracker<M> {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            pending: BTreeMap::new(),
            next_label: 0,
            completed: 0,
            aborted: 0,
        }
    }

    /// Registers a new move and mints its label. The caller is expected
    /// to have paused the shard in its routing table and to send the
    /// label down the `from` task's queue.
    pub fn begin(&mut self, shard: ShardId, from: TaskId, to: TaskId, now_ns: u64, meta: M) -> u64 {
        let label = self.next_label;
        self.next_label += 1;
        self.pending.insert(
            label,
            InFlight {
                shard,
                from,
                to,
                started_ns: now_ns,
                label_reached_ns: None,
                meta,
            },
        );
        label
    }

    /// The in-flight move behind `label`, if still pending.
    pub fn get(&self, label: u64) -> Option<&InFlight<M>> {
        self.pending.get(&label)
    }

    /// Records that the labeling tuple surfaced at the source task.
    /// Idempotent on the timestamp (first arrival wins); errors if the
    /// label is unknown (already completed or aborted).
    pub fn mark_label_reached(&mut self, label: u64, now_ns: u64) -> Result<&InFlight<M>> {
        let inflight = self
            .pending
            .get_mut(&label)
            .ok_or(Error::UnknownLabel(label))?;
        inflight.label_reached_ns.get_or_insert(now_ns);
        Ok(inflight)
    }

    /// Consumes the label, completing the move **exactly once**. Errors
    /// with [`Error::UnknownLabel`] if the label was never minted or was
    /// already consumed — callers treat that as a protocol bug.
    ///
    /// `sync_ns` falls back to `now_ns - started_ns` when the caller
    /// completed without a prior [`Self::mark_label_reached`] (the
    /// intra-process fast path where label surfacing and completion are
    /// the same event).
    pub fn complete(&mut self, label: u64, now_ns: u64) -> Result<Completion<M>> {
        let inflight = self
            .pending
            .remove(&label)
            .ok_or(Error::UnknownLabel(label))?;
        self.completed += 1;
        let sync_end = inflight.label_reached_ns.unwrap_or(now_ns);
        Ok(Completion {
            shard: inflight.shard,
            from: inflight.from,
            to: inflight.to,
            started_ns: inflight.started_ns,
            sync_ns: sync_end.saturating_sub(inflight.started_ns),
            total_ns: now_ns.saturating_sub(inflight.started_ns),
            meta: inflight.meta,
        })
    }

    /// Consumes the label, aborting the move (destination vanished,
    /// source retired mid-flight, ...). Errors with
    /// [`Error::UnknownLabel`] on double consumption, exactly like
    /// [`Self::complete`].
    pub fn abort(&mut self, label: u64) -> Result<InFlight<M>> {
        let inflight = self
            .pending
            .remove(&label)
            .ok_or(Error::UnknownLabel(label))?;
        self.aborted += 1;
        Ok(inflight)
    }

    /// Whether any in-flight move targets `task` (used when draining a
    /// task: it must not retire while a move could still land a shard on
    /// it).
    pub fn targets_task(&self, task: TaskId) -> bool {
        self.pending.values().any(|p| p.to == task)
    }

    /// Whether any in-flight move originates from `task`.
    pub fn originates_from(&self, task: TaskId) -> bool {
        self.pending.values().any(|p| p.from == task)
    }

    /// Labels of moves currently in flight, ascending.
    pub fn pending_labels(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    /// Number of moves currently in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no move is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Moves completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Moves aborted so far.
    pub fn aborted_count(&self) -> u64 {
        self.aborted
    }
}

/// Round-robin drain planning: pairs each of `shards` with a destination
/// from `targets`, cycling. Used when force-draining a retiring task
/// whose balancer plan left stragglers (e.g. shards that were paused
/// when the plan was computed). `offset` rotates the starting target so
/// repeated passes spread load differently.
pub fn spread_round_robin(
    shards: &[ShardId],
    targets: &[TaskId],
    offset: usize,
) -> Vec<(ShardId, TaskId)> {
    if targets.is_empty() {
        return Vec::new();
    }
    shards
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, targets[(offset + i) % targets.len()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_lifecycle_completes_exactly_once() {
        let mut t: ReassignmentTracker<()> = ReassignmentTracker::new();
        let label = t.begin(ShardId(3), TaskId(0), TaskId(1), 100, ());
        assert_eq!(t.len(), 1);
        t.mark_label_reached(label, 150).unwrap();
        let c = t.complete(label, 180).unwrap();
        assert_eq!(c.shard, ShardId(3));
        assert_eq!(c.sync_ns, 50);
        assert_eq!(c.total_ns, 80);
        assert!(t.is_empty());
        assert_eq!(t.completed_count(), 1);
        // Second completion of the same label must fail, not re-run.
        assert_eq!(t.complete(label, 200), Err(Error::UnknownLabel(label)));
        assert_eq!(t.completed_count(), 1);
    }

    #[test]
    fn abort_consumes_the_label_too() {
        let mut t: ReassignmentTracker<u32> = ReassignmentTracker::new();
        let label = t.begin(ShardId(1), TaskId(0), TaskId(2), 10, 42);
        let inflight = t.abort(label).unwrap();
        assert_eq!(inflight.meta, 42);
        assert_eq!(t.abort(label), Err(Error::UnknownLabel(label)));
        assert_eq!(t.complete(label, 11), Err(Error::UnknownLabel(label)));
        assert_eq!(t.aborted_count(), 1);
        assert_eq!(t.completed_count(), 0);
    }

    #[test]
    fn sync_falls_back_to_completion_time() {
        let mut t: ReassignmentTracker<()> = ReassignmentTracker::new();
        let label = t.begin(ShardId(0), TaskId(0), TaskId(1), 100, ());
        // Intra-process fast path: complete without marking the label.
        let c = t.complete(label, 130).unwrap();
        assert_eq!(c.sync_ns, 30);
        assert_eq!(c.total_ns, 30);
    }

    #[test]
    fn mark_label_is_first_arrival_wins() {
        let mut t: ReassignmentTracker<()> = ReassignmentTracker::new();
        let label = t.begin(ShardId(0), TaskId(0), TaskId(1), 0, ());
        t.mark_label_reached(label, 5).unwrap();
        t.mark_label_reached(label, 9).unwrap();
        let c = t.complete(label, 20).unwrap();
        assert_eq!(c.sync_ns, 5, "first label arrival wins");
        assert!(t.mark_label_reached(label, 30).is_err());
    }

    #[test]
    fn labels_are_unique_across_concurrent_moves() {
        let mut t: ReassignmentTracker<()> = ReassignmentTracker::new();
        let a = t.begin(ShardId(0), TaskId(0), TaskId(1), 0, ());
        let b = t.begin(ShardId(1), TaskId(1), TaskId(2), 0, ());
        let c = t.begin(ShardId(2), TaskId(2), TaskId(0), 0, ());
        assert_eq!(t.pending_labels().len(), 3);
        assert!(a != b && b != c && a != c);
        t.complete(b, 10).unwrap();
        assert_eq!(t.pending_labels(), vec![a, c]);
    }

    #[test]
    fn task_targeting_queries() {
        let mut t: ReassignmentTracker<()> = ReassignmentTracker::new();
        let l = t.begin(ShardId(0), TaskId(0), TaskId(1), 0, ());
        assert!(t.targets_task(TaskId(1)));
        assert!(!t.targets_task(TaskId(0)));
        assert!(t.originates_from(TaskId(0)));
        assert!(!t.originates_from(TaskId(1)));
        t.complete(l, 1).unwrap();
        assert!(!t.targets_task(TaskId(1)));
    }

    #[test]
    fn spread_round_robin_cycles_targets() {
        let shards = [ShardId(0), ShardId(1), ShardId(2)];
        let targets = [TaskId(7), TaskId(9)];
        let plan = spread_round_robin(&shards, &targets, 1);
        assert_eq!(
            plan,
            vec![
                (ShardId(0), TaskId(9)),
                (ShardId(1), TaskId(7)),
                (ShardId(2), TaskId(9)),
            ]
        );
        assert!(spread_round_robin(&shards, &[], 0).is_empty());
    }
}
