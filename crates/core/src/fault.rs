//! Deterministic fault injection: a process-wide registry of named
//! **fail points** threaded through the runtime's protocol paths (the
//! migration handshake, the link writer/reader threads, the executor
//! pause handshake) and the egress plane (`egress.write` on the sender's
//! frame write, `egress.ack` on the receiver's ACK send, `egress.spill`
//! on the spill-queue append, `egress.frame` on the receiver's frame
//! delivery — each accepting the usual err/delay/kill actions).
//!
//! A fail point is a named call site — [`fail_point("migrate.commit_sent")`]
//! — that normally does nothing. A chaos harness arms it with an
//! [`FaultAction`] via the environment
//! (`ELASTICUTOR_FAILPOINTS=migrate.commit_sent=kill,link.write=delay:5ms`)
//! or programmatically ([`configure`]/[`set`]), and the next time
//! execution reaches the site the action fires: the process aborts
//! (`kill` — the in-tree stand-in for `kill -9`), the calling thread
//! panics (`panic`), a typed [`InjectedFault`] error is returned
//! (`err`), or the thread sleeps (`delay:<n>ms`). An action may carry a
//! probability suffix (`err@0.25`) evaluated by a **seeded** per-point
//! generator (`ELASTICUTOR_FAILPOINT_SEED`), so probabilistic chaos
//! runs are exactly reproducible.
//!
//! # Zero steady-state overhead
//!
//! When nothing is armed, [`fail_point`] is two relaxed atomic loads
//! (a `Once` fast path plus one `AtomicBool`): no map lookup, no lock,
//! no allocation. Call sites live on protocol and per-frame paths, not
//! the per-record hot path, so an unarmed build is indistinguishable
//! from one compiled without fault injection.
//!
//! [`fail_point("migrate.commit_sent")`]: fail_point

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// Environment variable holding the fail-point spec parsed at first use.
pub const FAILPOINTS_ENV: &str = "ELASTICUTOR_FAILPOINTS";
/// Environment variable seeding probabilistic fail points.
pub const FAILPOINT_SEED_ENV: &str = "ELASTICUTOR_FAILPOINT_SEED";

/// What an armed fail point does when execution reaches it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Abort the process immediately — the `kill -9` analogue (no
    /// unwinding, no flushing, no destructors).
    Kill,
    /// Panic the calling thread.
    Panic,
    /// Return a typed [`InjectedFault`] from [`fail_point`].
    Err,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Disarmed (parse-friendly way to switch a point off in a list).
    Off,
}

/// The typed error returned when a fail point armed with
/// [`FaultAction::Err`] fires. Callers map it into their own error
/// types (`MigrateError::Injected`, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fail point that fired.
    pub point: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at fail point `{}`", self.point)
    }
}

impl std::error::Error for InjectedFault {}

/// One armed fail point: its action, optional probability, and a
/// seeded xorshift state so probabilistic firing is reproducible.
struct FailPoint {
    action: FaultAction,
    probability: Option<f64>,
    rng: AtomicU64,
    hits: AtomicU64,
}

/// Whether *any* fail point is armed — the hot-path gate.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// One-time environment parse, performed on the first `fail_point`.
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn env_seed() -> u64 {
    std::env::var(FAILPOINT_SEED_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
}

/// FNV-1a over the point name, mixed with the seed, so every point gets
/// an independent deterministic stream.
fn point_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // A zero xorshift state would stick at zero forever.
    (h ^ env_seed()) | 1
}

fn init_from_env() {
    if let Ok(spec) = std::env::var(FAILPOINTS_ENV) {
        if !spec.trim().is_empty() {
            if let Err(e) = configure(&spec) {
                // A typo'd spec must be loud, not silently inert: the
                // whole point of the variable is a chaos run.
                panic!("invalid {FAILPOINTS_ENV} spec: {e}");
            }
        }
    }
}

/// Parses one action: `kill | panic | err | off | delay:<n>ms[@<p>]`
/// (probability suffix valid on every action).
fn parse_action(s: &str) -> Result<(FaultAction, Option<f64>), String> {
    let (action, prob) = match s.split_once('@') {
        Some((a, p)) => {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability `{p}` in `{s}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability `{p}` outside [0, 1] in `{s}`"));
            }
            (a, Some(p))
        }
        None => (s, None),
    };
    let action = match action {
        "kill" => FaultAction::Kill,
        "panic" => FaultAction::Panic,
        "err" => FaultAction::Err,
        "off" => FaultAction::Off,
        _ => match action.strip_prefix("delay:") {
            Some(dur) => FaultAction::Delay(parse_duration(dur)?),
            None => return Err(format!("unknown action `{action}`")),
        },
    };
    Ok((action, prob))
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("duration `{s}` needs a unit (us/ms/s)"))?;
    let n: u64 = num
        .parse()
        .map_err(|_| format!("bad duration value `{num}`"))?;
    match unit {
        "us" => Ok(Duration::from_micros(n)),
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        _ => Err(format!("unknown duration unit `{unit}`")),
    }
}

/// Arms fail points from a spec string: comma-separated
/// `name=action` pairs, e.g.
/// `migrate.commit_sent=kill,link.write=delay:5ms,rcv.commit=err@0.5`.
/// Replaces the arming of every point named in the spec; points not
/// named keep their current state. Errors on the first malformed pair
/// without arming anything.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for pair in spec.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, action) = pair
            .split_once('=')
            .ok_or_else(|| format!("`{pair}` is not name=action"))?;
        let (action, probability) = parse_action(action.trim())?;
        parsed.push((name.trim().to_string(), action, probability));
    }
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for (name, action, probability) in parsed {
        let seed = point_seed(&name);
        reg.insert(
            name,
            FailPoint {
                action,
                probability,
                rng: AtomicU64::new(seed),
                hits: AtomicU64::new(0),
            },
        );
    }
    let any_armed = reg.values().any(|p| p.action != FaultAction::Off);
    drop(reg);
    ACTIVE.store(any_armed, Ordering::Release);
    Ok(())
}

/// Arms a single fail point programmatically (tests, builders).
pub fn set(name: &str, action: FaultAction) {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.insert(
        name.to_string(),
        FailPoint {
            action,
            probability: None,
            rng: AtomicU64::new(point_seed(name)),
            hits: AtomicU64::new(0),
        },
    );
    let any_armed = reg.values().any(|p| p.action != FaultAction::Off);
    drop(reg);
    ACTIVE.store(any_armed, Ordering::Release);
}

/// Disarms every fail point (the hot path goes back to two loads).
pub fn clear() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    ACTIVE.store(false, Ordering::Release);
}

/// Times a fail point has fired (action actually taken), for tests.
pub fn hit_count(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .map_or(0, |p| p.hits.load(Ordering::Relaxed))
}

/// The fail-point call site. Disarmed (the overwhelmingly common case)
/// this is two relaxed atomic loads and returns `Ok(())`; armed, it
/// performs the configured [`FaultAction`].
#[inline]
pub fn fail_point(name: &str) -> Result<(), InjectedFault> {
    ENV_INIT.call_once(init_from_env);
    if !ACTIVE.load(Ordering::Acquire) {
        return Ok(());
    }
    fail_point_slow(name)
}

#[cold]
fn fail_point_slow(name: &str) -> Result<(), InjectedFault> {
    let action = {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let Some(point) = reg.get(name) else {
            return Ok(());
        };
        if let Some(p) = point.probability {
            // Seeded xorshift64*: deterministic per (seed, point name).
            let mut x = point.rng.load(Ordering::Relaxed);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            point.rng.store(x, Ordering::Relaxed);
            let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
            if draw >= p {
                return Ok(());
            }
        }
        if point.action != FaultAction::Off {
            point.hits.fetch_add(1, Ordering::Relaxed);
        }
        point.action
    };
    match action {
        FaultAction::Off => Ok(()),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Err => Err(InjectedFault {
            point: name.to_string(),
        }),
        FaultAction::Panic => panic!("fail point `{name}` armed with panic"),
        FaultAction::Kill => std::process::abort(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests share it, so each uses its
    // own point names and ends with `clear()` hygiene where it matters.

    #[test]
    fn disarmed_points_are_inert() {
        assert_eq!(fail_point("test.nothing_armed_here"), Ok(()));
    }

    #[test]
    fn err_action_returns_typed_fault() {
        set("test.err_point", FaultAction::Err);
        let e = fail_point("test.err_point").unwrap_err();
        assert_eq!(e.point, "test.err_point");
        assert!(hit_count("test.err_point") >= 1);
        set("test.err_point", FaultAction::Off);
        assert_eq!(fail_point("test.err_point"), Ok(()));
    }

    #[test]
    fn panic_action_panics() {
        set("test.panic_point", FaultAction::Panic);
        let r = std::panic::catch_unwind(|| fail_point("test.panic_point"));
        assert!(r.is_err());
        set("test.panic_point", FaultAction::Off);
    }

    #[test]
    fn spec_parsing_round_trips() {
        configure("test.a=err, test.b=delay:5ms, test.c=off").unwrap();
        assert!(fail_point("test.a").is_err());
        let t = std::time::Instant::now();
        assert!(fail_point("test.b").is_ok());
        assert!(t.elapsed() >= Duration::from_millis(5));
        assert!(fail_point("test.c").is_ok());
        configure("test.a=off, test.b=off").unwrap();
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(configure("nonsense").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=delay:5").is_err());
        assert!(configure("x=err@1.5").is_err());
    }

    #[test]
    fn probability_is_seeded_and_partial() {
        configure("test.prob=err@0.5").unwrap();
        let fired: usize = (0..64)
            .map(|_| usize::from(fail_point("test.prob").is_err()))
            .sum();
        // Deterministic for a fixed seed; must be neither never nor
        // always at p=0.5 over 64 draws.
        assert!(fired > 0 && fired < 64, "fired {fired}/64");
        configure("test.prob=off").unwrap();
    }
}
