//! Consistent-hash shard→instance assignment for executor groups.
//!
//! When an operator runs with parallelism y > 1, its shard space is split
//! across y *executor instances*. The split must be a consistent hash:
//! growing the group from n to n+1 instances (or retiring one) should move
//! only ~1/(n+1) of the shards, because every moved shard costs a full
//! §3.3 state-migration handshake.
//!
//! We use Highest-Random-Weight (rendezvous) hashing rather than ring or
//! jump consistent hashing: every `(shard, instance)` pair gets a stable
//! pseudo-random weight `hash_with_seed(shard_salt, instance_salt)` and
//! each shard is owned by the live instance with the highest weight. HRW
//! gives exactly the property we need for *both* directions of elasticity:
//!
//! * **add instance k**: the only shards that move are those whose maximum
//!   weight is now achieved by k — in expectation `z / (n+1)` of them, and
//!   every move is *into* k.
//! * **remove instance k**: the only shards that move are those k owned,
//!   and each lands on its second-highest-weight instance — no shuffling
//!   among survivors. (Jump hashing can only remove the highest-numbered
//!   bucket; HRW can retire any instance, which the live controller needs
//!   when it picks the least-loaded instance as the scale-in victim.)
//!
//! The map is materialized as a dense `Vec<u32>` over the shard space so
//! the data-plane lookup is a single indexed load; the HRW computation runs
//! only at (re)build time, i.e. once per rescale.

use crate::hash::hash_with_seed;

/// Salt decorrelating the instance tier from the key→shard tier.
const INSTANCE_TIER_SEED: u64 = 0xA076_1D64_78BD_642F;

/// A dense, consistent shard→instance assignment for one operator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInstanceMap {
    /// `assignment[shard] = instance id` (an index into the group's
    /// append-only instance vector — retired ids never come back).
    assignment: Vec<u32>,
    /// Live instance ids, ascending. Retired ids are absent.
    live: Vec<u32>,
}

/// One shard move produced by a resize: `shard` leaves `from` for `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMoveTo {
    /// The shard being reassigned.
    pub shard: u32,
    /// Instance that owned the shard before the resize.
    pub from: u32,
    /// Instance that owns the shard after the resize.
    pub to: u32,
}

/// HRW weight of `(shard, instance)` — stable across processes.
#[inline]
fn weight(shard: u32, instance: u32) -> u64 {
    hash_with_seed(
        u64::from(shard),
        hash_with_seed(u64::from(instance), INSTANCE_TIER_SEED),
    )
}

fn owner(shard: u32, live: &[u32]) -> u32 {
    debug_assert!(!live.is_empty(), "instance set must be nonempty");
    let mut best = live[0];
    let mut best_w = weight(shard, best);
    for &inst in &live[1..] {
        let w = weight(shard, inst);
        // Ties are impossible in practice (64-bit weights), but break them
        // deterministically toward the lower id for reproducibility.
        if w > best_w || (w == best_w && inst < best) {
            best = inst;
            best_w = w;
        }
    }
    best
}

impl ShardInstanceMap {
    /// Builds the map for `num_shards` shards over instance ids `0..n`.
    pub fn new(num_shards: u32, instances: u32) -> Self {
        assert!(instances > 0, "executor group needs at least one instance");
        let live: Vec<u32> = (0..instances).collect();
        let assignment = (0..num_shards).map(|s| owner(s, &live)).collect();
        Self { assignment, live }
    }

    /// The instance owning `shard`.
    #[inline]
    pub fn instance_of(&self, shard: u32) -> u32 {
        self.assignment[shard as usize]
    }

    /// Number of shards in the map.
    pub fn num_shards(&self) -> u32 {
        self.assignment.len() as u32
    }

    /// Live instance ids, ascending.
    pub fn live_instances(&self) -> &[u32] {
        &self.live
    }

    /// Shards currently owned by `instance`.
    pub fn shards_of(&self, instance: u32) -> Vec<u32> {
        (0..self.num_shards())
            .filter(|&s| self.assignment[s as usize] == instance)
            .collect()
    }

    /// Adds a new live instance and returns the moves it attracts.
    ///
    /// `instance` must not already be live. Every returned move has
    /// `to == instance` (the HRW guarantee), and in expectation
    /// `num_shards / live_count` shards move.
    pub fn add_instance(&mut self, instance: u32) -> Vec<ShardMoveTo> {
        assert!(
            !self.live.contains(&instance),
            "instance {instance} is already live"
        );
        let pos = self.live.partition_point(|&i| i < instance);
        self.live.insert(pos, instance);
        let mut moves = Vec::new();
        for s in 0..self.num_shards() {
            let from = self.assignment[s as usize];
            // Only the newcomer can beat the incumbent: all other weights
            // are unchanged, so recompute against `instance` alone.
            let w_new = weight(s, instance);
            let w_old = weight(s, from);
            if w_new > w_old || (w_new == w_old && instance < from) {
                self.assignment[s as usize] = instance;
                moves.push(ShardMoveTo {
                    shard: s,
                    from,
                    to: instance,
                });
            }
        }
        moves
    }

    /// Retires a live instance and returns the moves draining it.
    ///
    /// Every returned move has `from == instance`; each shard lands on its
    /// next-best surviving instance. Panics when retiring the last one.
    pub fn remove_instance(&mut self, instance: u32) -> Vec<ShardMoveTo> {
        let pos = self
            .live
            .iter()
            .position(|&i| i == instance)
            .unwrap_or_else(|| panic!("instance {instance} is not live"));
        assert!(self.live.len() > 1, "cannot retire the last instance");
        self.live.remove(pos);
        let mut moves = Vec::new();
        for s in 0..self.num_shards() {
            if self.assignment[s as usize] == instance {
                let to = owner(s, &self.live);
                self.assignment[s as usize] = to;
                moves.push(ShardMoveTo {
                    shard: s,
                    from: instance,
                    to,
                });
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_instance_owns_everything() {
        let m = ShardInstanceMap::new(64, 1);
        for s in 0..64 {
            assert_eq!(m.instance_of(s), 0);
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        assert_eq!(ShardInstanceMap::new(256, 4), ShardInstanceMap::new(256, 4));
    }

    #[test]
    fn add_moves_only_into_newcomer_and_matches_fresh_build() {
        let mut m = ShardInstanceMap::new(256, 3);
        let before = m.clone();
        let moves = m.add_instance(3);
        for mv in &moves {
            assert_eq!(mv.to, 3);
            assert_eq!(before.instance_of(mv.shard), mv.from);
        }
        // Incremental update must agree with a from-scratch build.
        assert_eq!(m, ShardInstanceMap::new(256, 4));
    }

    #[test]
    fn remove_moves_only_out_of_victim() {
        let mut m = ShardInstanceMap::new(256, 4);
        let owned = m.shards_of(2);
        let moves = m.remove_instance(2);
        assert_eq!(moves.len(), owned.len());
        for mv in &moves {
            assert_eq!(mv.from, 2);
            assert_ne!(mv.to, 2);
        }
        assert!(m.shards_of(2).is_empty());
        assert_eq!(m.live_instances(), &[0, 1, 3]);
    }

    #[test]
    fn add_then_remove_round_trips() {
        let mut m = ShardInstanceMap::new(128, 2);
        let orig = m.clone();
        m.add_instance(2);
        m.remove_instance(2);
        assert_eq!(m.assignment, orig.assignment);
    }

    #[test]
    fn spread_is_roughly_even() {
        let m = ShardInstanceMap::new(4096, 4);
        for inst in 0..4 {
            let n = m.shards_of(inst).len();
            // Expected 1024; allow generous slack for hash variance.
            assert!((700..=1400).contains(&n), "instance {inst} owns {n}");
        }
    }

    #[test]
    #[should_panic(expected = "last instance")]
    fn cannot_remove_last() {
        let mut m = ShardInstanceMap::new(8, 1);
        m.remove_instance(0);
    }
}
