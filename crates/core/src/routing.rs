//! The two-tier routing table of an elastic executor.
//!
//! Paper §3.2 (Figure 4): the receiver daemon of an elastic executor maps
//! each input tuple to its designated task in two tiers:
//!
//! 1. a **static** tier hashing the key to one of `z` shards, and
//! 2. a **dynamic** shard→task mapping updated on shard reassignments.
//!
//! During a shard's reassignment (paper §3.3) routing for that shard is
//! **paused**: arriving tuples are buffered at the receiver, and are
//! flushed to the destination task once the state migration completes and
//! the mapping is updated. [`RoutingTable`] implements exactly this: it is
//! generic over the buffered tuple representation `T` so the simulated and
//! live engines reuse identical semantics.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::hash;
use crate::ids::{Key, ShardId, TaskId};

/// Outcome of routing one tuple.
#[derive(Debug, PartialEq, Eq)]
pub enum RouteDecision<T> {
    /// Deliver the tuple to this task's pending queue; the tuple is
    /// handed back to the caller.
    Deliver(TaskId, T),
    /// The tuple's shard is paused for reassignment; the tuple was buffered
    /// inside the routing table and must not be delivered yet.
    Buffered(ShardId),
}

/// Two-tier routing table with pause/buffer semantics.
#[derive(Debug, Clone)]
pub struct RoutingTable<T> {
    /// `shard → task` (tier 2). Indexed by shard.
    shard_to_task: Vec<TaskId>,
    /// Buffers for paused shards. Sparse: almost always empty.
    paused: BTreeMap<ShardId, Vec<T>>,
    /// Bumped on every mapping update; lets observers cheaply detect change.
    version: u64,
}

impl<T> RoutingTable<T> {
    /// Creates a table of `num_shards` shards all mapped to `initial_task`.
    pub fn new(num_shards: u32, initial_task: TaskId) -> Self {
        Self {
            shard_to_task: vec![initial_task; num_shards as usize],
            paused: BTreeMap::new(),
            version: 0,
        }
    }

    /// Creates a table from an explicit shard→task assignment.
    pub fn from_assignment(assignment: Vec<TaskId>) -> Self {
        assert!(!assignment.is_empty(), "assignment must not be empty");
        Self {
            shard_to_task: assignment,
            paused: BTreeMap::new(),
            version: 0,
        }
    }

    /// Number of shards (tier-1 modulus).
    pub fn num_shards(&self) -> u32 {
        self.shard_to_task.len() as u32
    }

    /// Tier-1: the shard owning `key`.
    #[inline]
    pub fn shard_for(&self, key: Key) -> ShardId {
        ShardId(hash::key_to_shard(key.value(), self.num_shards()))
    }

    /// Tier-2 lookup: the task currently owning `shard`.
    pub fn task_of(&self, shard: ShardId) -> Result<TaskId> {
        self.shard_to_task
            .get(shard.index())
            .copied()
            .ok_or(Error::UnknownShard(shard))
    }

    /// Routes a tuple: returns the destination task (handing the tuple
    /// back), or buffers the tuple if its shard is paused.
    pub fn route(&mut self, key: Key, tuple: T) -> RouteDecision<T> {
        let shard = self.shard_for(key);
        self.route_shard(shard, tuple)
    }

    /// Routes a tuple whose shard is already known (callers that computed
    /// the shard externally, e.g. from an operator-global shard id).
    pub fn route_shard(&mut self, shard: ShardId, tuple: T) -> RouteDecision<T> {
        if let Some(buf) = self.paused.get_mut(&shard) {
            buf.push(tuple);
            return RouteDecision::Buffered(shard);
        }
        RouteDecision::Deliver(self.shard_to_task[shard.index()], tuple)
    }

    /// Pauses routing for `shard` (start of a reassignment). Subsequent
    /// tuples of the shard are buffered. Errors if already paused.
    pub fn pause(&mut self, shard: ShardId) -> Result<()> {
        if shard.index() >= self.shard_to_task.len() {
            return Err(Error::UnknownShard(shard));
        }
        if self.paused.contains_key(&shard) {
            return Err(Error::ReassignmentInProgress(shard));
        }
        self.paused.insert(shard, Vec::new());
        Ok(())
    }

    /// Whether `shard` is currently paused.
    pub fn is_paused(&self, shard: ShardId) -> bool {
        self.paused.contains_key(&shard)
    }

    /// Completes a reassignment: points `shard` at `new_task`, resumes
    /// routing, and returns the tuples buffered while paused (in arrival
    /// order) so the caller can deliver them to `new_task`.
    pub fn finish_reassignment(&mut self, shard: ShardId, new_task: TaskId) -> Result<Vec<T>> {
        if shard.index() >= self.shard_to_task.len() {
            return Err(Error::UnknownShard(shard));
        }
        let buffered = self
            .paused
            .remove(&shard)
            .ok_or(Error::UnknownShard(shard))?;
        self.shard_to_task[shard.index()] = new_task;
        self.version += 1;
        Ok(buffered)
    }

    /// Aborts a reassignment: resumes routing to the *old* task and returns
    /// the buffered tuples for delivery there. Used for failure recovery.
    pub fn abort_reassignment(&mut self, shard: ShardId) -> Result<Vec<T>> {
        let buffered = self
            .paused
            .remove(&shard)
            .ok_or(Error::UnknownShard(shard))?;
        self.version += 1;
        Ok(buffered)
    }

    /// Directly updates the mapping without pause/buffer (used for initial
    /// placement and bulk rebalances while an executor is quiesced).
    pub fn set_task(&mut self, shard: ShardId, task: TaskId) -> Result<()> {
        if self.is_paused(shard) {
            return Err(Error::ReassignmentInProgress(shard));
        }
        let slot = self
            .shard_to_task
            .get_mut(shard.index())
            .ok_or(Error::UnknownShard(shard))?;
        *slot = task;
        self.version += 1;
        Ok(())
    }

    /// Shards currently mapped to `task` (paused shards included; a paused
    /// shard still belongs to its source task until the reassignment
    /// finishes).
    pub fn shards_of(&self, task: TaskId) -> Vec<ShardId> {
        self.shard_to_task
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == task)
            .map(|(s, _)| ShardId::from_index(s))
            .collect()
    }

    /// The full shard→task assignment.
    pub fn assignment(&self) -> &[TaskId] {
        &self.shard_to_task
    }

    /// Distinct tasks present in the assignment, ascending.
    pub fn tasks(&self) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = self.shard_to_task.to_vec();
        tasks.sort_unstable();
        tasks.dedup();
        tasks
    }

    /// Mapping version (bumped on every change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards currently paused.
    pub fn paused_count(&self) -> usize {
        self.paused.len()
    }

    /// Total tuples sitting in pause buffers.
    pub fn buffered_tuples(&self) -> usize {
        self.paused.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable<u64> {
        RoutingTable::from_assignment(vec![TaskId(0), TaskId(0), TaskId(1), TaskId(1)])
    }

    #[test]
    fn routes_by_two_tiers() {
        let mut rt = table();
        let key = Key(7);
        let shard = rt.shard_for(key);
        let expect = rt.task_of(shard).unwrap();
        assert_eq!(rt.route(key, 1), RouteDecision::Deliver(expect, 1));
    }

    #[test]
    fn pause_buffers_then_flushes_in_order() {
        let mut rt = table();
        // Find a key landing on shard 2.
        let key = (0..)
            .map(Key)
            .find(|&k| rt.shard_for(k) == ShardId(2))
            .unwrap();
        rt.pause(ShardId(2)).unwrap();
        assert!(rt.is_paused(ShardId(2)));
        assert_eq!(rt.route(key, 10), RouteDecision::Buffered(ShardId(2)));
        assert_eq!(rt.route(key, 11), RouteDecision::Buffered(ShardId(2)));
        assert_eq!(rt.buffered_tuples(), 2);
        let buf = rt.finish_reassignment(ShardId(2), TaskId(0)).unwrap();
        assert_eq!(buf, vec![10, 11]);
        assert_eq!(rt.task_of(ShardId(2)).unwrap(), TaskId(0));
        assert!(!rt.is_paused(ShardId(2)));
        // Routing resumes to the new task.
        assert_eq!(rt.route(key, 12), RouteDecision::Deliver(TaskId(0), 12));
    }

    #[test]
    fn unpaused_shards_unaffected_by_pause() {
        let mut rt = table();
        rt.pause(ShardId(2)).unwrap();
        let key = (0..)
            .map(Key)
            .find(|&k| rt.shard_for(k) == ShardId(0))
            .unwrap();
        assert_eq!(rt.route(key, 5), RouteDecision::Deliver(TaskId(0), 5));
    }

    #[test]
    fn double_pause_rejected() {
        let mut rt = table();
        rt.pause(ShardId(1)).unwrap();
        assert_eq!(
            rt.pause(ShardId(1)),
            Err(Error::ReassignmentInProgress(ShardId(1)))
        );
    }

    #[test]
    fn abort_restores_old_task() {
        let mut rt = table();
        let key = (0..)
            .map(Key)
            .find(|&k| rt.shard_for(k) == ShardId(3))
            .unwrap();
        rt.pause(ShardId(3)).unwrap();
        rt.route(key, 99);
        let buf = rt.abort_reassignment(ShardId(3)).unwrap();
        assert_eq!(buf, vec![99]);
        assert_eq!(
            rt.task_of(ShardId(3)).unwrap(),
            TaskId(1),
            "mapping unchanged"
        );
    }

    #[test]
    fn finish_without_pause_is_error() {
        let mut rt = table();
        assert!(rt.finish_reassignment(ShardId(0), TaskId(1)).is_err());
    }

    #[test]
    fn set_task_blocked_while_paused() {
        let mut rt = table();
        rt.pause(ShardId(0)).unwrap();
        assert_eq!(
            rt.set_task(ShardId(0), TaskId(1)),
            Err(Error::ReassignmentInProgress(ShardId(0)))
        );
    }

    #[test]
    fn version_bumps_on_changes() {
        let mut rt = table();
        let v0 = rt.version();
        rt.set_task(ShardId(0), TaskId(1)).unwrap();
        assert!(rt.version() > v0);
        rt.pause(ShardId(1)).unwrap();
        let v1 = rt.version();
        rt.finish_reassignment(ShardId(1), TaskId(0)).unwrap();
        assert!(rt.version() > v1);
    }

    #[test]
    fn shards_of_and_tasks() {
        let rt = table();
        assert_eq!(rt.shards_of(TaskId(0)), vec![ShardId(0), ShardId(1)]);
        assert_eq!(rt.shards_of(TaskId(1)), vec![ShardId(2), ShardId(3)]);
        assert_eq!(rt.tasks(), vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn out_of_range_shard_errors() {
        let mut rt = table();
        assert!(rt.task_of(ShardId(99)).is_err());
        assert!(rt.pause(ShardId(99)).is_err());
        assert!(rt.set_task(ShardId(99), TaskId(0)).is_err());
    }

    #[test]
    fn uniform_table_constructor() {
        let rt: RoutingTable<()> = RoutingTable::new(256, TaskId(0));
        assert_eq!(rt.num_shards(), 256);
        assert_eq!(rt.tasks(), vec![TaskId(0)]);
    }
}
