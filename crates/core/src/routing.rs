//! The two-tier routing table of an elastic executor.
//!
//! Paper §3.2 (Figure 4): the receiver daemon of an elastic executor maps
//! each input tuple to its designated task in two tiers:
//!
//! 1. a **static** tier hashing the key to one of `z` shards, and
//! 2. a **dynamic** shard→task mapping updated on shard reassignments.
//!
//! During a shard's reassignment (paper §3.3) routing for that shard is
//! **paused**: arriving tuples are buffered at the receiver, and are
//! flushed to the destination task once the state migration completes and
//! the mapping is updated. [`RoutingTable`] implements exactly this: it is
//! generic over the buffered tuple representation `T` so the simulated and
//! live engines reuse identical semantics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::hash;
use crate::ids::{Key, ShardId, TaskId};

/// Outcome of routing one tuple.
#[derive(Debug, PartialEq, Eq)]
pub enum RouteDecision<T> {
    /// Deliver the tuple to this task's pending queue; the tuple is
    /// handed back to the caller.
    Deliver(TaskId, T),
    /// The tuple's shard is paused for reassignment; the tuple was buffered
    /// inside the routing table and must not be delivered yet.
    Buffered(ShardId),
}

/// Two-tier routing table with pause/buffer semantics.
#[derive(Debug, Clone)]
pub struct RoutingTable<T> {
    /// `shard → task` (tier 2). Indexed by shard.
    shard_to_task: Vec<TaskId>,
    /// Buffers for paused shards. Sparse: almost always empty.
    paused: BTreeMap<ShardId, Vec<T>>,
    /// Bumped on every mapping update; lets observers cheaply detect change.
    version: u64,
}

impl<T> RoutingTable<T> {
    /// Creates a table of `num_shards` shards all mapped to `initial_task`.
    pub fn new(num_shards: u32, initial_task: TaskId) -> Self {
        Self {
            shard_to_task: vec![initial_task; num_shards as usize],
            paused: BTreeMap::new(),
            version: 0,
        }
    }

    /// Creates a table from an explicit shard→task assignment.
    pub fn from_assignment(assignment: Vec<TaskId>) -> Self {
        assert!(!assignment.is_empty(), "assignment must not be empty");
        Self {
            shard_to_task: assignment,
            paused: BTreeMap::new(),
            version: 0,
        }
    }

    /// Number of shards (tier-1 modulus).
    pub fn num_shards(&self) -> u32 {
        self.shard_to_task.len() as u32
    }

    /// Tier-1: the shard owning `key`.
    #[inline]
    pub fn shard_for(&self, key: Key) -> ShardId {
        ShardId(hash::key_to_shard(key.value(), self.num_shards()))
    }

    /// Tier-2 lookup: the task currently owning `shard`.
    pub fn task_of(&self, shard: ShardId) -> Result<TaskId> {
        self.shard_to_task
            .get(shard.index())
            .copied()
            .ok_or(Error::UnknownShard(shard))
    }

    /// Routes a tuple: returns the destination task (handing the tuple
    /// back), or buffers the tuple if its shard is paused.
    pub fn route(&mut self, key: Key, tuple: T) -> RouteDecision<T> {
        let shard = self.shard_for(key);
        self.route_shard(shard, tuple)
    }

    /// Routes a tuple whose shard is already known (callers that computed
    /// the shard externally, e.g. from an operator-global shard id).
    pub fn route_shard(&mut self, shard: ShardId, tuple: T) -> RouteDecision<T> {
        if let Some(buf) = self.paused.get_mut(&shard) {
            buf.push(tuple);
            return RouteDecision::Buffered(shard);
        }
        RouteDecision::Deliver(self.shard_to_task[shard.index()], tuple)
    }

    /// Pauses routing for `shard` (start of a reassignment). Subsequent
    /// tuples of the shard are buffered. Errors if already paused.
    pub fn pause(&mut self, shard: ShardId) -> Result<()> {
        if shard.index() >= self.shard_to_task.len() {
            return Err(Error::UnknownShard(shard));
        }
        if self.paused.contains_key(&shard) {
            return Err(Error::ReassignmentInProgress(shard));
        }
        self.paused.insert(shard, Vec::new());
        Ok(())
    }

    /// Whether `shard` is currently paused.
    pub fn is_paused(&self, shard: ShardId) -> bool {
        self.paused.contains_key(&shard)
    }

    /// Completes a reassignment: points `shard` at `new_task`, resumes
    /// routing, and returns the tuples buffered while paused (in arrival
    /// order) so the caller can deliver them to `new_task`.
    pub fn finish_reassignment(&mut self, shard: ShardId, new_task: TaskId) -> Result<Vec<T>> {
        if shard.index() >= self.shard_to_task.len() {
            return Err(Error::UnknownShard(shard));
        }
        let buffered = self
            .paused
            .remove(&shard)
            .ok_or(Error::UnknownShard(shard))?;
        self.shard_to_task[shard.index()] = new_task;
        self.version += 1;
        Ok(buffered)
    }

    /// Aborts a reassignment: resumes routing to the *old* task and returns
    /// the buffered tuples for delivery there. Used for failure recovery.
    pub fn abort_reassignment(&mut self, shard: ShardId) -> Result<Vec<T>> {
        let buffered = self
            .paused
            .remove(&shard)
            .ok_or(Error::UnknownShard(shard))?;
        self.version += 1;
        Ok(buffered)
    }

    /// Directly updates the mapping without pause/buffer (used for initial
    /// placement and bulk rebalances while an executor is quiesced).
    pub fn set_task(&mut self, shard: ShardId, task: TaskId) -> Result<()> {
        if self.is_paused(shard) {
            return Err(Error::ReassignmentInProgress(shard));
        }
        let slot = self
            .shard_to_task
            .get_mut(shard.index())
            .ok_or(Error::UnknownShard(shard))?;
        *slot = task;
        self.version += 1;
        Ok(())
    }

    /// Shards currently mapped to `task` (paused shards included; a paused
    /// shard still belongs to its source task until the reassignment
    /// finishes).
    pub fn shards_of(&self, task: TaskId) -> Vec<ShardId> {
        self.shard_to_task
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == task)
            .map(|(s, _)| ShardId::from_index(s))
            .collect()
    }

    /// The full shard→task assignment.
    pub fn assignment(&self) -> &[TaskId] {
        &self.shard_to_task
    }

    /// Distinct tasks present in the assignment, ascending.
    pub fn tasks(&self) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = self.shard_to_task.to_vec();
        tasks.sort_unstable();
        tasks.dedup();
        tasks
    }

    /// Mapping version (bumped on every change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards currently paused.
    pub fn paused_count(&self) -> usize {
        self.paused.len()
    }

    /// Total tuples sitting in pause buffers.
    pub fn buffered_tuples(&self) -> usize {
        self.paused.values().map(Vec::len).sum()
    }
}

// ---------------------------------------------------------------------------
// Wait-free tier-2: the atomic shard table.
// ---------------------------------------------------------------------------

/// Bits `0..20` of a shard word: routes currently in flight through the
/// fast path (`begin_route` guards not yet dropped). A carry out of
/// these bits would corrupt the paused bit, so the width is a real
/// protocol bound: callers must never hold more than ~1M guards on one
/// shard at once. Guards are held only across a single non-blocking
/// enqueue (batched submitters route in bounded chunks), so reaching
/// the bound would take over a million threads parked mid-enqueue.
const INFLIGHT_MASK: u64 = 0xF_FFFF;
/// Bit 20: the shard is paused for reassignment; fast-path routing must
/// divert to the slow path.
const PAUSED_BIT: u64 = 1 << 20;
/// Bits `21..31`: reassignment epoch (wrapping; observability and ABA
/// diagnostics — correctness rests on the paused/in-flight handshake).
const EPOCH_SHIFT: u32 = 21;
const EPOCH_MASK: u64 = 0x3FF;
/// Bit 31: the shard is hosted by a remote process; fast-path routing
/// resolves to the caller's remote egress instead of a local slot. The
/// paused bit dominates: a remote shard mid-transition (adoption back)
/// is paused first, and diverts like any paused shard.
const REMOTE_BIT: u64 = 1 << 31;
/// Bits `32..64`: the destination slot index.
const SLOT_SHIFT: u32 = 32;

/// Outcome of a wait-free routing attempt on an [`AtomicShardTable`].
pub enum FastRoute<'a> {
    /// The shard is live: deliver to the slot named by the guard. The
    /// guard **must be held across the delivery** (the enqueue into the
    /// destination's queue) and dropped immediately after — a pending
    /// pause of this shard waits for it.
    Deliver(RouteGuard<'a>),
    /// The shard is paused for reassignment; take the slow path (the
    /// lock-protected [`RoutingTable`]) so the tuple is buffered.
    Paused,
    /// The shard is hosted by a remote peer: deliver to the caller's
    /// remote egress. Like `Deliver`, the guard **must be held across
    /// the (wait-free) egress enqueue** — a pause flipping the shard
    /// back to local waits for it, which is what orders every pre-flip
    /// forward ahead of the flip's acknowledgment.
    Remote(RouteGuard<'a>),
}

/// RAII in-flight marker returned by [`AtomicShardTable::begin_route`].
///
/// While alive it blocks completion of a concurrent
/// [`AtomicShardTable::pause`] of the same shard, which is what makes
/// the read-then-deliver window safe: the labeling tuple of the §3.3
/// protocol is only enqueued once every guard-protected delivery that
/// read the pre-pause owner has finished, so those tuples sit in the old
/// owner's queue *ahead of* the label. Holders must not block (beyond
/// the non-blocking enqueue itself) and must never acquire the lock that
/// serializes pauses — that would deadlock the pausing thread's drain.
pub struct RouteGuard<'a> {
    word: &'a AtomicU64,
    slot: u32,
}

impl RouteGuard<'_> {
    /// The destination slot read atomically with the paused check.
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

impl Drop for RouteGuard<'_> {
    fn drop(&mut self) {
        self.word.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The wait-free tier-2 map of the data plane: one `AtomicU64` per shard
/// packing `slot | epoch | paused | in-flight count`, read by `submit`
/// paths with a single `fetch_add` and no lock.
///
/// This table is the *fast mirror* of a lock-protected [`RoutingTable`]:
/// the control plane (pause / finish / abort / set, all rare) updates
/// both under its own lock, while the data plane reads only the words.
/// "Slot" is deliberately not [`TaskId`]: callers map tasks to dense
/// reusable slot indices (a task registry), and the protocol below
/// guarantees a slot read under a guard stays valid for the guard's
/// lifetime.
///
/// Protocol (per shard word):
///
/// 1. **Route** (`begin_route`): `fetch_add(1)` on the word. If the
///    returned snapshot has the paused bit, undo and divert to the slow
///    path; otherwise the snapshot's slot is the owner, and the
///    incremented in-flight count pins it until the guard drops.
/// 2. **Pause** (`pause`): set the paused bit, then spin until the
///    in-flight count is zero. RMWs on one word are totally ordered, so
///    every route either saw the bit (diverted) or holds a count the
///    pause waits out — after `pause` returns, no fast-path delivery
///    based on the old owner is in flight, and the caller can enqueue
///    the labeling tuple *behind* all of them.
/// 3. **Finish/abort** (`finish`, `abort`): clear the paused and remote
///    bits (updating the slot on finish), bump the epoch, preserve the
///    in-flight bits (a diverted route may not have undone its
///    increment yet).
/// 4. **Remote hand-off** (`set_remote`): from the paused state, flip
///    the word to remote; fast-path routes then resolve to the caller's
///    remote egress ([`FastRoute::Remote`]) under the same guard
///    protocol, so taking the shard back is just another pause.
pub struct AtomicShardTable {
    words: Box<[AtomicU64]>,
}

impl AtomicShardTable {
    /// Creates a table of `num_shards` shards, all owned by
    /// `initial_slot`.
    pub fn new(num_shards: u32, initial_slot: u32) -> Self {
        let word = (u64::from(initial_slot)) << SLOT_SHIFT;
        Self {
            words: (0..num_shards).map(|_| AtomicU64::new(word)).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.words.len() as u32
    }

    /// Wait-free route of one tuple of `shard`: one atomic RMW, no lock,
    /// no retry loop.
    pub fn begin_route(&self, shard: ShardId) -> FastRoute<'_> {
        let word = &self.words[shard.index()];
        let prev = word.fetch_add(1, Ordering::SeqCst);
        debug_assert!(
            prev & INFLIGHT_MASK < INFLIGHT_MASK,
            "in-flight counter saturated: >1M concurrent route guards on one shard"
        );
        if prev & PAUSED_BIT != 0 {
            word.fetch_sub(1, Ordering::SeqCst);
            return FastRoute::Paused;
        }
        let guard = RouteGuard {
            word,
            slot: (prev >> SLOT_SHIFT) as u32,
        };
        if prev & REMOTE_BIT != 0 {
            return FastRoute::Remote(guard);
        }
        FastRoute::Deliver(guard)
    }

    /// Marks `shard` paused and waits until every in-flight fast-path
    /// route has completed. On return, all deliveries that read the
    /// pre-pause owner are enqueued, and new routes divert to the slow
    /// path until [`Self::finish`] or [`Self::abort`].
    ///
    /// Call with the control-plane lock held (pauses of one shard must
    /// not race each other); the wait is bounded by the longest
    /// guard-held window, which is one non-blocking enqueue.
    pub fn pause(&self, shard: ShardId) {
        let word = &self.words[shard.index()];
        let prev = word.fetch_or(PAUSED_BIT, Ordering::SeqCst);
        debug_assert!(prev & PAUSED_BIT == 0, "double pause of {shard}");
        let mut spins = 0u32;
        while word.load(Ordering::SeqCst) & INFLIGHT_MASK != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Completes a reassignment: points `shard` at `new_slot`, bumps the
    /// epoch, and resumes fast-path routing.
    pub fn finish(&self, shard: ShardId, new_slot: u32) {
        self.transition(shard, Some(new_slot));
    }

    /// Aborts a reassignment: resumes fast-path routing to the old slot.
    /// Also clears a remote mark, returning the shard fully local.
    pub fn abort(&self, shard: ShardId) {
        self.transition(shard, None);
    }

    /// Completes a transition to remote hosting: clears the paused bit
    /// (set by a preceding [`Self::pause`], whose in-flight drain has
    /// already run), sets the remote bit, and bumps the epoch. From here
    /// fast-path routes return [`FastRoute::Remote`] until a pause takes
    /// the shard back ([`Self::finish`]/[`Self::abort`] then clear the
    /// mark).
    pub fn set_remote(&self, shard: ShardId) {
        let word = &self.words[shard.index()];
        word.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| {
            debug_assert!(w & PAUSED_BIT != 0, "set_remote of unpaused {shard}");
            let epoch = ((w >> EPOCH_SHIFT) + 1) & EPOCH_MASK;
            Some(
                (w >> SLOT_SHIFT << SLOT_SHIFT)
                    | (epoch << EPOCH_SHIFT)
                    | REMOTE_BIT
                    | (w & INFLIGHT_MASK),
            )
        })
        .expect("fetch_update closure always returns Some");
    }

    /// Whether `shard` is marked remote (racy snapshot).
    pub fn is_remote(&self, shard: ShardId) -> bool {
        self.words[shard.index()].load(Ordering::SeqCst) & REMOTE_BIT != 0
    }

    fn transition(&self, shard: ShardId, new_slot: Option<u32>) {
        let word = &self.words[shard.index()];
        word.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| {
            debug_assert!(w & PAUSED_BIT != 0, "resume of unpaused {shard}");
            let slot = new_slot.map_or(w >> SLOT_SHIFT, u64::from);
            let epoch = ((w >> EPOCH_SHIFT) + 1) & EPOCH_MASK;
            // Preserve in-flight bits: a diverted route may still owe
            // its decrement.
            Some((slot << SLOT_SHIFT) | (epoch << EPOCH_SHIFT) | (w & INFLIGHT_MASK))
        })
        .expect("fetch_update closure always returns Some");
    }

    /// Directly retargets an unpaused shard (initial placement / bulk
    /// moves while quiesced). Mirrors [`RoutingTable::set_task`]; the
    /// caller must hold the control-plane lock.
    pub fn set_slot(&self, shard: ShardId, slot: u32) {
        let word = &self.words[shard.index()];
        word.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |w| {
            debug_assert!(w & PAUSED_BIT == 0, "set_slot on paused {shard}");
            let epoch = ((w >> EPOCH_SHIFT) + 1) & EPOCH_MASK;
            Some((u64::from(slot) << SLOT_SHIFT) | (epoch << EPOCH_SHIFT) | (w & INFLIGHT_MASK))
        })
        .expect("fetch_update closure always returns Some");
    }

    /// Current owner slot of `shard` (racy snapshot; diagnostics only).
    pub fn slot_of(&self, shard: ShardId) -> u32 {
        (self.words[shard.index()].load(Ordering::SeqCst) >> SLOT_SHIFT) as u32
    }

    /// Whether `shard` is currently paused (racy snapshot).
    pub fn is_paused(&self, shard: ShardId) -> bool {
        self.words[shard.index()].load(Ordering::SeqCst) & PAUSED_BIT != 0
    }

    /// Reassignment epoch of `shard` (wraps at 2^11; racy snapshot).
    pub fn epoch_of(&self, shard: ShardId) -> u64 {
        (self.words[shard.index()].load(Ordering::SeqCst) >> EPOCH_SHIFT) & EPOCH_MASK
    }
}

impl std::fmt::Debug for AtomicShardTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicShardTable")
            .field("num_shards", &self.num_shards())
            .finish()
    }
}

#[cfg(test)]
mod atomic_tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn routes_to_initial_slot() {
        let t = AtomicShardTable::new(4, 7);
        match t.begin_route(ShardId(2)) {
            FastRoute::Deliver(g) => assert_eq!(g.slot(), 7),
            _ => panic!("expected a local route"),
        }
        assert_eq!(t.slot_of(ShardId(2)), 7);
    }

    #[test]
    fn paused_shard_diverts() {
        let t = AtomicShardTable::new(4, 0);
        t.pause(ShardId(1));
        assert!(t.is_paused(ShardId(1)));
        assert!(matches!(t.begin_route(ShardId(1)), FastRoute::Paused));
        // Other shards unaffected.
        assert!(matches!(t.begin_route(ShardId(0)), FastRoute::Deliver(_)));
        t.finish(ShardId(1), 3);
        assert!(!t.is_paused(ShardId(1)));
        match t.begin_route(ShardId(1)) {
            FastRoute::Deliver(g) => assert_eq!(g.slot(), 3),
            _ => panic!("resumed"),
        };
    }

    #[test]
    fn abort_keeps_old_slot_and_bumps_epoch() {
        let t = AtomicShardTable::new(2, 5);
        let e0 = t.epoch_of(ShardId(0));
        t.pause(ShardId(0));
        t.abort(ShardId(0));
        assert_eq!(t.slot_of(ShardId(0)), 5);
        assert_eq!(t.epoch_of(ShardId(0)), e0 + 1);
    }

    #[test]
    fn pause_waits_for_inflight_guard() {
        let t = Arc::new(AtomicShardTable::new(1, 0));
        let paused = Arc::new(AtomicBool::new(false));
        let guard = match t.begin_route(ShardId(0)) {
            FastRoute::Deliver(g) => g,
            _ => panic!("live"),
        };
        let pauser = {
            let t = Arc::clone(&t);
            let paused = Arc::clone(&paused);
            std::thread::spawn(move || {
                t.pause(ShardId(0));
                paused.store(true, Ordering::SeqCst);
            })
        };
        // The pause must not complete while the guard is alive.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !paused.load(Ordering::SeqCst),
            "pause completed despite an in-flight route"
        );
        drop(guard);
        pauser.join().unwrap();
        assert!(paused.load(Ordering::SeqCst));
    }

    #[test]
    fn set_slot_retargets_directly() {
        let t = AtomicShardTable::new(3, 0);
        t.set_slot(ShardId(2), 9);
        assert_eq!(t.slot_of(ShardId(2)), 9);
    }

    #[test]
    fn remote_roundtrip_through_pause() {
        let t = AtomicShardTable::new(2, 4);
        // Local → remote: pause first (drains in-flight), then flip.
        t.pause(ShardId(0));
        t.set_remote(ShardId(0));
        assert!(t.is_remote(ShardId(0)));
        assert!(!t.is_paused(ShardId(0)));
        match t.begin_route(ShardId(0)) {
            FastRoute::Remote(g) => assert_eq!(g.slot(), 4, "stale slot rides along"),
            _ => panic!("expected a remote route"),
        }
        // Remote mid-adoption: paused dominates remote.
        t.pause(ShardId(0));
        assert!(matches!(t.begin_route(ShardId(0)), FastRoute::Paused));
        // Finishing locally clears the remote mark.
        t.finish(ShardId(0), 1);
        assert!(!t.is_remote(ShardId(0)));
        match t.begin_route(ShardId(0)) {
            FastRoute::Deliver(g) => assert_eq!(g.slot(), 1),
            _ => panic!("expected a local route"),
        };
    }

    #[test]
    fn pause_waits_for_inflight_remote_guard() {
        let t = Arc::new(AtomicShardTable::new(1, 0));
        t.pause(ShardId(0));
        t.set_remote(ShardId(0));
        let guard = match t.begin_route(ShardId(0)) {
            FastRoute::Remote(g) => g,
            _ => panic!("remote"),
        };
        let paused = Arc::new(AtomicBool::new(false));
        let pauser = {
            let t = Arc::clone(&t);
            let paused = Arc::clone(&paused);
            std::thread::spawn(move || {
                t.pause(ShardId(0));
                paused.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !paused.load(Ordering::SeqCst),
            "pause completed despite an in-flight remote forward"
        );
        drop(guard);
        pauser.join().unwrap();
    }

    #[test]
    fn concurrent_routes_and_pauses_converge() {
        // Hammer one shard with routers while another thread cycles
        // pause→finish; every route must either divert or deliver to a
        // slot that was current at its atomic read.
        let t = Arc::new(AtomicShardTable::new(1, 0));
        let stop = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let routers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                let progress = Arc::clone(&progress);
                std::thread::spawn(move || {
                    let mut delivered = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let FastRoute::Deliver(g) = t.begin_route(ShardId(0)) {
                            std::hint::black_box(g.slot());
                            delivered += 1;
                            progress.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    delivered
                })
            })
            .collect();
        for slot in 1..200u32 {
            t.pause(ShardId(0));
            t.finish(ShardId(0), slot);
        }
        // On a loaded single-core box the storm above can finish before
        // any router thread was ever scheduled; give them the CPU until
        // at least one delivery lands so the progress assertion below
        // tests the protocol, not the scheduler.
        while progress.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = routers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "routers made progress");
        assert_eq!(t.slot_of(ShardId(0)), 199);
        // All guards dropped: in-flight bits are zero again.
        t.pause(ShardId(0));
        t.finish(ShardId(0), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable<u64> {
        RoutingTable::from_assignment(vec![TaskId(0), TaskId(0), TaskId(1), TaskId(1)])
    }

    #[test]
    fn routes_by_two_tiers() {
        let mut rt = table();
        let key = Key(7);
        let shard = rt.shard_for(key);
        let expect = rt.task_of(shard).unwrap();
        assert_eq!(rt.route(key, 1), RouteDecision::Deliver(expect, 1));
    }

    #[test]
    fn pause_buffers_then_flushes_in_order() {
        let mut rt = table();
        // Find a key landing on shard 2.
        let key = (0..)
            .map(Key)
            .find(|&k| rt.shard_for(k) == ShardId(2))
            .unwrap();
        rt.pause(ShardId(2)).unwrap();
        assert!(rt.is_paused(ShardId(2)));
        assert_eq!(rt.route(key, 10), RouteDecision::Buffered(ShardId(2)));
        assert_eq!(rt.route(key, 11), RouteDecision::Buffered(ShardId(2)));
        assert_eq!(rt.buffered_tuples(), 2);
        let buf = rt.finish_reassignment(ShardId(2), TaskId(0)).unwrap();
        assert_eq!(buf, vec![10, 11]);
        assert_eq!(rt.task_of(ShardId(2)).unwrap(), TaskId(0));
        assert!(!rt.is_paused(ShardId(2)));
        // Routing resumes to the new task.
        assert_eq!(rt.route(key, 12), RouteDecision::Deliver(TaskId(0), 12));
    }

    #[test]
    fn unpaused_shards_unaffected_by_pause() {
        let mut rt = table();
        rt.pause(ShardId(2)).unwrap();
        let key = (0..)
            .map(Key)
            .find(|&k| rt.shard_for(k) == ShardId(0))
            .unwrap();
        assert_eq!(rt.route(key, 5), RouteDecision::Deliver(TaskId(0), 5));
    }

    #[test]
    fn double_pause_rejected() {
        let mut rt = table();
        rt.pause(ShardId(1)).unwrap();
        assert_eq!(
            rt.pause(ShardId(1)),
            Err(Error::ReassignmentInProgress(ShardId(1)))
        );
    }

    #[test]
    fn abort_restores_old_task() {
        let mut rt = table();
        let key = (0..)
            .map(Key)
            .find(|&k| rt.shard_for(k) == ShardId(3))
            .unwrap();
        rt.pause(ShardId(3)).unwrap();
        rt.route(key, 99);
        let buf = rt.abort_reassignment(ShardId(3)).unwrap();
        assert_eq!(buf, vec![99]);
        assert_eq!(
            rt.task_of(ShardId(3)).unwrap(),
            TaskId(1),
            "mapping unchanged"
        );
    }

    #[test]
    fn finish_without_pause_is_error() {
        let mut rt = table();
        assert!(rt.finish_reassignment(ShardId(0), TaskId(1)).is_err());
    }

    #[test]
    fn set_task_blocked_while_paused() {
        let mut rt = table();
        rt.pause(ShardId(0)).unwrap();
        assert_eq!(
            rt.set_task(ShardId(0), TaskId(1)),
            Err(Error::ReassignmentInProgress(ShardId(0)))
        );
    }

    #[test]
    fn version_bumps_on_changes() {
        let mut rt = table();
        let v0 = rt.version();
        rt.set_task(ShardId(0), TaskId(1)).unwrap();
        assert!(rt.version() > v0);
        rt.pause(ShardId(1)).unwrap();
        let v1 = rt.version();
        rt.finish_reassignment(ShardId(1), TaskId(0)).unwrap();
        assert!(rt.version() > v1);
    }

    #[test]
    fn shards_of_and_tasks() {
        let rt = table();
        assert_eq!(rt.shards_of(TaskId(0)), vec![ShardId(0), ShardId(1)]);
        assert_eq!(rt.shards_of(TaskId(1)), vec![ShardId(2), ShardId(3)]);
        assert_eq!(rt.tasks(), vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn out_of_range_shard_errors() {
        let mut rt = table();
        assert!(rt.task_of(ShardId(99)).is_err());
        assert!(rt.pause(ShardId(99)).is_err());
        assert!(rt.set_task(ShardId(99), TaskId(0)).is_err());
    }

    #[test]
    fn uniform_table_constructor() {
        let rt: RoutingTable<()> = RoutingTable::new(256, TaskId(0));
        assert_eq!(rt.num_shards(), 256);
        assert_eq!(rt.tasks(), vec![TaskId(0)]);
    }
}
