//! Data-plane tuple metadata.
//!
//! A [`Tuple`] carries the information both engines need to route, cost,
//! and account for a stream element:
//!
//! * the **key**, which determines placement (executor → shard → task) and
//!   which state entry the operator reads/updates;
//! * the **payload size** in bytes, which determines network transfer cost
//!   (the simulator never materializes payload bytes; the live runtime
//!   attaches real `bytes::Bytes` in its own record type);
//! * the **CPU cost** in nanoseconds, the service demand of processing the
//!   tuple on one core (the paper's micro-benchmark sweeps this from
//!   0.01 ms to 10 ms);
//! * **timestamps** for latency accounting: `created_at_ns` is the event
//!   (source emission) time against which processing latency is measured;
//! * a **sequence number**, unique per (source, key), used by tests and
//!   debug assertions to verify the per-key ordering invariant.

use crate::ids::Key;

/// Metadata for one stream element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tuple {
    /// Partitioning key.
    pub key: Key,
    /// Serialized payload size in bytes (excluding the key itself).
    pub payload_bytes: u32,
    /// CPU service demand, in nanoseconds, of processing this tuple.
    pub cpu_cost_ns: u64,
    /// Source emission time in nanoseconds (simulated or wall-clock epoch).
    pub created_at_ns: u64,
    /// Per-key sequence number assigned by the source; strictly increasing
    /// per key. Used to assert the in-order processing requirement.
    pub seq: u64,
}

impl Tuple {
    /// Creates a tuple with the given key and cost parameters.
    pub fn new(key: Key, payload_bytes: u32, cpu_cost_ns: u64, created_at_ns: u64) -> Self {
        Self {
            key,
            payload_bytes,
            cpu_cost_ns,
            created_at_ns,
            seq: 0,
        }
    }

    /// Sets the per-key sequence number (builder style).
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Total bytes this tuple occupies on the wire: payload plus a fixed
    /// per-tuple framing overhead (key, timestamps, length prefix).
    ///
    /// The paper's micro-benchmark speaks of "an integer key and a 128-byte
    /// payload"; we charge the same constant framing to every tuple so that
    /// relative comparisons across tuple sizes match.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        u64::from(self.payload_bytes) + Self::FRAMING_BYTES
    }

    /// Fixed per-tuple framing overhead in bytes.
    pub const FRAMING_BYTES: u64 = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tuple::new(Key(9), 128, 1_000_000, 5).with_seq(3);
        assert_eq!(t.key, Key(9));
        assert_eq!(t.payload_bytes, 128);
        assert_eq!(t.cpu_cost_ns, 1_000_000);
        assert_eq!(t.created_at_ns, 5);
        assert_eq!(t.seq, 3);
    }

    #[test]
    fn wire_bytes_includes_framing() {
        let t = Tuple::new(Key(0), 128, 0, 0);
        assert_eq!(t.wire_bytes(), 128 + Tuple::FRAMING_BYTES);
        let empty = Tuple::new(Key(0), 0, 0, 0);
        assert_eq!(empty.wire_bytes(), Tuple::FRAMING_BYTES);
    }
}
