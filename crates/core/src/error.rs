//! Shared error type for the Elasticutor crates.

use std::fmt;

use crate::ids::{ExecutorId, OperatorId, ShardId, TaskId};

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the core framework and its consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A topology failed validation (cycle, dangling edge, zero
    /// parallelism, ...).
    InvalidTopology(String),
    /// An operator id does not exist in the topology.
    UnknownOperator(OperatorId),
    /// An executor id is out of range for its operator.
    UnknownExecutor(OperatorId, ExecutorId),
    /// A shard id is out of range for its executor.
    UnknownShard(ShardId),
    /// A task id does not (or no longer) exist in the executor.
    UnknownTask(TaskId),
    /// A shard reassignment was requested while another reassignment of the
    /// same shard is still in flight.
    ReassignmentInProgress(ShardId),
    /// A shard reassignment targeted the task that already owns the shard.
    ReassignmentNoop(ShardId, TaskId),
    /// A reassignment label was consumed twice (or never minted): the
    /// exactly-once completion invariant of the §3.3 protocol tripped.
    UnknownLabel(u64),
    /// The scheduler could not find a feasible CPU-to-executor assignment
    /// (Algorithm 1 returned FAIL at the maximum locality threshold).
    Infeasible(String),
    /// The requested resources exceed cluster capacity.
    CapacityExceeded {
        /// Cores requested by the allocation.
        requested: usize,
        /// Cores available in the cluster.
        available: usize,
    },
    /// An executor cannot drop below one task.
    LastTask(TaskId),
    /// The shard is not hosted by this process (it was migrated to, or
    /// has always lived on, a remote peer), so a local operation that
    /// needs its state or routing ownership cannot proceed.
    ShardNotLocal(ShardId),
    /// The shard already has live state here, so an operation that
    /// would discard or overwrite it (adopting a migrated copy, marking
    /// it remote) is refused — two processes must never both own a
    /// shard's state.
    ShardStateConflict(ShardId),
    /// Configuration value out of range.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            Error::UnknownOperator(op) => write!(f, "unknown operator {op}"),
            Error::UnknownExecutor(op, ex) => write!(f, "unknown executor {ex} of {op}"),
            Error::UnknownShard(s) => write!(f, "unknown shard {s}"),
            Error::UnknownTask(t) => write!(f, "unknown task {t}"),
            Error::ReassignmentInProgress(s) => {
                write!(f, "shard {s} already has a reassignment in flight")
            }
            Error::ReassignmentNoop(s, t) => {
                write!(f, "shard {s} is already assigned to task {t}")
            }
            Error::UnknownLabel(l) => {
                write!(f, "reassignment label {l} is unknown or already consumed")
            }
            Error::Infeasible(msg) => write!(f, "no feasible assignment: {msg}"),
            Error::CapacityExceeded {
                requested,
                available,
            } => write!(
                f,
                "allocation requests {requested} cores but only {available} are available"
            ),
            Error::LastTask(t) => write!(f, "cannot remove {t}: executors need at least one task"),
            Error::ShardNotLocal(s) => {
                write!(f, "shard {s} is not hosted by this process")
            }
            Error::ShardStateConflict(s) => {
                write!(f, "shard {s} has live local state; refusing to discard it")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::CapacityExceeded {
            requested: 300,
            available: 256,
        };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("256"));
        let e = Error::ReassignmentInProgress(ShardId(4));
        assert!(e.to_string().contains("sh4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::UnknownTask(TaskId(1)));
    }
}
