//! The versioned wire format shared by every cross-process protocol.
//!
//! Cross-process shard migration (paper §3.2/§3.3: only the displaced
//! shards' state crosses the network, so migration latency is state size
//! over link bandwidth) needs a real serialization layer. This module is
//! the substrate-agnostic part: **length-prefixed frames** with a
//! version byte, plus the little-endian primitive encoding helpers and
//! the stable checksum the payload formats build on. The message *types*
//! (OFFER/ACCEPT/STATE/COMMIT/…) belong to the transport in
//! `elasticutor-runtime`; the snapshot payload format lives next to
//! `ShardSnapshot` in `elasticutor-state`.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +---------+----------+------------+----------------+
//! | version | msg type | len (u32)  | payload (len B)|
//! |  1 byte |  1 byte  |  4 bytes   |                |
//! +---------+----------+------------+----------------+
//! ```
//!
//! Every decoding path returns a typed [`WireError`] — malformed,
//! truncated, oversized, or wrong-version input must never panic, because
//! it arrives from another process over a socket.

use std::fmt;
use std::io::{Read, Write};

/// Current frame-format version, the first byte of every frame.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a single frame's payload (64 MiB). A length prefix
/// beyond this is rejected before any allocation, so a corrupt or
/// malicious header cannot make the receiver reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Bytes of framing overhead per frame (version + type + length prefix).
pub const FRAME_HEADER_LEN: u64 = 6;

/// Errors raised while encoding or decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The version byte does not match [`WIRE_VERSION`] (or a payload
    /// format's own version field is unknown).
    BadVersion(u8),
    /// The input ended before the announced structure was complete.
    Truncated,
    /// A length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u64),
    /// The input parsed structurally but failed a semantic check
    /// (checksum mismatch, trailing garbage, impossible count, …).
    Corrupt(&'static str),
    /// An I/O error from the underlying stream.
    Io(std::io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "input truncated mid-structure"),
            WireError::Oversized(n) => {
                write!(
                    f,
                    "length prefix {n} exceeds the {MAX_FRAME_LEN}-byte frame cap"
                )
            }
            WireError::Corrupt(what) => write!(f, "corrupt wire data: {what}"),
            WireError::Io(kind) => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

/// Writes one frame (header + payload) to `w`.
pub fn write_frame(w: &mut impl Write, msg_type: u8, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(WireError::Oversized(payload.len() as u64));
    }
    let mut header = [0u8; FRAME_HEADER_LEN as usize];
    header[0] = WIRE_VERSION;
    header[1] = msg_type;
    header[2..6].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame from `r`, returning `(msg_type, payload)`.
///
/// A clean EOF (or any short read) surfaces as
/// `WireError::Io(UnexpectedEof)` — for a migration link that is the
/// peer-disconnected signal.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN as usize];
    r.read_exact(&mut header)?;
    if header[0] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[0]));
    }
    let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(u64::from(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((header[1], payload))
}

/// Total bytes a frame with `payload_len` payload bytes occupies on the
/// wire (header included) — what migration reports charge against link
/// bandwidth.
pub fn frame_wire_bytes(payload_len: usize) -> u64 {
    FRAME_HEADER_LEN + payload_len as u64
}

// ---------------------------------------------------------------------------
// Primitive payload encoding.
// ---------------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A bounds-checked sequential reader over a payload slice. Every
/// accessor returns [`WireError::Truncated`] instead of panicking when
/// the input runs short.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u32`-length-prefixed byte string (the inverse of
    /// [`put_bytes`]). The length is sanity-capped by the remaining
    /// input, so a corrupt prefix cannot trigger a huge allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

// ---------------------------------------------------------------------------
// Checksums.
// ---------------------------------------------------------------------------

/// Incremental FNV-1a 64-bit checksum.
///
/// Not cryptographic — it guards against truncation, reordering, and
/// stray corruption of migrated state, matching the stability goals of
/// [`crate::hash`] (identical on every platform and Rust version).
#[derive(Clone, Debug)]
pub struct Checksum {
    state: u64,
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh checksum.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET,
        }
    }

    /// Folds `bytes` into the checksum.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a little-endian `u64` into the checksum.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current checksum value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut c = Checksum::new();
    c.write(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Checked frames — the WAL framing discipline.
// ---------------------------------------------------------------------------

/// Appends one **checked frame** to `out`: the frame payload is `body`
/// plus a trailing FNV-64 over `msg_type || body`, so a bit flip
/// anywhere in the stored frame — including its type byte — fails
/// validation on read.
///
/// This is the per-entry discipline shared by the state WAL, the
/// migration recovery journal, and the egress spill outbox: appenders
/// write whole checked frames, readers tolerate damage only as a torn
/// physical tail and surface mid-stream damage as a typed error.
pub fn put_checked_frame(out: &mut Vec<u8>, msg_type: u8, mut body: Vec<u8>) {
    let mut c = Checksum::new();
    c.write(&[msg_type]);
    c.write(&body);
    put_u64(&mut body, c.finish());
    write_frame(out, msg_type, &body).expect("checked frame within cap");
}

/// Splits a checked frame's payload into body + trailing checksum and
/// validates it against `msg_type || body`. The error distinguishes a
/// structurally short payload ([`WireError::Truncated`]) from a stored
/// checksum mismatch ([`WireError::Corrupt`]); callers decide whether
/// either is a tolerable torn tail or hard corruption.
pub fn checked_frame_body(msg_type: u8, payload: &[u8]) -> Result<&[u8], WireError> {
    if payload.len() < 8 {
        return Err(WireError::Truncated);
    }
    let (body, tail) = payload.split_at(payload.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    let mut c = Checksum::new();
    c.write(&[msg_type]);
    c.write(body);
    if c.finish() != stored {
        return Err(WireError::Corrupt("checked frame checksum mismatch"));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello frame").unwrap();
        let mut cursor = &buf[..];
        let (t, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(t, 7);
        assert_eq!(payload, b"hello frame");
        assert!(cursor.is_empty());
        assert_eq!(buf.len() as u64, frame_wire_bytes(11));
    }

    #[test]
    fn empty_payload_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, &[]).unwrap();
        let (t, payload) = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(t, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"x").unwrap();
        buf[0] = 99;
        assert_eq!(read_frame(&mut &buf[..]), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"x").unwrap();
        buf[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]),
            Err(WireError::Oversized(u64::from(u32::MAX)))
        );
    }

    #[test]
    fn truncated_frame_is_io_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        assert_eq!(
            read_frame(&mut &buf[..]),
            Err(WireError::Io(std::io::ErrorKind::UnexpectedEof))
        );
        // Header alone cut short, too.
        assert_eq!(
            read_frame(&mut &buf[..3]),
            Err(WireError::Io(std::io::ErrorKind::UnexpectedEof))
        );
    }

    #[test]
    fn byte_reader_roundtrip_and_truncation() {
        let mut out = Vec::new();
        put_u8(&mut out, 9);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_bytes(&mut out, b"payload");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert!(r.is_empty());
        assert_eq!(r.u8(), Err(WireError::Truncated));

        // A length prefix running past the end must error, not panic.
        let mut r = ByteReader::new(&out[..out.len() - 3]);
        r.u8().unwrap();
        r.u32().unwrap();
        r.u64().unwrap();
        assert_eq!(r.bytes(), Err(WireError::Truncated));
    }

    #[test]
    fn checked_frame_roundtrip_and_flip_sweep() {
        let mut buf = Vec::new();
        put_checked_frame(&mut buf, 9, b"checked payload".to_vec());
        let (t, payload) = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(t, 9);
        assert_eq!(checked_frame_body(9, &payload).unwrap(), b"checked payload");
        // The checksum covers the type byte.
        assert!(matches!(
            checked_frame_body(8, &payload),
            Err(WireError::Corrupt(_))
        ));
        // Any single-bit flip in the payload must be caught.
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 1;
            assert!(checked_frame_body(9, &bad).is_err(), "flip at byte {i}");
        }
        // A payload too short to even hold the checksum is truncated.
        assert_eq!(checked_frame_body(9, b"short"), Err(WireError::Truncated));
    }

    #[test]
    fn checksum_is_stable_and_incremental() {
        // Pinned value: changing the checksum silently would break
        // cross-version migration.
        assert_eq!(checksum(b""), 0xCBF2_9CE4_8422_2325);
        let mut inc = Checksum::new();
        inc.write(b"abc");
        inc.write(b"def");
        assert_eq!(inc.finish(), checksum(b"abcdef"));
        let mut a = Checksum::new();
        a.write_u64(42);
        assert_eq!(a.finish(), checksum(&42u64.to_le_bytes()));
        assert_ne!(checksum(b"abcdef"), checksum(b"abcdfe"));
    }
}
