//! Stable 64-bit hashing for the two routing tiers.
//!
//! Both tiers of Elasticutor's routing scheme hash tuple keys:
//!
//! 1. **Operator-level (static)**: `executor = h1(key) mod y` picks the
//!    executor owning the key's subspace.
//! 2. **Executor-level (static)**: `shard = h2(key) mod z` picks the shard
//!    within the executor; the shard→task map is the dynamic part.
//!
//! The two tiers must use *independent* hash functions; otherwise every
//! executor would see a biased subset of shard indices (keys mapped to
//! executor `e` by `h mod y` share residues of `h`, and reusing the same
//! `h` for `mod z` would correlate the tiers). We derive independence by
//! seeding a `splitmix64`-based finalizer with distinct fixed seeds.
//!
//! The hashes are deliberately *not* `std::hash`-based: they must be stable
//! across processes, platforms, and Rust versions so that simulated and
//! live engines agree on key placement and experiments are reproducible.

/// Fixed seed for the operator-level tier (key → executor).
pub const OPERATOR_TIER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fixed seed for the executor-level tier (key → shard).
pub const EXECUTOR_TIER_SEED: u64 = 0xD1B5_4A32_D192_ED03;

/// `splitmix64` finalizer: a fast, well-mixed 64→64-bit permutation.
///
/// This is the mixing function of the SplitMix64 generator (Steele et al.),
/// commonly used as a hash finalizer. It is a bijection, so it introduces
/// no collisions of its own.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a key under a seed. Distinct seeds give (empirically)
/// independent hash functions.
#[inline]
pub fn hash_with_seed(key: u64, seed: u64) -> u64 {
    splitmix64(key ^ splitmix64(seed))
}

/// Tier-1 hash: maps a key to an executor index in `0..parallelism`.
#[inline]
pub fn key_to_executor(key: u64, parallelism: u32) -> u32 {
    debug_assert!(parallelism > 0, "operator parallelism must be positive");
    (hash_with_seed(key, OPERATOR_TIER_SEED) % u64::from(parallelism)) as u32
}

/// Tier-2 hash: maps a key to a shard index in `0..num_shards`.
#[inline]
pub fn key_to_shard(key: u64, num_shards: u32) -> u32 {
    debug_assert!(num_shards > 0, "shard count must be positive");
    (hash_with_seed(key, EXECUTOR_TIER_SEED) % u64::from(num_shards)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn known_vector_stability() {
        // Pin concrete values so accidental changes to the hash function
        // (which would silently re-place every key) fail loudly.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn tiers_are_decorrelated() {
        // Keys that collide in tier 1 should spread over tier-2 shards.
        let parallelism = 8;
        let shards = 16;
        let mut shard_seen = vec![false; shards as usize];
        let mut count = 0;
        for key in 0..100_000u64 {
            if key_to_executor(key, parallelism) == 3 {
                shard_seen[key_to_shard(key, shards) as usize] = true;
                count += 1;
            }
        }
        assert!(count > 1000, "tier-1 bucket unexpectedly small");
        assert!(
            shard_seen.iter().all(|&s| s),
            "keys of one executor must cover all shards"
        );
    }

    #[test]
    fn executor_distribution_is_roughly_uniform() {
        let parallelism = 32u32;
        let n = 320_000u64;
        let mut counts = vec![0u64; parallelism as usize];
        for key in 0..n {
            counts[key_to_executor(key, parallelism) as usize] += 1;
        }
        let expected = n / u64::from(parallelism);
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "executor {i} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn shard_distribution_is_roughly_uniform() {
        let shards = 256u32;
        let n = 2_560_000u64;
        let mut counts = vec![0u64; shards as usize];
        for key in 0..n {
            counts[key_to_shard(key, shards) as usize] += 1;
        }
        let expected = n / u64::from(shards);
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.15, "shard {i} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn single_bucket_maps_everything_to_zero() {
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(key_to_executor(key, 1), 0);
            assert_eq!(key_to_shard(key, 1), 0);
        }
    }
}
