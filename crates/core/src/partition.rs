//! Operator-level key partitioning.
//!
//! The three execution paradigms of paper §2.2 differ in how an operator's
//! key space is split across executors:
//!
//! * **Static** and **executor-centric** paradigms use a *static* hash
//!   partition ([`StaticHashPartition`]): `executor = h1(key) mod y`,
//!   fixed for the topology's lifetime. Upstream routing tables never
//!   change, which is precisely what gives Elasticutor inter-operator
//!   independence.
//! * The **resource-centric** baseline uses a *dynamic* partition
//!   ([`DynamicPartition`]): the operator's key space is split into
//!   `y × z` operator-global shards (`shard = h2(key) mod (y*z)`), and a
//!   mutable shard→executor map is replicated into every upstream
//!   executor's routing table. Repartitioning rewrites this map — and
//!   therefore requires the expensive global synchronization protocol.

use crate::hash;
use crate::ids::{ExecutorId, Key, ShardId};

/// Static operator-level partition: key → executor by hash.
///
/// This is tier 1 of Elasticutor's two-tier scheme and the (only) routing
/// rule of the static paradigm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticHashPartition {
    parallelism: u32,
}

impl StaticHashPartition {
    /// Creates a partition over `parallelism` executors.
    pub fn new(parallelism: u32) -> Self {
        assert!(parallelism > 0, "parallelism must be positive");
        Self { parallelism }
    }

    /// Number of executors.
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// The executor owning `key`'s subspace.
    #[inline]
    pub fn executor_for(&self, key: Key) -> ExecutorId {
        ExecutorId(hash::key_to_executor(key.value(), self.parallelism))
    }
}

/// Dynamic shard-granular partition used by the resource-centric baseline.
///
/// Keys hash statically onto `num_shards` operator-global shards; the
/// shard→executor assignment is explicit and mutable. A repartitioning
/// replaces assignments and reports which shards moved (each move entails
/// state migration and a routing-table update at *every* upstream
/// executor).
#[derive(Clone, Debug)]
pub struct DynamicPartition {
    assignment: Vec<ExecutorId>,
    num_executors: u32,
    version: u64,
}

impl DynamicPartition {
    /// Creates a partition of `num_shards` shards spread round-robin over
    /// `num_executors` executors (the initial balanced layout).
    pub fn new(num_shards: u32, num_executors: u32) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        assert!(num_executors > 0, "num_executors must be positive");
        let assignment = (0..num_shards)
            .map(|s| ExecutorId(s % num_executors))
            .collect();
        Self {
            assignment,
            num_executors,
            version: 0,
        }
    }

    /// Number of operator-global shards.
    pub fn num_shards(&self) -> u32 {
        self.assignment.len() as u32
    }

    /// Number of executors the partition spreads over.
    pub fn num_executors(&self) -> u32 {
        self.num_executors
    }

    /// Monotonic version, bumped on every repartitioning. Upstream routing
    /// tables carry the version they last installed; the engine uses the
    /// mismatch to know which upstream executors still need updates.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The operator-global shard for `key`.
    #[inline]
    pub fn shard_for(&self, key: Key) -> ShardId {
        ShardId(hash::key_to_shard(key.value(), self.num_shards()))
    }

    /// The executor currently owning `shard`.
    #[inline]
    pub fn executor_of(&self, shard: ShardId) -> ExecutorId {
        self.assignment[shard.index()]
    }

    /// The executor currently owning `key`.
    #[inline]
    pub fn executor_for(&self, key: Key) -> ExecutorId {
        self.executor_of(self.shard_for(key))
    }

    /// Shards currently owned by `executor`.
    pub fn shards_of(&self, executor: ExecutorId) -> Vec<ShardId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &e)| e == executor)
            .map(|(s, _)| ShardId::from_index(s))
            .collect()
    }

    /// Applies a repartitioning: `new_assignment[shard] = executor`. Returns
    /// the list of `(shard, from, to)` moves. Panics if the new assignment
    /// has the wrong length or references an out-of-range executor.
    pub fn repartition(
        &mut self,
        new_assignment: &[ExecutorId],
    ) -> Vec<(ShardId, ExecutorId, ExecutorId)> {
        assert_eq!(
            new_assignment.len(),
            self.assignment.len(),
            "repartition must cover every shard"
        );
        let mut moves = Vec::new();
        for (s, (&old, &new)) in self.assignment.iter().zip(new_assignment).enumerate() {
            assert!(
                new.0 < self.num_executors,
                "executor {new} out of range (num_executors = {})",
                self.num_executors
            );
            if old != new {
                moves.push((ShardId::from_index(s), old, new));
            }
        }
        if !moves.is_empty() {
            self.assignment.copy_from_slice(new_assignment);
            self.version += 1;
        }
        moves
    }

    /// Grows or shrinks the executor set (RC operator scaling). Newly added
    /// executors start with no shards; removed executors must first have
    /// their shards reassigned via [`Self::repartition`], otherwise this
    /// panics.
    pub fn resize_executors(&mut self, num_executors: u32) {
        assert!(num_executors > 0, "num_executors must be positive");
        if num_executors < self.num_executors {
            let orphaned = self.assignment.iter().any(|e| e.0 >= num_executors);
            assert!(
                !orphaned,
                "cannot shrink: shards still assigned to removed executors"
            );
        }
        self.num_executors = num_executors;
    }

    /// A snapshot of the full assignment (for planning a repartition).
    pub fn assignment(&self) -> &[ExecutorId] {
        &self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_is_stable_and_in_range() {
        let p = StaticHashPartition::new(32);
        for k in 0..10_000u64 {
            let e = p.executor_for(Key(k));
            assert!(e.0 < 32);
            assert_eq!(e, p.executor_for(Key(k)), "stability");
        }
    }

    #[test]
    fn dynamic_initial_round_robin() {
        let p = DynamicPartition::new(8, 4);
        assert_eq!(p.executor_of(ShardId(0)), ExecutorId(0));
        assert_eq!(p.executor_of(ShardId(5)), ExecutorId(1));
        assert_eq!(p.shards_of(ExecutorId(2)), vec![ShardId(2), ShardId(6)]);
        assert_eq!(p.version(), 0);
    }

    #[test]
    fn repartition_reports_only_moves() {
        let mut p = DynamicPartition::new(4, 2);
        // old: [0,1,0,1] → new: [0,0,1,1]: shards 1 and 2 move.
        let new = vec![ExecutorId(0), ExecutorId(0), ExecutorId(1), ExecutorId(1)];
        let moves = p.repartition(&new);
        assert_eq!(
            moves,
            vec![
                (ShardId(1), ExecutorId(1), ExecutorId(0)),
                (ShardId(2), ExecutorId(0), ExecutorId(1)),
            ]
        );
        assert_eq!(p.version(), 1);
        // Idempotent repartition does not bump the version.
        let moves = p.repartition(&new);
        assert!(moves.is_empty());
        assert_eq!(p.version(), 1);
    }

    #[test]
    fn key_routing_follows_repartition() {
        let mut p = DynamicPartition::new(16, 2);
        let key = Key(1234);
        let shard = p.shard_for(key);
        let before = p.executor_for(key);
        let mut new = p.assignment().to_vec();
        let target = ExecutorId(1 - before.0);
        new[shard.index()] = target;
        p.repartition(&new);
        assert_eq!(p.executor_for(key), target);
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut p = DynamicPartition::new(4, 4);
        p.resize_executors(6);
        assert_eq!(p.num_executors(), 6);
        // Move everything off executors 4,5 (they own nothing yet) and
        // off 2,3 so we can shrink to 2.
        let new = vec![ExecutorId(0), ExecutorId(1), ExecutorId(0), ExecutorId(1)];
        p.repartition(&new);
        p.resize_executors(2);
        assert_eq!(p.num_executors(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrink_with_orphans_panics() {
        let mut p = DynamicPartition::new(4, 4);
        p.resize_executors(2);
    }

    #[test]
    #[should_panic(expected = "must cover every shard")]
    fn repartition_wrong_len_panics() {
        let mut p = DynamicPartition::new(4, 2);
        p.repartition(&[ExecutorId(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn repartition_oob_executor_panics() {
        let mut p = DynamicPartition::new(2, 2);
        p.repartition(&[ExecutorId(0), ExecutorId(7)]);
    }

    #[test]
    fn shard_distribution_counts() {
        let p = DynamicPartition::new(8192, 32);
        // Round-robin: every executor owns exactly 256 shards.
        for e in 0..32 {
            assert_eq!(p.shards_of(ExecutorId(e)).len(), 256);
        }
    }
}
