//! Strongly-typed identifiers used across the framework.
//!
//! All identifiers are thin newtypes over small unsigned integers. Using
//! distinct types prevents an entire class of mix-ups (e.g. passing a task
//! index where a shard index is expected) that plain `usize` indices invite,
//! at zero runtime cost.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs the identifier from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(i as $inner)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                Self::from_index(i)
            }
        }
    };
}

id_type!(
    /// An operator (vertex) in the topology graph.
    OperatorId,
    u32,
    "op"
);

id_type!(
    /// An executor: a parallel instance of an operator bound to a fixed key
    /// subspace. Executor ids are scoped to their operator (0..parallelism).
    ExecutorId,
    u32,
    "ex"
);

id_type!(
    /// A shard: a mini-partition of an executor's key subspace. Shard ids
    /// are scoped to their executor (0..shards_per_executor), except in the
    /// resource-centric baseline where they are operator-global.
    ShardId,
    u32,
    "sh"
);

id_type!(
    /// A task: a data-processing thread of an elastic executor, one per
    /// allocated CPU core. Task ids are scoped to their executor and are
    /// never reused within an executor's lifetime.
    TaskId,
    u32,
    "t"
);

id_type!(
    /// A physical machine in the cluster.
    NodeId,
    u32,
    "n"
);

id_type!(
    /// A CPU core, identified cluster-wide.
    CoreId,
    u32,
    "c"
);

id_type!(
    /// A worker process. Each elastic executor has a main process on its
    /// local node and at most one remote process per other node.
    ProcessId,
    u32,
    "p"
);

/// A tuple key. Keys identify state entries; all tuples sharing a key must
/// be processed in arrival order (the stateful-ordering requirement of
/// paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl Key {
    /// Returns the raw key value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// A cluster-wide address of an executor: operator plus executor index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExecutorAddr {
    /// The operator this executor belongs to.
    pub operator: OperatorId,
    /// The executor index within the operator (0..parallelism).
    pub executor: ExecutorId,
}

impl ExecutorAddr {
    /// Creates an executor address.
    pub fn new(operator: OperatorId, executor: ExecutorId) -> Self {
        Self { operator, executor }
    }
}

impl fmt::Display for ExecutorAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.operator, self.executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let t = TaskId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t, TaskId(7));
        assert_eq!(format!("{t}"), "t7");
        assert_eq!(format!("{t:?}"), "t7");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ShardId(1) < ShardId(2));
        assert!(NodeId(0) < NodeId(10));
    }

    #[test]
    fn key_display() {
        let k = Key(42);
        assert_eq!(k.value(), 42);
        assert_eq!(format!("{k}"), "k42");
    }

    #[test]
    fn executor_addr_display_and_eq() {
        let a = ExecutorAddr::new(OperatorId(1), ExecutorId(3));
        let b = ExecutorAddr::new(OperatorId(1), ExecutorId(3));
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "op1/ex3");
    }

    #[test]
    fn from_usize_conversions() {
        let op: OperatorId = 5usize.into();
        assert_eq!(op, OperatorId(5));
        let k: Key = 99u64.into();
        assert_eq!(k, Key(99));
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(ExecutorId::default(), ExecutorId(0));
        assert_eq!(Key::default(), Key(0));
    }
}
