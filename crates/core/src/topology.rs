//! The topology model: a directed acyclic graph of operators.
//!
//! A user application is a DAG whose vertices are operators with
//! user-defined logic and whose edges carry streams of tuples (paper §2.1).
//! Each operator declares a parallelism (`y` executors) and a shard count
//! (`z` shards per executor). Sources (the paper's *spouts*) have no
//! inbound edges; transforms (the paper's *bolts*) have at least one.

use std::collections::VecDeque;

use crate::error::{Error, Result};
use crate::ids::OperatorId;

/// How tuples on an edge are distributed across the consumer's shard
/// space (and, through it, the consumer's executors and tasks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Grouping {
    /// Hash by key: all tuples of a key go to the shard (and hence
    /// executor) owning its key subspace. This is the grouping stateful
    /// operators require — it is what keeps one key's state in one
    /// place.
    Key,
    /// Round-robin over the consumer's shards, ignoring keys; only valid
    /// into stateless operators (no key affinity). A topology may not
    /// mix `Shuffle` with [`Grouping::Key`] into the same operator: the
    /// keyed edge implies keyed state, which the shuffled records would
    /// scatter across shards.
    Shuffle,
    /// Every tuple is replicated to *every* shard of the consumer — the
    /// classic broadcast/"all" grouping used for control records,
    /// configuration updates, and small dimension tables that each key
    /// partition must see. Volume multiplies by the consumer's shard
    /// count, so broadcast edges are for low-rate streams.
    Broadcast,
}

/// Identifies an edge by its position in [`Topology::edges`]. Edge ids
/// are dense and stable for the lifetime of the topology; the live
/// runtime keys its per-edge channels, budgets, and quiescence counters
/// by them.
pub type EdgeId = usize;

/// The role of an operator in the dataflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatorKind {
    /// Emits tuples into the topology; no inbound edges.
    Source,
    /// Consumes and produces tuples; at least one inbound edge.
    Transform,
}

/// Static description of one operator.
#[derive(Clone, Debug)]
pub struct OperatorSpec {
    /// Identifier, assigned densely by the builder in insertion order.
    pub id: OperatorId,
    /// Human-readable name (unique within the topology).
    pub name: String,
    /// Role in the dataflow.
    pub kind: OperatorKind,
    /// `y` — number of executors.
    pub parallelism: u32,
    /// `z` — shards per executor.
    pub shards_per_executor: u32,
    /// Average output selectivity: expected number of tuples emitted per
    /// input tuple processed (e.g. 1.0 for a map, 11.0 for the SSE
    /// transactor fanning out to 11 analytics operators). Used by the
    /// performance model to propagate rates through the Jackson network.
    pub selectivity: f64,
}

/// A directed edge between two operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Producing operator.
    pub from: OperatorId,
    /// Consuming operator.
    pub to: OperatorId,
    /// Distribution of tuples across the consumer's executors.
    pub grouping: Grouping,
}

/// A validated operator DAG.
///
/// Built by [`TopologyBuilder`]; construction validates the graph
/// (acyclic, edges between known operators, no duplicate edges, legal
/// grouping combinations) so every consumer — the simulated cluster and
/// the live runtime alike — can rely on a well-formed graph.
///
/// ```
/// use elasticutor_core::topology::{Grouping, TopologyBuilder};
///
/// // A diamond: source → {enrich, count} → merge.
/// let mut b = TopologyBuilder::new();
/// let source = b.source("source", 1);
/// let enrich = b.transform("enrich", 1, 64);
/// let count = b.transform("count", 1, 64);
/// let merge = b.transform("merge", 1, 32);
/// b.key_edge(source, enrich)
///     .key_edge(source, count)
///     .key_edge(enrich, merge)
///     .key_edge(count, merge);
/// let topology = b.build().unwrap();
///
/// assert_eq!(topology.downstream(source), &[enrich, count]);
/// assert_eq!(topology.upstream(merge), &[enrich, count]);
/// assert_eq!(topology.grouping(source, enrich), Some(Grouping::Key));
/// assert_eq!(topology.edges_into(merge).count(), 2);
/// // Topological order puts every producer before its consumers.
/// let order = topology.topo_order();
/// assert_eq!(order.first(), Some(&source));
/// assert_eq!(order.last(), Some(&merge));
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    operators: Vec<OperatorSpec>,
    edges: Vec<Edge>,
    /// Outbound adjacency: `downstream[op] = consumers of op`.
    downstream: Vec<Vec<OperatorId>>,
    /// Inbound adjacency: `upstream[op] = producers into op`.
    upstream: Vec<Vec<OperatorId>>,
    /// Operators in a topological order (sources first).
    topo_order: Vec<OperatorId>,
}

impl Topology {
    /// All operators, indexed by `OperatorId`.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up an operator spec.
    pub fn operator(&self, id: OperatorId) -> Result<&OperatorSpec> {
        self.operators
            .get(id.index())
            .ok_or(Error::UnknownOperator(id))
    }

    /// Finds an operator by name.
    pub fn operator_by_name(&self, name: &str) -> Option<&OperatorSpec> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// Consumers of `id`'s output stream.
    pub fn downstream(&self, id: OperatorId) -> &[OperatorId] {
        &self.downstream[id.index()]
    }

    /// Producers into `id`.
    pub fn upstream(&self, id: OperatorId) -> &[OperatorId] {
        &self.upstream[id.index()]
    }

    /// Number of *upstream executors* feeding operator `id`: the sum of the
    /// parallelism of its producers. This is the set the resource-centric
    /// baseline must synchronize with during key repartitioning, the `x`
    /// axis of Figure 9(a).
    pub fn upstream_executor_count(&self, id: OperatorId) -> u32 {
        self.upstream[id.index()]
            .iter()
            .map(|&u| self.operators[u.index()].parallelism)
            .sum()
    }

    /// Operators with no inbound edges.
    pub fn sources(&self) -> impl Iterator<Item = &OperatorSpec> {
        self.operators
            .iter()
            .filter(|o| o.kind == OperatorKind::Source)
    }

    /// Operators in topological order (every producer precedes its
    /// consumers).
    pub fn topo_order(&self) -> &[OperatorId] {
        &self.topo_order
    }

    /// Total executor count across all operators.
    pub fn total_executors(&self) -> u32 {
        self.operators.iter().map(|o| o.parallelism).sum()
    }

    /// The grouping on the edge `from → to`, if such an edge exists.
    pub fn grouping(&self, from: OperatorId, to: OperatorId) -> Option<Grouping> {
        self.edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| e.grouping)
    }

    /// The id of the edge `from → to`, if such an edge exists. At most
    /// one edge connects any ordered operator pair (validated by
    /// [`TopologyBuilder::build`]).
    pub fn edge_id(&self, from: OperatorId, to: OperatorId) -> Option<EdgeId> {
        self.edges.iter().position(|e| e.from == from && e.to == to)
    }

    /// The inbound edges of `id` as `(edge id, edge)` pairs, in edge-id
    /// order — the fan-in set a consumer's pump merges.
    pub fn edges_into(&self, id: OperatorId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.to == id)
    }

    /// The outbound edges of `id` as `(edge id, edge)` pairs, in edge-id
    /// order — the fan-out set a producer's forwarder replicates into.
    pub fn edges_from(&self, id: OperatorId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == id)
    }
}

/// Builder for [`Topology`]. Collects operators and edges, then validates
/// the graph (non-empty, unique names, positive parallelism, edges between
/// known operators, no duplicate edges, sources have no inbound edges,
/// acyclic, every transform reachable from a source, no Key/Shuffle
/// grouping mix into one operator).
///
/// ```
/// use elasticutor_core::topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let quotes = b.source("quotes", 8);
/// let transactor = b.transform("transactor", 32, 256);
/// let audit = b.transform("audit", 4, 64);
/// b.key_edge(quotes, transactor);
/// b.broadcast_edge(quotes, audit); // every audit shard sees every quote
/// b.with_selectivity(transactor, 11.0);
/// let topology = b.build().unwrap();
/// assert_eq!(topology.total_executors(), 44);
/// ```
///
/// Invalid graphs are rejected with a descriptive
/// [`Error::InvalidTopology`]:
///
/// ```
/// use elasticutor_core::error::Error;
/// use elasticutor_core::topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let s = b.source("s", 1);
/// let a = b.transform("a", 1, 16);
/// let c = b.transform("c", 1, 16);
/// b.key_edge(s, a).key_edge(a, c).key_edge(c, a); // a → c → a
/// assert!(matches!(b.build(), Err(Error::InvalidTopology(msg)) if msg.contains("cycle")));
/// ```
#[derive(Default)]
pub struct TopologyBuilder {
    operators: Vec<OperatorSpec>,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source operator and returns its id.
    pub fn source(&mut self, name: impl Into<String>, parallelism: u32) -> OperatorId {
        self.push(name.into(), OperatorKind::Source, parallelism, 1, 1.0)
    }

    /// Adds a source operator with an explicit shard count and returns
    /// its id. Live sources are full elastic executors (they run user
    /// logic on the ingress stream), so their shard space matters; plain
    /// [`Self::source`] defaults it to 1.
    pub fn source_sharded(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        shards_per_executor: u32,
    ) -> OperatorId {
        self.push(
            name.into(),
            OperatorKind::Source,
            parallelism,
            shards_per_executor,
            1.0,
        )
    }

    /// Adds a transform operator and returns its id.
    pub fn transform(
        &mut self,
        name: impl Into<String>,
        parallelism: u32,
        shards_per_executor: u32,
    ) -> OperatorId {
        self.push(
            name.into(),
            OperatorKind::Transform,
            parallelism,
            shards_per_executor,
            1.0,
        )
    }

    /// Sets the selectivity of the most recently added operator.
    pub fn with_selectivity(&mut self, op: OperatorId, selectivity: f64) -> &mut Self {
        if let Some(spec) = self.operators.get_mut(op.index()) {
            spec.selectivity = selectivity;
        }
        self
    }

    fn push(
        &mut self,
        name: String,
        kind: OperatorKind,
        parallelism: u32,
        shards_per_executor: u32,
        selectivity: f64,
    ) -> OperatorId {
        let id = OperatorId::from_index(self.operators.len());
        self.operators.push(OperatorSpec {
            id,
            name,
            kind,
            parallelism,
            shards_per_executor,
            selectivity,
        });
        id
    }

    /// Adds a key-grouped edge `from → to`.
    pub fn key_edge(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.edges.push(Edge {
            from,
            to,
            grouping: Grouping::Key,
        });
        self
    }

    /// Adds a shuffle-grouped edge `from → to`.
    pub fn shuffle_edge(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.edges.push(Edge {
            from,
            to,
            grouping: Grouping::Shuffle,
        });
        self
    }

    /// Adds a broadcast edge `from → to`: every tuple is replicated to
    /// every shard of `to`.
    pub fn broadcast_edge(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.edges.push(Edge {
            from,
            to,
            grouping: Grouping::Broadcast,
        });
        self
    }

    /// Validates and finalizes the topology.
    pub fn build(self) -> Result<Topology> {
        let n = self.operators.len();
        if n == 0 {
            return Err(Error::InvalidTopology("no operators".into()));
        }
        for (i, a) in self.operators.iter().enumerate() {
            if a.parallelism == 0 {
                return Err(Error::InvalidTopology(format!(
                    "operator '{}' has zero parallelism",
                    a.name
                )));
            }
            if a.shards_per_executor == 0 {
                return Err(Error::InvalidTopology(format!(
                    "operator '{}' has zero shards per executor",
                    a.name
                )));
            }
            if a.selectivity < 0.0 || a.selectivity.is_nan() {
                return Err(Error::InvalidTopology(format!(
                    "operator '{}' has negative or NaN selectivity",
                    a.name
                )));
            }
            for b in &self.operators[i + 1..] {
                if a.name == b.name {
                    return Err(Error::InvalidTopology(format!(
                        "duplicate operator name '{}'",
                        a.name
                    )));
                }
            }
        }

        let mut downstream = vec![Vec::new(); n];
        let mut upstream = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            if e.from.index() >= n {
                return Err(Error::UnknownOperator(e.from));
            }
            if e.to.index() >= n {
                return Err(Error::UnknownOperator(e.to));
            }
            if e.from == e.to {
                return Err(Error::InvalidTopology(format!(
                    "self-loop on operator '{}'",
                    self.operators[e.from.index()].name
                )));
            }
            if self.edges[..i]
                .iter()
                .any(|prev| prev.from == e.from && prev.to == e.to)
            {
                return Err(Error::InvalidTopology(format!(
                    "duplicate edge '{}' → '{}'",
                    self.operators[e.from.index()].name,
                    self.operators[e.to.index()].name
                )));
            }
            downstream[e.from.index()].push(e.to);
            upstream[e.to.index()].push(e.from);
        }

        // Grouping/shard-space compatibility: a Key edge into an operator
        // declares that operator's state keyed — every record of a key
        // lands on the key's shard. A Shuffle edge into the same operator
        // would scatter those very keys across the whole shard space,
        // splitting their state, so the mix is rejected. (Broadcast
        // coexists with Key: replicas reach *every* shard, including the
        // key-owning one.)
        for o in &self.operators {
            let inbound = |g: Grouping| self.edges.iter().any(|e| e.to == o.id && e.grouping == g);
            if inbound(Grouping::Key) && inbound(Grouping::Shuffle) {
                return Err(Error::InvalidTopology(format!(
                    "operator '{}' mixes Key and Shuffle inbound groupings: \
                     shuffled records of a keyed stream would scatter the \
                     key's state across shards",
                    o.name
                )));
            }
        }

        for o in &self.operators {
            match o.kind {
                OperatorKind::Source => {
                    if !upstream[o.id.index()].is_empty() {
                        return Err(Error::InvalidTopology(format!(
                            "source '{}' has inbound edges",
                            o.name
                        )));
                    }
                }
                OperatorKind::Transform => {
                    if upstream[o.id.index()].is_empty() {
                        return Err(Error::InvalidTopology(format!(
                            "transform '{}' has no inbound edges",
                            o.name
                        )));
                    }
                }
            }
        }

        // Kahn's algorithm: detects cycles and yields a topological order.
        let mut indegree: Vec<usize> = upstream.iter().map(Vec::len).collect();
        let mut queue: VecDeque<OperatorId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| OperatorId::from_index(i))
            .collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(op) = queue.pop_front() {
            topo_order.push(op);
            for &next in &downstream[op.index()] {
                indegree[next.index()] -= 1;
                if indegree[next.index()] == 0 {
                    queue.push_back(next);
                }
            }
        }
        if topo_order.len() != n {
            return Err(Error::InvalidTopology("cycle detected".into()));
        }

        Ok(Topology {
            operators: self.operators,
            edges: self.edges,
            downstream,
            upstream,
            topo_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> Topology {
        // The paper's Figure 5 micro-benchmark: generator → calculator.
        let mut b = TopologyBuilder::new();
        let gen = b.source("generator", 8);
        let calc = b.transform("calculator", 32, 256);
        b.key_edge(gen, calc);
        b.build().unwrap()
    }

    #[test]
    fn micro_topology_shape() {
        let t = micro();
        assert_eq!(t.operators().len(), 2);
        let calc = t.operator_by_name("calculator").unwrap();
        assert_eq!(calc.parallelism, 32);
        assert_eq!(t.upstream_executor_count(calc.id), 8);
        assert_eq!(t.downstream(OperatorId(0)), &[OperatorId(1)]);
        assert_eq!(t.upstream(OperatorId(1)), &[OperatorId(0)]);
        assert_eq!(t.total_executors(), 40);
        assert_eq!(
            t.grouping(OperatorId(0), OperatorId(1)),
            Some(Grouping::Key)
        );
        assert_eq!(t.grouping(OperatorId(1), OperatorId(0)), None);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        let a = b.transform("a", 2, 4);
        let c = b.transform("c", 2, 4);
        let d = b.transform("d", 2, 4);
        b.key_edge(s, a);
        b.key_edge(a, c);
        b.key_edge(a, d);
        b.key_edge(c, d);
        let t = b.build().unwrap();
        let order = t.topo_order();
        let pos = |op: OperatorId| order.iter().position(|&x| x == op).unwrap();
        assert!(pos(s) < pos(a));
        assert!(pos(a) < pos(c));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        let a = b.transform("a", 1, 1);
        let c = b.transform("c", 1, 1);
        b.key_edge(s, a);
        b.key_edge(a, c);
        b.key_edge(c, a);
        assert!(matches!(b.build(), Err(Error::InvalidTopology(_))));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        let a = b.transform("a", 1, 1);
        b.key_edge(s, a);
        b.key_edge(a, a);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_zero_parallelism() {
        let mut b = TopologyBuilder::new();
        b.source("s", 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = TopologyBuilder::new();
        b.source("s", 1);
        b.source("s", 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_orphan_transform() {
        let mut b = TopologyBuilder::new();
        b.source("s", 1);
        b.transform("lonely", 1, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_source_with_input() {
        let mut b = TopologyBuilder::new();
        let s1 = b.source("s1", 1);
        let s2 = b.source("s2", 1);
        b.key_edge(s1, s2);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(TopologyBuilder::new().build().is_err());
    }

    #[test]
    fn rejects_unknown_edge_endpoint() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        b.key_edge(s, OperatorId(9));
        assert!(matches!(b.build(), Err(Error::UnknownOperator(_))));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        let a = b.transform("a", 1, 1);
        b.key_edge(s, a);
        b.key_edge(s, a);
        assert!(matches!(
            b.build(),
            Err(Error::InvalidTopology(msg)) if msg.contains("duplicate edge")
        ));
    }

    #[test]
    fn rejects_key_shuffle_mix_into_one_operator() {
        let mut b = TopologyBuilder::new();
        let s1 = b.source("s1", 1);
        let s2 = b.source("s2", 1);
        let a = b.transform("a", 1, 16);
        b.key_edge(s1, a);
        b.shuffle_edge(s2, a);
        assert!(matches!(
            b.build(),
            Err(Error::InvalidTopology(msg)) if msg.contains("mixes Key and Shuffle")
        ));
    }

    #[test]
    fn broadcast_coexists_with_key() {
        let mut b = TopologyBuilder::new();
        let s1 = b.source("s1", 1);
        let s2 = b.source("s2", 1);
        let a = b.transform("a", 1, 16);
        b.key_edge(s1, a);
        b.broadcast_edge(s2, a);
        let t = b.build().unwrap();
        assert_eq!(t.grouping(s2, a), Some(Grouping::Broadcast));
    }

    #[test]
    fn edge_accessors_cover_fan_in_and_fan_out() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        let a = b.transform("a", 1, 4);
        let c = b.transform("c", 1, 4);
        let d = b.transform("d", 1, 4);
        b.key_edge(s, a); // edge 0
        b.key_edge(s, c); // edge 1
        b.key_edge(a, d); // edge 2
        b.key_edge(c, d); // edge 3
        let t = b.build().unwrap();
        let out: Vec<EdgeId> = t.edges_from(s).map(|(id, _)| id).collect();
        assert_eq!(out, vec![0, 1]);
        let into: Vec<EdgeId> = t.edges_into(d).map(|(id, _)| id).collect();
        assert_eq!(into, vec![2, 3]);
        assert_eq!(t.edge_id(a, d), Some(2));
        assert_eq!(t.edge_id(d, a), None);
        assert!(t.edges_into(s).next().is_none());
        assert!(t.edges_from(d).next().is_none());
    }

    #[test]
    fn selectivity_builder() {
        let mut b = TopologyBuilder::new();
        let s = b.source("s", 1);
        let a = b.transform("a", 1, 1);
        b.key_edge(s, a);
        b.with_selectivity(a, 11.0);
        let t = b.build().unwrap();
        assert!((t.operator(a).unwrap().selectivity - 11.0).abs() < 1e-12);
    }

    #[test]
    fn sse_like_fanout_counts_upstream_executors() {
        // transactor (32 executors) feeding 11 analytics operators: each
        // analytics operator sees 32 upstream executors.
        let mut b = TopologyBuilder::new();
        let src = b.source("orders", 8);
        let tx = b.transform("transactor", 32, 256);
        b.key_edge(src, tx);
        let mut analytics = Vec::new();
        for i in 0..11 {
            let a = b.transform(format!("analytics{i}"), 32, 256);
            b.key_edge(tx, a);
            analytics.push(a);
        }
        let t = b.build().unwrap();
        for a in analytics {
            assert_eq!(t.upstream_executor_count(a), 32);
        }
        assert_eq!(t.upstream_executor_count(tx), 8);
        assert_eq!(t.sources().count(), 1);
    }
}
