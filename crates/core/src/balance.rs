//! Intra-executor load balancing (paper §3.1).
//!
//! An elastic executor spreads its `z` shards over its current tasks. Both
//! changes in key distribution and CPU core reassignments skew the
//! per-task load, so the executor periodically rebalances.
//!
//! The paper's algorithm: refine the shard→task assignment in rounds until
//! the imbalance factor `δ = max task load / mean task load` drops below a
//! threshold `θ` (default 1.2). Each round considers every single-shard
//! move from the **most loaded** task to the **least loaded** task and
//! applies the move that reduces `δ` the most. This is a
//! First-Fit-Decreasing-flavoured heuristic for the NP-hard multiway
//! partitioning problem that deliberately minimizes the number of moved
//! shards — each move costs a state migration.
//!
//! [`LoadBalancer`] also provides:
//! * [`LoadBalancer::assign_fresh`] — an FFD assignment from scratch
//!   (used at startup and by the resource-centric baseline's operator-level
//!   repartitioning, which rebuilds assignments wholesale);
//! * [`LoadBalancer::plan_task_removal`] — drain plan when a core is
//!   deallocated;
//! * imbalance accounting shared by engines and tests.

use std::collections::BTreeMap;

use crate::ids::{ShardId, TaskId};

/// A single shard move from one task to another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMove {
    /// The shard to reassign.
    pub shard: ShardId,
    /// Source task (currently owns the shard).
    pub from: TaskId,
    /// Destination task.
    pub to: TaskId,
}

/// Per-task load totals derived from per-shard loads and an assignment.
#[derive(Clone, Debug, Default)]
pub struct TaskLoads {
    loads: BTreeMap<TaskId, f64>,
}

impl TaskLoads {
    /// Builds task loads by summing `shard_loads` under `assignment`
    /// (`assignment[shard] = task`). Tasks listed in `tasks` but owning no
    /// shards contribute zero entries, which matters for δ: an idle task
    /// drags the mean down and must be counted.
    pub fn from_assignment(shard_loads: &[f64], assignment: &[TaskId], tasks: &[TaskId]) -> Self {
        assert_eq!(
            shard_loads.len(),
            assignment.len(),
            "one load per shard required"
        );
        let mut loads: BTreeMap<TaskId, f64> = tasks.iter().map(|&t| (t, 0.0)).collect();
        for (s, &task) in assignment.iter().enumerate() {
            *loads.entry(task).or_insert(0.0) += shard_loads[s];
        }
        Self { loads }
    }

    /// The load of `task` (zero if unknown).
    pub fn load(&self, task: TaskId) -> f64 {
        self.loads.get(&task).copied().unwrap_or(0.0)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// The imbalance factor `δ = max / mean`. Defined as 1.0 when there is
    /// no load or a single task (perfectly balanced by definition).
    pub fn imbalance(&self) -> f64 {
        if self.loads.len() <= 1 {
            return 1.0;
        }
        let total: f64 = self.loads.values().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / self.loads.len() as f64;
        let max = self.loads.values().fold(0.0_f64, |a, &b| a.max(b));
        max / mean
    }

    /// The most-loaded task (ties broken by lowest id).
    pub fn most_loaded(&self) -> Option<TaskId> {
        self.loads
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
            .map(|(&t, _)| t)
    }

    /// The least-loaded task (ties broken by lowest id).
    pub fn least_loaded(&self) -> Option<TaskId> {
        self.loads
            .iter()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(b.0)))
            .map(|(&t, _)| t)
    }

    fn apply_move(&mut self, from: TaskId, to: TaskId, load: f64) {
        *self.loads.get_mut(&from).expect("source task") -= load;
        *self.loads.get_mut(&to).expect("destination task") += load;
    }
}

/// Result of a rebalancing pass.
#[derive(Clone, Debug)]
pub struct BalanceOutcome {
    /// Moves to apply, in order.
    pub moves: Vec<ShardMove>,
    /// Imbalance factor before the pass.
    pub delta_before: f64,
    /// Imbalance factor the assignment will have after applying `moves`.
    pub delta_after: f64,
}

impl BalanceOutcome {
    /// Whether the pass found nothing to do.
    pub fn is_noop(&self) -> bool {
        self.moves.is_empty()
    }
}

/// The intra-executor load balancer.
#[derive(Clone, Copy, Debug)]
pub struct LoadBalancer {
    /// `θ` — stop refining once `δ ≤ θ`.
    pub imbalance_threshold: f64,
    /// Upper bound on moves per pass (safety valve; the paper's algorithm
    /// converges quickly, but adversarial load vectors could churn).
    pub max_moves: usize,
}

impl Default for LoadBalancer {
    fn default() -> Self {
        Self {
            imbalance_threshold: 1.2,
            max_moves: 64,
        }
    }
}

impl LoadBalancer {
    /// Creates a balancer with the given threshold and the default move cap.
    pub fn new(imbalance_threshold: f64) -> Self {
        Self {
            imbalance_threshold,
            ..Self::default()
        }
    }

    /// Plans a rebalancing pass (paper §3.1, Algorithm description).
    ///
    /// * `shard_loads[s]` — measured load of shard `s` (e.g. CPU-ns per
    ///   second over the metrics window);
    /// * `assignment[s]` — task currently owning shard `s`;
    /// * `tasks` — all live tasks (including ones owning no shards, e.g. a
    ///   freshly added core).
    ///
    /// Returns the ordered moves; does not mutate the input. The caller
    /// applies each move with the consistent-reassignment protocol.
    pub fn plan(
        &self,
        shard_loads: &[f64],
        assignment: &[TaskId],
        tasks: &[TaskId],
    ) -> BalanceOutcome {
        let mut working: Vec<TaskId> = assignment.to_vec();
        let mut task_loads = TaskLoads::from_assignment(shard_loads, &working, tasks);
        let delta_before = task_loads.imbalance();
        let mut moves = Vec::new();

        if tasks.len() <= 1 {
            return BalanceOutcome {
                moves,
                delta_before,
                delta_after: delta_before,
            };
        }

        while task_loads.imbalance() > self.imbalance_threshold && moves.len() < self.max_moves {
            let src = task_loads.most_loaded().expect("nonempty");
            let dst = task_loads.least_loaded().expect("nonempty");
            if src == dst {
                break;
            }
            let src_load = task_loads.load(src);
            let dst_load = task_loads.load(dst);

            // Among src's shards, pick the move minimizing the resulting
            // local max(src', dst') — equivalently, the move that reduces δ
            // the most, since only src and dst loads change and the mean is
            // invariant. Moving load w: src' = src - w, dst' = dst + w.
            // We want the w minimizing max(src - w, dst + w) subject to
            // improving on the current max. The ideal w* = (src - dst) / 2.
            let ideal = (src_load - dst_load) / 2.0;
            let mut best: Option<(usize, f64)> = None; // (shard index, |w - ideal|)
            for (s, &t) in working.iter().enumerate() {
                if t != src {
                    continue;
                }
                let w = shard_loads[s];
                if w <= 0.0 {
                    continue; // moving a zero-load shard cannot help
                }
                if w >= src_load - dst_load {
                    // Would make dst the new max at least as bad as src was.
                    continue;
                }
                let score = (w - ideal).abs();
                match best {
                    None => best = Some((s, score)),
                    Some((_, b)) if score < b => best = Some((s, score)),
                    _ => {}
                }
            }

            let Some((shard_idx, _)) = best else {
                break; // no single-shard move improves δ
            };
            let w = shard_loads[shard_idx];
            task_loads.apply_move(src, dst, w);
            working[shard_idx] = dst;
            moves.push(ShardMove {
                shard: ShardId::from_index(shard_idx),
                from: src,
                to: dst,
            });
        }

        BalanceOutcome {
            delta_after: task_loads.imbalance(),
            moves,
            delta_before,
        }
    }

    /// First-Fit-Decreasing assignment from scratch: shards sorted by load
    /// descending, each placed on the currently least-loaded task. Used at
    /// startup and for operator-level repartitioning in the RC baseline.
    pub fn assign_fresh(&self, shard_loads: &[f64], tasks: &[TaskId]) -> Vec<TaskId> {
        assert!(!tasks.is_empty(), "need at least one task");
        let mut order: Vec<usize> = (0..shard_loads.len()).collect();
        order.sort_by(|&a, &b| shard_loads[b].partial_cmp(&shard_loads[a]).unwrap());
        let mut loads: BTreeMap<TaskId, f64> = tasks.iter().map(|&t| (t, 0.0)).collect();
        let mut assignment = vec![tasks[0]; shard_loads.len()];
        for s in order {
            let (&t, _) = loads
                .iter()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(b.0)))
                .expect("nonempty tasks");
            assignment[s] = t;
            *loads.get_mut(&t).unwrap() += shard_loads[s];
        }
        assignment
    }

    /// Plans a full rebalance with no move cap: shed-and-pack.
    ///
    /// Unlike [`Self::plan`] (the paper's incremental single-move rounds,
    /// suited to fine intra-executor corrections), this computes, in one
    /// pass, the move set that brings every task within `θ` of the mean:
    /// overloaded tasks shed their smallest shards until they fit, and
    /// the shed shards are packed FFD onto the least-loaded tasks. This
    /// is what operator-level repartitioning (the RC baseline) needs when
    /// the executor set changes: moves scale with the actual imbalance,
    /// not with an iteration cap.
    ///
    /// Shards assigned to tasks not in `tasks` (e.g. removed executors)
    /// are always shed.
    pub fn rebalance_unbounded(
        &self,
        shard_loads: &[f64],
        assignment: &[TaskId],
        tasks: &[TaskId],
    ) -> Vec<ShardMove> {
        assert_eq!(shard_loads.len(), assignment.len());
        assert!(!tasks.is_empty(), "need at least one task");
        let total: f64 = shard_loads.iter().sum();
        let mean = total / tasks.len() as f64;
        // Shed threshold: keep tasks at or below θ·mean (with a small
        // epsilon so exact-fit layouts do not churn).
        let cap = self.imbalance_threshold * mean + 1e-12;

        let mut loads = TaskLoads::from_assignment(shard_loads, assignment, tasks);
        let task_set: std::collections::BTreeSet<TaskId> = tasks.iter().copied().collect();

        // Phase 1: shed. Collect (shard, from) pairs to relocate.
        let mut shed: Vec<(usize, TaskId)> = Vec::new();
        // Group shards by owner, ascending load within owner so we shed
        // the smallest shards first (finest-grained correction).
        let mut by_owner: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();
        for (s, &t) in assignment.iter().enumerate() {
            by_owner.entry(t).or_default().push(s);
        }
        for (owner, mut shards) in by_owner {
            shards.sort_by(|&a, &b| shard_loads[a].partial_cmp(&shard_loads[b]).unwrap());
            if !task_set.contains(&owner) {
                // Owner is gone: shed everything and stop tracking it so
                // the packing phase can never choose it as a target.
                for s in shards {
                    shed.push((s, owner));
                }
                loads.loads.remove(&owner);
                continue;
            }
            let mut load = loads.load(owner);
            while load > cap {
                let Some(s) = shards.pop() else { break };
                // Shed the *largest* shards first when overloaded: fewest
                // moves to get under the cap.
                load -= shard_loads[s];
                shed.push((s, owner));
            }
            *loads.loads.get_mut(&owner).expect("owner tracked") = load;
        }

        // Phase 2: pack shed shards FFD onto the least-loaded tasks.
        shed.sort_by(|&(a, _), &(b, _)| shard_loads[b].partial_cmp(&shard_loads[a]).unwrap());
        let mut moves = Vec::with_capacity(shed.len());
        for (s, from) in shed {
            let to = loads.least_loaded().expect("tasks nonempty");
            *loads.loads.get_mut(&to).expect("tracked") += shard_loads[s];
            moves.push(ShardMove {
                shard: ShardId::from_index(s),
                from,
                to,
            });
        }
        // Drop no-op moves (a shed shard may be packed right back).
        moves.retain(|m| m.from != m.to);
        moves
    }

    /// Plans the drain of a removed task: every shard it owns is moved to
    /// the least-loaded surviving task, heaviest shards first.
    pub fn plan_task_removal(
        &self,
        shard_loads: &[f64],
        assignment: &[TaskId],
        removed: TaskId,
        surviving: &[TaskId],
    ) -> Vec<ShardMove> {
        assert!(!surviving.is_empty(), "cannot remove the last task");
        assert!(
            !surviving.contains(&removed),
            "removed task must not be in the surviving set"
        );
        let mut loads = TaskLoads::from_assignment(shard_loads, assignment, surviving);
        // Note: from_assignment adds the removed task's entry too (it owns
        // shards); strip it so it never receives shards.
        loads.loads.remove(&removed);

        let mut owned: Vec<usize> = assignment
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == removed)
            .map(|(s, _)| s)
            .collect();
        owned.sort_by(|&a, &b| shard_loads[b].partial_cmp(&shard_loads[a]).unwrap());

        let mut moves = Vec::with_capacity(owned.len());
        for s in owned {
            let dst = loads.least_loaded().expect("surviving tasks nonempty");
            loads.apply_move(dst, dst, 0.0); // no-op keeps borrowck simple
            *loads.loads.get_mut(&dst).unwrap() += shard_loads[s];
            moves.push(ShardMove {
                shard: ShardId::from_index(s),
                from: removed,
                to: dst,
            });
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: u32) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    fn apply(assignment: &mut [TaskId], moves: &[ShardMove]) {
        for m in moves {
            assert_eq!(assignment[m.shard.index()], m.from, "move source mismatch");
            assignment[m.shard.index()] = m.to;
        }
    }

    #[test]
    fn imbalance_of_uniform_is_one() {
        let loads = TaskLoads::from_assignment(
            &[1.0, 1.0, 1.0, 1.0],
            &[TaskId(0), TaskId(0), TaskId(1), TaskId(1)],
            &tasks(2),
        );
        assert!((loads.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_counts_idle_tasks() {
        // One task has all the load; with 2 tasks δ = max/mean = 2.
        let loads = TaskLoads::from_assignment(&[1.0, 1.0], &[TaskId(0), TaskId(0)], &tasks(2));
        assert!((loads.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_load_is_balanced() {
        let loads = TaskLoads::from_assignment(&[0.0, 0.0], &[TaskId(0), TaskId(1)], &tasks(2));
        assert!((loads.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_moves_to_new_empty_task() {
        // Scale-out: a new core (task 1) arrives empty; the balancer must
        // shift roughly half the load onto it.
        let lb = LoadBalancer::default();
        let shard_loads = vec![1.0; 8];
        let mut assignment = vec![TaskId(0); 8];
        let out = lb.plan(&shard_loads, &assignment, &tasks(2));
        assert!(out.delta_before > 1.9);
        assert!(out.delta_after <= lb.imbalance_threshold);
        apply(&mut assignment, &out.moves);
        let after = TaskLoads::from_assignment(&shard_loads, &assignment, &tasks(2));
        assert!(after.imbalance() <= lb.imbalance_threshold);
        // Minimality-ish: 8 uniform shards over 2 tasks → 4 moves suffice,
        // and the algorithm must not move more than necessary.
        assert_eq!(out.moves.len(), 4);
        for m in &out.moves {
            assert_eq!(m.from, TaskId(0));
            assert_eq!(m.to, TaskId(1));
        }
    }

    #[test]
    fn plan_is_noop_when_balanced() {
        let lb = LoadBalancer::default();
        let shard_loads = vec![1.0, 1.0, 1.0, 1.0];
        let assignment = vec![TaskId(0), TaskId(1), TaskId(0), TaskId(1)];
        let out = lb.plan(&shard_loads, &assignment, &tasks(2));
        assert!(out.is_noop());
        assert!((out.delta_after - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_handles_single_dominant_shard() {
        // One shard carries 40x the load of the rest. δ cannot reach θ
        // (the hot shard alone exceeds the mean), but the balancer must
        // still improve what it can and terminate without oscillating.
        let lb = LoadBalancer::default();
        let mut shard_loads = vec![1.0; 4];
        shard_loads[0] = 40.0;
        let mut assignment = vec![TaskId(0); 4];
        let out = lb.plan(&shard_loads, &assignment, &tasks(2));
        assert!(out.moves.len() < lb.max_moves, "must terminate early");
        // No shard may bounce back and forth within one plan.
        for m in &out.moves {
            assert_eq!(
                out.moves.iter().filter(|n| n.shard == m.shard).count(),
                1,
                "shard {m:?} moved more than once"
            );
        }
        assert!(out.delta_after < out.delta_before);
        apply(&mut assignment, &out.moves);
        let after = TaskLoads::from_assignment(&shard_loads, &assignment, &tasks(2));
        // Best achievable max is the dominant shard alone: δ = 40 / 21.5.
        assert!((after.imbalance() - 40.0 / 21.5).abs() < 1e-9);
    }

    #[test]
    fn plan_single_task_is_noop() {
        let lb = LoadBalancer::default();
        let out = lb.plan(&[5.0, 3.0], &[TaskId(0), TaskId(0)], &tasks(1));
        assert!(out.is_noop());
    }

    #[test]
    fn plan_never_increases_imbalance() {
        let lb = LoadBalancer::default();
        let shard_loads = vec![9.0, 1.0, 1.0, 1.0, 5.0, 2.0, 7.0, 3.0];
        let assignment = vec![
            TaskId(0),
            TaskId(0),
            TaskId(0),
            TaskId(0),
            TaskId(1),
            TaskId(1),
            TaskId(2),
            TaskId(2),
        ];
        let out = lb.plan(&shard_loads, &assignment, &tasks(3));
        assert!(out.delta_after <= out.delta_before + 1e-12);
    }

    #[test]
    fn plan_respects_move_cap() {
        let lb = LoadBalancer {
            imbalance_threshold: 1.0001,
            max_moves: 3,
        };
        let shard_loads = vec![1.0; 100];
        let assignment = vec![TaskId(0); 100];
        let out = lb.plan(&shard_loads, &assignment, &tasks(4));
        assert!(out.moves.len() <= 3);
    }

    #[test]
    fn fresh_assignment_is_balanced() {
        let lb = LoadBalancer::default();
        let shard_loads: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        let assignment = lb.assign_fresh(&shard_loads, &tasks(4));
        let loads = TaskLoads::from_assignment(&shard_loads, &assignment, &tasks(4));
        assert!(
            loads.imbalance() < 1.2,
            "FFD should balance well, got {}",
            loads.imbalance()
        );
    }

    #[test]
    fn fresh_assignment_covers_all_tasks() {
        let lb = LoadBalancer::default();
        let shard_loads = vec![1.0; 8];
        let assignment = lb.assign_fresh(&shard_loads, &tasks(8));
        let mut seen: Vec<TaskId> = assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "every task gets exactly one uniform shard");
    }

    #[test]
    fn unbounded_rebalance_fills_new_tasks() {
        // 64 uniform shards on 2 tasks; 6 new empty tasks appear. The
        // unbounded rebalance must spread to all 8 without any move cap.
        let lb = LoadBalancer::default();
        let shard_loads = vec![1.0; 64];
        let mut assignment: Vec<TaskId> = (0..64).map(|i| TaskId(u32::from(i % 2 == 0))).collect();
        let all = tasks(8);
        let moves = lb.rebalance_unbounded(&shard_loads, &assignment, &all);
        assert!(
            moves.len() >= 40,
            "must move ~48 shards, got {}",
            moves.len()
        );
        apply(&mut assignment, &moves);
        let loads = TaskLoads::from_assignment(&shard_loads, &assignment, &all);
        assert!(
            loads.imbalance() <= lb.imbalance_threshold + 1e-9,
            "δ = {}",
            loads.imbalance()
        );
    }

    #[test]
    fn unbounded_rebalance_sheds_removed_owners() {
        let lb = LoadBalancer::default();
        let shard_loads = vec![1.0; 8];
        let mut assignment = vec![
            TaskId(9), // owner not in the surviving set
            TaskId(9),
            TaskId(0),
            TaskId(0),
            TaskId(0),
            TaskId(1),
            TaskId(1),
            TaskId(1),
        ];
        let all = tasks(2);
        let moves = lb.rebalance_unbounded(&shard_loads, &assignment, &all);
        apply(&mut assignment, &moves);
        assert!(assignment.iter().all(|t| all.contains(t)));
        let loads = TaskLoads::from_assignment(&shard_loads, &assignment, &all);
        assert!(loads.imbalance() <= lb.imbalance_threshold + 1e-9);
    }

    #[test]
    fn unbounded_rebalance_noop_when_balanced() {
        let lb = LoadBalancer::default();
        let shard_loads = vec![1.0; 8];
        let assignment: Vec<TaskId> = (0..8).map(|i| TaskId(i % 4)).collect();
        let moves = lb.rebalance_unbounded(&shard_loads, &assignment, &tasks(4));
        assert!(
            moves.is_empty(),
            "balanced layout must not churn: {moves:?}"
        );
    }

    #[test]
    fn task_removal_drains_everything() {
        let lb = LoadBalancer::default();
        let shard_loads = vec![4.0, 3.0, 2.0, 1.0, 1.0, 1.0];
        let mut assignment = vec![
            TaskId(2),
            TaskId(2),
            TaskId(0),
            TaskId(0),
            TaskId(1),
            TaskId(1),
        ];
        let moves = lb.plan_task_removal(
            &shard_loads,
            &assignment,
            TaskId(2),
            &[TaskId(0), TaskId(1)],
        );
        assert_eq!(moves.len(), 2);
        apply(&mut assignment, &moves);
        assert!(assignment.iter().all(|&t| t != TaskId(2)));
        let loads = TaskLoads::from_assignment(&shard_loads, &assignment, &[TaskId(0), TaskId(1)]);
        assert!(loads.imbalance() < 1.4, "δ = {}", loads.imbalance());
    }

    #[test]
    #[should_panic(expected = "cannot remove the last task")]
    fn task_removal_requires_survivors() {
        let lb = LoadBalancer::default();
        lb.plan_task_removal(&[1.0], &[TaskId(0)], TaskId(0), &[]);
    }

    #[test]
    fn most_and_least_loaded_tie_break_deterministically() {
        let loads = TaskLoads::from_assignment(&[1.0, 1.0], &[TaskId(0), TaskId(1)], &tasks(2));
        assert_eq!(loads.most_loaded(), Some(TaskId(0)));
        assert_eq!(loads.least_loaded(), Some(TaskId(0)));
    }

    #[test]
    fn skewed_zipf_like_loads_converge() {
        // Zipf-ish shard loads over 16 shards, 4 tasks, bad initial layout.
        let lb = LoadBalancer::default();
        let shard_loads: Vec<f64> = (1..=16).map(|i| 1.0 / i as f64).collect();
        let mut assignment: Vec<TaskId> = (0..16)
            .map(|i| if i < 8 { TaskId(0) } else { TaskId(1) })
            .collect();
        let all = tasks(4);
        let out = lb.plan(&shard_loads, &assignment, &all);
        apply(&mut assignment, &out.moves);
        let after = TaskLoads::from_assignment(&shard_loads, &assignment, &all);
        assert!(
            after.imbalance() <= 1.5,
            "δ after = {} (moves: {:?})",
            after.imbalance(),
            out.moves.len()
        );
    }
}
