//! Protocol-level tests of the extracted §3.3 machinery: the two-tier
//! [`RoutingTable`] and the [`ReassignmentTracker`] driven together, the
//! way both the live executor and the simulated engine drive them.
//!
//! A miniature single-threaded substrate delivers tuples to per-task
//! FIFO queues and surfaces labels in queue order, so every interleaving
//! is explicit and the two invariants the engines rely on can be checked
//! directly:
//!
//! 1. label delivery completes a move **exactly once**;
//! 2. **no tuple is processed by two tasks**, and per-shard order holds
//!    across the move.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use elasticutor_core::ids::{Key, ShardId, TaskId};
use elasticutor_core::reassign::ReassignmentTracker;
use elasticutor_core::routing::{RouteDecision, RoutingTable};

/// A tuple tagged with a unique id so double-processing is detectable.
#[derive(Clone, Copy, Debug, PartialEq)]
struct T {
    id: u64,
    key: Key,
}

/// Queue entries: data tuples or the §3.3 labeling tuple.
enum Work {
    Tuple(T),
    Label(u64),
}

/// A miniature single-process substrate: per-task FIFO queues in front
/// of a shared routing table and tracker.
struct MiniExec {
    routing: RoutingTable<T>,
    tracker: ReassignmentTracker<()>,
    queues: BTreeMap<TaskId, VecDeque<Work>>,
    /// Every processed tuple: (tuple id, processing task).
    processed: Vec<(u64, TaskId)>,
    clock: u64,
}

impl MiniExec {
    fn new(num_shards: u32, tasks: &[TaskId]) -> Self {
        let mut routing = RoutingTable::new(num_shards, tasks[0]);
        for s in 0..num_shards {
            routing
                .set_task(ShardId(s), tasks[(s as usize) % tasks.len()])
                .expect("fresh shard");
        }
        Self {
            routing,
            tracker: ReassignmentTracker::new(),
            queues: tasks.iter().map(|&t| (t, VecDeque::new())).collect(),
            processed: Vec::new(),
            clock: 0,
        }
    }

    fn submit(&mut self, tuple: T) {
        match self.routing.route(tuple.key, tuple) {
            RouteDecision::Buffered(_) => {}
            RouteDecision::Deliver(task, tuple) => {
                self.queues
                    .get_mut(&task)
                    .expect("routed to live task")
                    .push_back(Work::Tuple(tuple));
            }
        }
    }

    fn begin_move(&mut self, shard: ShardId, to: TaskId) -> u64 {
        let from = self.routing.task_of(shard).expect("shard exists");
        assert_ne!(from, to, "test should move to a different task");
        self.routing.pause(shard).expect("not already paused");
        self.clock += 1;
        let label = self.tracker.begin(shard, from, to, self.clock, ());
        self.queues
            .get_mut(&from)
            .expect("source task exists")
            .push_back(Work::Label(label));
        label
    }

    /// Processes one queue item of `task`; true if anything was done.
    fn step(&mut self, task: TaskId) -> bool {
        let Some(work) = self.queues.get_mut(&task).and_then(VecDeque::pop_front) else {
            return false;
        };
        self.clock += 1;
        match work {
            Work::Tuple(t) => {
                self.processed.push((t.id, task));
            }
            Work::Label(label) => {
                self.tracker
                    .mark_label_reached(label, self.clock)
                    .expect("label pending");
                let completion = self
                    .tracker
                    .complete(label, self.clock)
                    .expect("completes exactly once");
                let buffered = self
                    .routing
                    .finish_reassignment(completion.shard, completion.to)
                    .expect("shard was paused");
                for t in buffered {
                    self.queues
                        .get_mut(&completion.to)
                        .expect("destination exists")
                        .push_back(Work::Tuple(t));
                }
            }
        }
        true
    }

    /// Runs tasks round-robin until every queue is empty.
    fn drain(&mut self) {
        loop {
            let tasks: Vec<TaskId> = self.queues.keys().copied().collect();
            let mut progressed = false;
            for t in tasks {
                progressed |= self.step(t);
            }
            if !progressed {
                return;
            }
        }
    }
}

/// A key that tier-1 hashes onto `shard`.
fn key_on_shard(table: &RoutingTable<T>, shard: ShardId) -> Key {
    (0u64..)
        .map(Key)
        .find(|&k| table.shard_for(k) == shard)
        .expect("some key lands on every shard")
}

#[test]
fn label_completes_move_exactly_once_end_to_end() {
    let tasks = [TaskId(0), TaskId(1)];
    let mut exec = MiniExec::new(4, &tasks);
    let shard = ShardId(0);
    let from = exec.routing.task_of(shard).unwrap();
    let to = tasks[usize::from(from == TaskId(0))];

    let label = exec.begin_move(shard, to);
    exec.drain();

    assert_eq!(exec.routing.task_of(shard).unwrap(), to);
    assert!(!exec.routing.is_paused(shard));
    assert_eq!(exec.tracker.completed_count(), 1);
    // The label is spent: any replayed delivery must fail loudly rather
    // than re-running map surgery.
    assert!(exec.tracker.complete(label, 999).is_err());
    assert!(exec.tracker.abort(label).is_err());
}

#[test]
fn no_tuple_processed_by_two_tasks_during_move() {
    let tasks = [TaskId(0), TaskId(1)];
    let mut exec = MiniExec::new(2, &tasks);
    let shard = ShardId(0);
    let from = exec.routing.task_of(shard).unwrap();
    let to = tasks[usize::from(from == TaskId(0))];
    let key = key_on_shard(&exec.routing, shard);

    // Tuples 0..5 land in the source task's queue.
    for id in 0..5 {
        exec.submit(T { id, key });
    }
    // Start the move: the label queues *behind* tuples 0..5.
    exec.begin_move(shard, to);
    // Tuples 5..10 arrive while paused: buffered at the receiver.
    for id in 5..10 {
        exec.submit(T { id, key });
    }
    assert_eq!(exec.routing.buffered_tuples(), 5);
    exec.drain();
    // Tuples 10..15 arrive after the move: routed straight to `to`.
    for id in 10..15 {
        exec.submit(T { id, key });
    }
    exec.drain();

    // Every tuple processed exactly once...
    let mut ids: Vec<u64> = exec.processed.iter().map(|&(id, _)| id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..15).collect::<Vec<u64>>());
    // ...pre-label tuples by the source, post-label by the destination,
    // never interleaved across tasks...
    for &(id, task) in &exec.processed {
        let expect = if id < 5 { from } else { to };
        assert_eq!(task, expect, "tuple {id} ran on the wrong task");
    }
    // ...and shard order is preserved end to end.
    let order: Vec<u64> = exec.processed.iter().map(|&(id, _)| id).collect();
    assert_eq!(order, (0..15).collect::<Vec<u64>>(), "shard FIFO violated");
}

#[test]
fn concurrent_moves_of_distinct_shards_are_independent() {
    let tasks = [TaskId(0), TaskId(1), TaskId(2)];
    let mut exec = MiniExec::new(6, &tasks);

    // Move one shard off each of task 0 and task 1, in flight together.
    let s0 = ShardId(0); // owned by task 0
    let s1 = ShardId(1); // owned by task 1
    let k0 = key_on_shard(&exec.routing, s0);
    let k1 = key_on_shard(&exec.routing, s1);
    exec.submit(T { id: 0, key: k0 });
    exec.submit(T { id: 1, key: k1 });
    let l0 = exec.begin_move(s0, TaskId(2));
    let l1 = exec.begin_move(s1, TaskId(2));
    assert_ne!(l0, l1, "labels are unique across concurrent moves");
    assert_eq!(exec.tracker.len(), 2);
    exec.submit(T { id: 2, key: k0 }); // buffered
    exec.submit(T { id: 3, key: k1 }); // buffered
    exec.drain();

    assert_eq!(exec.routing.task_of(s0).unwrap(), TaskId(2));
    assert_eq!(exec.routing.task_of(s1).unwrap(), TaskId(2));
    assert_eq!(exec.tracker.completed_count(), 2);
    assert!(exec.tracker.is_empty());
    let mut ids: Vec<u64> = exec.processed.iter().map(|&(id, _)| id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3]);
}
