//! Property-based tests for core invariants.

use elasticutor_core::balance::{LoadBalancer, TaskLoads};
use elasticutor_core::hash;
use elasticutor_core::ids::{ExecutorId, Key, ShardId, TaskId};
use elasticutor_core::partition::DynamicPartition;
use elasticutor_core::routing::{RouteDecision, RoutingTable};
use proptest::prelude::*;

fn task_vec(n: u32) -> Vec<TaskId> {
    (0..n).map(TaskId).collect()
}

proptest! {
    /// Tier hashes always land in range and are deterministic.
    #[test]
    fn hash_in_range(key in any::<u64>(), y in 1u32..512, z in 1u32..4096) {
        let e = hash::key_to_executor(key, y);
        prop_assert!(e < y);
        let s = hash::key_to_shard(key, z);
        prop_assert!(s < z);
        prop_assert_eq!(e, hash::key_to_executor(key, y));
        prop_assert_eq!(s, hash::key_to_shard(key, z));
    }

    /// A balancing plan never increases the imbalance factor, moves only
    /// shards that exist, and each move's `from` matches the evolving
    /// assignment.
    #[test]
    fn balancer_plan_sound(
        loads in prop::collection::vec(0.0f64..100.0, 1..64),
        ntasks in 1u32..9,
        seed in any::<u64>(),
    ) {
        let tasks = task_vec(ntasks);
        // Random-ish initial assignment derived from the seed.
        let mut assignment: Vec<TaskId> = (0..loads.len())
            .map(|i| TaskId(hash::hash_with_seed(i as u64, seed) as u32 % ntasks))
            .collect();
        let lb = LoadBalancer::default();
        let out = lb.plan(&loads, &assignment, &tasks);
        prop_assert!(out.delta_after <= out.delta_before + 1e-9);
        prop_assert!(out.moves.len() <= lb.max_moves);
        for m in &out.moves {
            prop_assert!(m.shard.index() < loads.len());
            prop_assert_eq!(assignment[m.shard.index()], m.from);
            prop_assert!(tasks.contains(&m.to));
            prop_assert_ne!(m.from, m.to);
            assignment[m.shard.index()] = m.to;
        }
        // Reported delta_after matches the applied assignment.
        let after = TaskLoads::from_assignment(&loads, &assignment, &tasks);
        prop_assert!((after.imbalance() - out.delta_after).abs() < 1e-9);
    }

    /// FFD fresh assignment: all shards assigned to valid tasks and the
    /// result is within 4/3 of the lower bound on the makespan (FFD's
    /// classical guarantee is 4/3 OPT + 1 item for makespan scheduling).
    #[test]
    fn ffd_assignment_quality(
        loads in prop::collection::vec(0.01f64..10.0, 1..64),
        ntasks in 1u32..9,
    ) {
        let tasks = task_vec(ntasks);
        let lb = LoadBalancer::default();
        let assignment = lb.assign_fresh(&loads, &tasks);
        prop_assert_eq!(assignment.len(), loads.len());
        for &t in &assignment {
            prop_assert!(tasks.contains(&t));
        }
        let tl = TaskLoads::from_assignment(&loads, &assignment, &tasks);
        let total: f64 = loads.iter().sum();
        let maxload = loads.iter().cloned().fold(0.0f64, f64::max);
        let lower = (total / ntasks as f64).max(maxload);
        let makespan = tasks.iter().map(|&t| tl.load(t)).fold(0.0f64, f64::max);
        prop_assert!(makespan <= 4.0 / 3.0 * lower + maxload + 1e-9,
            "makespan {makespan} vs lower bound {lower}");
    }

    /// Pausing and finishing a reassignment preserves every buffered tuple
    /// exactly once, in order.
    #[test]
    fn routing_buffer_preserves_tuples(
        z in 1u32..64,
        keys in prop::collection::vec(any::<u64>(), 1..128),
    ) {
        let mut rt: RoutingTable<(u64, usize)> = RoutingTable::new(z, TaskId(0));
        let target = rt.shard_for(Key(keys[0]));
        rt.pause(target).unwrap();
        let mut expected = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let decision = rt.route(Key(k), (k, i));
            if rt.shard_for(Key(k)) == target {
                prop_assert_eq!(decision, RouteDecision::Buffered(target));
                expected.push((k, i));
            } else {
                prop_assert!(matches!(decision, RouteDecision::Deliver(_, _)));
            }
        }
        let buffered = rt.finish_reassignment(target, TaskId(1)).unwrap();
        prop_assert_eq!(buffered, expected);
        prop_assert_eq!(rt.task_of(target).unwrap(), TaskId(1));
    }

    /// Dynamic (RC) repartitioning reports exactly the set of changed
    /// shards and key routing follows the new owner.
    #[test]
    fn dynamic_partition_moves_consistent(
        shards in 1u32..128,
        execs in 1u32..17,
        seed in any::<u64>(),
    ) {
        let mut p = DynamicPartition::new(shards, execs);
        let old = p.assignment().to_vec();
        let new: Vec<ExecutorId> = (0..shards)
            .map(|s| ExecutorId(hash::hash_with_seed(u64::from(s), seed) as u32 % execs))
            .collect();
        let moves = p.repartition(&new);
        for (i, (&o, &n)) in old.iter().zip(&new).enumerate() {
            let moved = moves.iter().any(|&(s, _, _)| s == ShardId::from_index(i));
            prop_assert_eq!(moved, o != n);
        }
        for s in 0..shards {
            prop_assert_eq!(p.executor_of(ShardId(s)), new[s as usize]);
        }
    }

    /// Task-removal plans drain the removed task completely and only touch
    /// its shards.
    #[test]
    fn removal_plan_complete(
        loads in prop::collection::vec(0.0f64..10.0, 2..64),
        ntasks in 2u32..8,
    ) {
        let tasks = task_vec(ntasks);
        let lb = LoadBalancer::default();
        let mut assignment = lb.assign_fresh(&loads, &tasks);
        let removed = TaskId(ntasks - 1);
        let surviving: Vec<TaskId> = tasks.iter().copied().filter(|&t| t != removed).collect();
        let moves = lb.plan_task_removal(&loads, &assignment, removed, &surviving);
        for m in &moves {
            prop_assert_eq!(m.from, removed);
            prop_assert!(surviving.contains(&m.to));
            assignment[m.shard.index()] = m.to;
        }
        prop_assert!(assignment.iter().all(|&t| t != removed));
    }
}

proptest! {
    /// HRW shard→instance map: growing a group from n to n+1 instances
    /// moves only shards that land on the newcomer, and the moved fraction
    /// is close to the consistent-hash ideal 1/(n+1).
    #[test]
    fn hrw_resize_moves_about_one_nth(
        shards in 256u32..2048,
        n in 1u32..8,
    ) {
        use elasticutor_core::instances::ShardInstanceMap;
        let mut m = ShardInstanceMap::new(shards, n);
        let before = m.clone();
        let moves = m.add_instance(n);
        // Every move is into the newcomer; `from` matches the old owner.
        for mv in &moves {
            prop_assert_eq!(mv.to, n);
            prop_assert_eq!(before.instance_of(mv.shard), mv.from);
        }
        // Untouched shards keep their owner.
        let moved: std::collections::HashSet<u32> =
            moves.iter().map(|mv| mv.shard).collect();
        for s in 0..shards {
            if !moved.contains(&s) {
                prop_assert_eq!(m.instance_of(s), before.instance_of(s));
            }
        }
        // Moved fraction ≈ 1/(n+1) within 3.5 binomial std deviations.
        let ideal = shards as f64 / (n as f64 + 1.0);
        let sd = (ideal * (1.0 - 1.0 / (n as f64 + 1.0))).sqrt();
        let diff = (moves.len() as f64 - ideal).abs();
        prop_assert!(
            diff <= 3.5 * sd + 1.0,
            "moved {} of {} shards; ideal {:.1} ± {:.1}",
            moves.len(), shards, ideal, sd
        );
    }

    /// Retiring any instance moves exactly the shards it owned, each to a
    /// surviving instance, and agrees with incremental bookkeeping.
    #[test]
    fn hrw_remove_drains_exactly_victim(
        shards in 64u32..1024,
        n in 2u32..8,
        victim_ix in 0u32..8,
    ) {
        use elasticutor_core::instances::ShardInstanceMap;
        let victim = victim_ix % n;
        let mut m = ShardInstanceMap::new(shards, n);
        let owned = m.shards_of(victim);
        let moves = m.remove_instance(victim);
        prop_assert_eq!(moves.len(), owned.len());
        for mv in &moves {
            prop_assert_eq!(mv.from, victim);
            prop_assert_ne!(mv.to, victim);
            prop_assert!(m.live_instances().contains(&mv.to));
        }
        prop_assert!(m.shards_of(victim).is_empty());
    }
}
