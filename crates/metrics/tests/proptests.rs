//! Property-based tests for the metrics substrate: the histograms and
//! counters every experiment's numbers flow through.

use elasticutor_metrics::{LatencyHistogram, SlidingWindowCounter, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// Quantiles are monotone in q, bounded by [min, max], and the
    /// log-bucketed estimate stays within the documented 5% of an exact
    /// rank statistic.
    #[test]
    fn histogram_quantiles_sound(
        mut samples in prop::collection::vec(1u64..10_000_000_000, 1..300),
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let exact = |q: f64| {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            samples[rank - 1] as f64
        };
        let mut last = 0.0;
        for &q in &[0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile_ns(q);
            prop_assert!(est >= last, "quantiles must be monotone in q");
            prop_assert!(est >= h.min_ns() as f64 * 0.95);
            prop_assert!(est <= h.max_ns() as f64 + 1.0);
            // Log-bucket resolution: the estimate must not be below the
            // exact rank statistic's bucket floor.
            prop_assert!(
                est >= exact(q) / 1.10,
                "q={q}: estimate {est} far below exact {}",
                exact(q)
            );
            last = est;
        }
        // Mean is exact (tracked outside the buckets).
        let true_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean_ns() - true_mean).abs() < 1e-6 * true_mean.max(1.0));
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max_ns(), *samples.last().expect("nonempty"));
        prop_assert_eq!(h.min_ns(), samples[0]);
    }

    /// Merging two histograms equals recording both sample sets into one.
    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(1u64..1_000_000_000, 0..100),
        b in prop::collection::vec(1u64..1_000_000_000, 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &s in &a {
            ha.record(s);
            hu.record(s);
        }
        for &s in &b {
            hb.record(s);
            hu.record(s);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert!((ha.mean_ns() - hu.mean_ns()).abs() <= 1e-6 * hu.mean_ns().max(1.0));
        prop_assert_eq!(ha.max_ns(), hu.max_ns());
        for &q in &[0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile_ns(q), hu.quantile_ns(q));
        }
    }

    /// A sliding window counts exactly the events inside its horizon,
    /// regardless of how event times are distributed.
    #[test]
    fn sliding_window_counts_recent_events(
        events in prop::collection::vec(0u64..5_000_000_000, 1..200),
    ) {
        let window_ns = 1_000_000_000;
        let mut w = SlidingWindowCounter::new(window_ns, 20);
        let mut sorted = events.clone();
        sorted.sort_unstable();
        for &t in &sorted {
            w.record_at(t, 1);
        }
        let now = *sorted.last().expect("nonempty");
        let got = w.count_at(now);
        // Exact bucketed semantic: an event is live while its bucket
        // epoch is within `buckets` of the head epoch.
        let bucket = window_ns / 20;
        let expected = sorted
            .iter()
            .filter(|&&t| now / bucket - t / bucket < 20)
            .count() as u64;
        prop_assert_eq!(got, expected);
        prop_assert_eq!(w.lifetime_count(), sorted.len() as u64);
    }

    /// Time-series summary statistics agree with direct computation, and
    /// CSV round-trips the sample count.
    #[test]
    fn time_series_summaries(
        values in prop::collection::vec(0.0f64..1e9, 1..100),
    ) {
        let mut ts = TimeSeries::new("s");
        for (i, &v) in values.iter().enumerate() {
            ts.push(i as u64 * 1_000, v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((ts.mean() - mean).abs() < 1e-6 * mean.max(1.0));
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert_eq!(ts.max(), max);
        prop_assert_eq!(ts.min(), min);
        prop_assert_eq!(ts.len(), values.len());
        let csv = ts.to_csv();
        prop_assert_eq!(csv.lines().count(), values.len() + 1, "header + one line per sample");
    }
}
