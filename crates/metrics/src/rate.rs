//! Byte-volume counters for migration and transfer rates.
//!
//! Table 2 of the paper compares naive-EC and Elasticutor by their
//! **state migration rate** (MB/s of state crossing the network) and
//! **remote data transfer rate** (MB/s between executors' main processes
//! and their remote tasks). [`ByteRateCounter`] accumulates byte volumes
//! with timestamps and reports windowed and lifetime rates.

/// Accumulates byte volumes over explicit timestamps.
#[derive(Clone, Debug, Default)]
pub struct ByteRateCounter {
    total_bytes: u64,
    first_ts: Option<u64>,
    last_ts: u64,
    /// Recent (ts, bytes) events for windowed rates. Pruned lazily.
    recent: std::collections::VecDeque<(u64, u64)>,
    window_ns: u64,
}

impl ByteRateCounter {
    /// Creates a counter with a 10-second window for `recent_rate`.
    pub fn new() -> Self {
        Self::with_window(10_000_000_000)
    }

    /// Creates a counter with a custom window.
    pub fn with_window(window_ns: u64) -> Self {
        assert!(window_ns > 0);
        Self {
            window_ns,
            ..Self::default()
        }
    }

    /// Records `bytes` transferred at `ts_ns`.
    pub fn record_at(&mut self, ts_ns: u64, bytes: u64) {
        if self.first_ts.is_none() {
            self.first_ts = Some(ts_ns);
        }
        self.last_ts = self.last_ts.max(ts_ns);
        self.total_bytes += bytes;
        self.recent.push_back((ts_ns, bytes));
        self.prune(ts_ns);
    }

    fn prune(&mut self, now_ns: u64) {
        let horizon = now_ns.saturating_sub(self.window_ns);
        while let Some(&(t, _)) = self.recent.front() {
            if t < horizon {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Lifetime average rate in bytes/s over `[first_event, until_ns]`.
    /// Returns 0 before any event or for a zero-length interval.
    pub fn lifetime_rate(&self, until_ns: u64) -> f64 {
        match self.first_ts {
            None => 0.0,
            Some(first) if until_ns <= first => 0.0,
            Some(first) => self.total_bytes as f64 * 1e9 / (until_ns - first) as f64,
        }
    }

    /// Lifetime average rate in MB/s (the unit of Table 2).
    pub fn lifetime_rate_mb_s(&self, until_ns: u64) -> f64 {
        self.lifetime_rate(until_ns) / (1024.0 * 1024.0)
    }

    /// Windowed rate in bytes/s ending at `now_ns`.
    pub fn recent_rate(&mut self, now_ns: u64) -> f64 {
        self.prune(now_ns);
        let bytes: u64 = self.recent.iter().map(|&(_, b)| b).sum();
        bytes as f64 * 1e9 / self.window_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn lifetime_rate_spans_first_to_query() {
        let mut c = ByteRateCounter::new();
        c.record_at(0, 1024);
        c.record_at(SEC, 1024);
        // 2048 bytes over 2 seconds = 1024 B/s.
        assert!((c.lifetime_rate(2 * SEC) - 1024.0).abs() < 1e-9);
        assert_eq!(c.total_bytes(), 2048);
    }

    #[test]
    fn empty_counter_rates_are_zero() {
        let c = ByteRateCounter::new();
        assert_eq!(c.lifetime_rate(SEC), 0.0);
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn mb_per_s_conversion() {
        let mut c = ByteRateCounter::new();
        c.record_at(0, 10 * 1024 * 1024);
        assert!((c.lifetime_rate_mb_s(SEC) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn recent_rate_expires_old_traffic() {
        let mut c = ByteRateCounter::with_window(SEC);
        c.record_at(0, 1000);
        assert!((c.recent_rate(0) - 1000.0).abs() < 1e-9);
        // After the window passes, recent rate returns to zero but the
        // lifetime total remains.
        assert_eq!(c.recent_rate(3 * SEC), 0.0);
        assert_eq!(c.total_bytes(), 1000);
    }

    #[test]
    fn query_before_first_event() {
        let mut c = ByteRateCounter::new();
        c.record_at(5 * SEC, 100);
        assert_eq!(c.lifetime_rate(5 * SEC), 0.0);
        assert!(c.lifetime_rate(6 * SEC) > 0.0);
    }
}
