//! Contention-free latency recording for multi-threaded data planes.
//!
//! A single shared [`LatencyHistogram`] behind one mutex serializes
//! every recorder — on a hot path that lock, not the work, becomes the
//! throughput ceiling. [`ShardedHistogram`] gives each recording thread
//! its own cache-line-padded cell (histogram + mutex) so steady-state
//! recording only ever touches an uncontended lock on a private cache
//! line; readers pay the merge cost instead, which is the right trade
//! for metrics read a few times per second.

use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};

use crate::histogram::LatencyHistogram;

/// A fixed set of cache-line-padded [`LatencyHistogram`] cells, one per
/// writer (task thread / task slot).
///
/// Writers lock only their own cell — uncontended by construction, so
/// the "lock" is a private compare-and-swap. Readers merge every cell
/// into one snapshot via [`Self::merged`]. Cell indices are assigned by
/// the caller (e.g. a task-slot registry); when a writer retires, the
/// caller drains its cell with [`Self::take_cell`] and may hand the
/// index to a new writer.
pub struct ShardedHistogram {
    cells: Box<[CachePadded<Mutex<LatencyHistogram>>]>,
}

impl ShardedHistogram {
    /// Creates `num_cells` empty cells.
    pub fn new(num_cells: usize) -> Self {
        Self {
            cells: (0..num_cells)
                .map(|_| CachePadded::new(Mutex::new(LatencyHistogram::new())))
                .collect(),
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Locks cell `i` for a burst of recordings (one lock per batch, not
    /// per observation).
    pub fn cell(&self, i: usize) -> MutexGuard<'_, LatencyHistogram> {
        self.cells[i].lock()
    }

    /// Records a single observation into cell `i`.
    pub fn record(&self, i: usize, ns: u64) {
        self.cells[i].lock().record(ns);
    }

    /// Merges every cell into one histogram (cells keep their contents).
    pub fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for cell in &self.cells {
            out.merge(&cell.lock());
        }
        out
    }

    /// Empties cell `i`, returning its contents — used when the writer
    /// owning the cell retires and its history must move to a durable
    /// aggregate before the cell is reassigned.
    pub fn take_cell(&self, i: usize) -> LatencyHistogram {
        std::mem::take(&mut *self.cells[i].lock())
    }
}

impl std::fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHistogram")
            .field("num_cells", &self.num_cells())
            .field("merged", &self.merged())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_combines_all_cells() {
        let h = ShardedHistogram::new(4);
        h.record(0, 1_000_000);
        h.record(1, 2_000_000);
        h.record(3, 3_000_000);
        let merged = h.merged();
        assert_eq!(merged.count(), 3);
        assert!((merged.mean_ns() - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn take_cell_drains_only_that_cell() {
        let h = ShardedHistogram::new(2);
        h.record(0, 5_000_000);
        h.record(1, 7_000_000);
        let taken = h.take_cell(0);
        assert_eq!(taken.count(), 1);
        assert_eq!(h.merged().count(), 1);
        assert_eq!(h.merged().max_ns(), 7_000_000);
    }

    #[test]
    fn batch_recording_via_cell_guard() {
        let h = ShardedHistogram::new(1);
        {
            let mut cell = h.cell(0);
            for ns in [1_000_000u64, 2_000_000, 4_000_000] {
                cell.record(ns);
            }
        }
        assert_eq!(h.merged().count(), 3);
    }

    #[test]
    fn concurrent_writers_never_lose_counts() {
        use std::sync::Arc;
        let h = Arc::new(ShardedHistogram::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for k in 0..10_000u64 {
                        h.record(i, (k + 1) * 1_000);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.merged().count(), 80_000);
    }
}
