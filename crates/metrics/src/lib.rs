//! # elasticutor-metrics
//!
//! Measurement primitives shared by the simulated engines and the live
//! runtime, matching the metrics the paper reports:
//!
//! * [`histogram::LatencyHistogram`] — log-bucketed latency histogram
//!   with average, p50, p99 (Figures 6b, 11, 16b).
//! * [`sharded::ShardedHistogram`] — per-writer cache-line-padded
//!   histogram cells for lock-contention-free hot-path recording,
//!   merged on read.
//! * [`window::SlidingWindowCounter`] — instantaneous throughput measured
//!   in a sliding time window of 1 second (Figures 7, 16a).
//! * [`series::TimeSeries`] — timestamped samples for plotting timelines.
//! * [`rate::ByteRateCounter`] — byte-volume counters windowed into MB/s
//!   rates (Table 2's state-migration and remote-data-transfer rates).
//!
//! Everything is driven by explicit nanosecond timestamps rather than
//! wall-clock reads, so the same code serves the discrete-event simulator
//! (simulated time) and the live runtime (monotonic clock time).

#![warn(missing_docs)]

pub mod histogram;
pub mod rate;
pub mod series;
pub mod sharded;
pub mod window;

pub use histogram::LatencyHistogram;
pub use rate::ByteRateCounter;
pub use series::TimeSeries;
pub use sharded::ShardedHistogram;
pub use window::SlidingWindowCounter;
