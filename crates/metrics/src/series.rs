//! Timestamped sample series for experiment timelines.

/// A named series of `(t_ns, value)` samples, e.g. instantaneous
/// throughput over an experiment run (Figures 7, 15, 16).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Timestamps should be non-decreasing.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| t_ns >= t),
            "timestamps must be non-decreasing"
        );
        self.samples.push((t_ns, value));
    }

    /// All samples.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the sampled values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum sampled value (0 when empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Maximum sampled value (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Samples with `value < threshold`, as contiguous `[start_ns,
    /// end_ns]` dips — used to measure how long transient throughput
    /// degradations last (Figure 7's 1–3 s vs 10–20 s claim).
    pub fn dips_below(&self, threshold: f64) -> Vec<(u64, u64)> {
        let mut dips = Vec::new();
        let mut current: Option<(u64, u64)> = None;
        for &(t, v) in &self.samples {
            if v < threshold {
                current = Some(match current {
                    None => (t, t),
                    Some((s, _)) => (s, t),
                });
            } else if let Some(done) = current.take() {
                dips.push(done);
            }
        }
        if let Some(done) = current {
            dips.push(done);
        }
        dips
    }

    /// Writes the series as CSV lines (`t_seconds,value`) to `out`.
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.samples.len() * 24);
        s.push_str("t_seconds,");
        s.push_str(&self.name);
        s.push('\n');
        for &(t, v) in &self.samples {
            s.push_str(&format!("{:.3},{v:.6}\n", t as f64 / 1e9));
        }
        s
    }
}

/// Clamp non-finite fold results (empty series) to 0.
trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut s = TimeSeries::new("tput");
        s.push(0, 10.0);
        s.push(1_000_000_000, 20.0);
        s.push(2_000_000_000, 30.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(), "tput");
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.dips_below(1.0).is_empty());
    }

    #[test]
    fn dips_found_and_bounded() {
        let mut s = TimeSeries::new("tput");
        let vals = [10.0, 10.0, 2.0, 1.0, 9.0, 10.0, 3.0, 10.0];
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as u64 * 1_000_000_000, v);
        }
        let dips = s.dips_below(5.0);
        assert_eq!(
            dips,
            vec![
                (2_000_000_000, 3_000_000_000),
                (6_000_000_000, 6_000_000_000)
            ]
        );
    }

    #[test]
    fn trailing_dip_is_closed() {
        let mut s = TimeSeries::new("tput");
        s.push(0, 10.0);
        s.push(1, 1.0);
        let dips = s.dips_below(5.0);
        assert_eq!(dips, vec![(1, 1)]);
    }

    #[test]
    fn csv_output() {
        let mut s = TimeSeries::new("v");
        s.push(500_000_000, 1.5);
        let csv = s.to_csv();
        assert!(csv.starts_with("t_seconds,v\n"));
        assert!(csv.contains("0.500,1.500000"));
    }
}
