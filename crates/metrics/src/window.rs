//! Sliding-window event counting for instantaneous throughput.
//!
//! The paper plots "instantaneous throughput, measured in a sliding time
//! window of 1 second" (Figure 7). [`SlidingWindowCounter`] counts events
//! into fixed sub-buckets of the window (default 64) and reports the
//! windowed rate at any queried timestamp, expiring stale buckets lazily.

/// A sliding-window event counter over explicit nanosecond timestamps.
///
/// Timestamps must be fed non-decreasing (both the simulator's clock and
/// a monotonic runtime clock satisfy this).
#[derive(Clone, Debug)]
pub struct SlidingWindowCounter {
    window_ns: u64,
    bucket_ns: u64,
    /// Circular buffer of per-bucket counts.
    buckets: Vec<u64>,
    /// Bucket epoch of the newest bucket (`now / bucket_ns`).
    head_epoch: u64,
    /// Sum over live buckets.
    live: u64,
    /// Total events ever recorded.
    lifetime: u64,
    last_ts: u64,
}

impl SlidingWindowCounter {
    /// Creates a counter with the given window length, split into
    /// `buckets` sub-buckets (resolution = window / buckets).
    pub fn new(window_ns: u64, buckets: usize) -> Self {
        assert!(window_ns > 0, "window must be positive");
        assert!(buckets > 0, "need at least one bucket");
        let bucket_ns = (window_ns / buckets as u64).max(1);
        Self {
            window_ns,
            bucket_ns,
            buckets: vec![0; buckets],
            head_epoch: 0,
            live: 0,
            lifetime: 0,
            last_ts: 0,
        }
    }

    /// A 1-second window with 64 sub-buckets — the paper's measurement
    /// granularity.
    pub fn one_second() -> Self {
        Self::new(1_000_000_000, 64)
    }

    fn advance_to(&mut self, ts_ns: u64) {
        let epoch = ts_ns / self.bucket_ns;
        if epoch <= self.head_epoch {
            return;
        }
        let steps = (epoch - self.head_epoch).min(self.buckets.len() as u64);
        for i in 0..steps {
            let slot = ((self.head_epoch + 1 + i) % self.buckets.len() as u64) as usize;
            self.live -= self.buckets[slot];
            self.buckets[slot] = 0;
        }
        if epoch - self.head_epoch > self.buckets.len() as u64 {
            // Jumped past the whole window: everything expired.
            debug_assert_eq!(self.live, 0);
        }
        self.head_epoch = epoch;
    }

    /// Records `n` events at `ts_ns`.
    pub fn record_at(&mut self, ts_ns: u64, n: u64) {
        debug_assert!(ts_ns >= self.last_ts, "timestamps must be non-decreasing");
        self.last_ts = ts_ns;
        self.advance_to(ts_ns);
        let slot = (self.head_epoch % self.buckets.len() as u64) as usize;
        self.buckets[slot] += n;
        self.live += n;
        self.lifetime += n;
    }

    /// Events inside the window ending at `ts_ns`.
    pub fn count_at(&mut self, ts_ns: u64) -> u64 {
        self.advance_to(ts_ns);
        self.live
    }

    /// Windowed rate (events per second) at `ts_ns`.
    pub fn rate_at(&mut self, ts_ns: u64) -> f64 {
        self.count_at(ts_ns) as f64 * 1e9 / self.window_ns as f64
    }

    /// Total events ever recorded.
    pub fn lifetime_count(&self) -> u64 {
        self.lifetime
    }

    /// Window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn counts_within_window() {
        let mut w = SlidingWindowCounter::one_second();
        for i in 0..10 {
            w.record_at(i * SEC / 10, 1);
        }
        // At t = 0.95 s, all 10 events are live.
        assert_eq!(w.count_at(SEC * 95 / 100), 10);
    }

    #[test]
    fn events_expire() {
        let mut w = SlidingWindowCounter::one_second();
        w.record_at(0, 100);
        assert_eq!(w.count_at(SEC / 2), 100);
        assert_eq!(w.count_at(2 * SEC), 0, "all expired after 2 s");
        assert_eq!(w.lifetime_count(), 100);
    }

    #[test]
    fn rate_matches_count() {
        let mut w = SlidingWindowCounter::one_second();
        for i in 0..1000u64 {
            w.record_at(i * SEC / 1000, 1);
        }
        let rate = w.rate_at(SEC - 1);
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate = {rate}");
    }

    #[test]
    fn partial_expiry_slides() {
        let mut w = SlidingWindowCounter::new(SEC, 10);
        // 10 events at t = 0, 10 more at t = 0.5 s.
        w.record_at(0, 10);
        w.record_at(SEC / 2, 10);
        // At t = 1.05 s the first batch has expired, the second has not.
        assert_eq!(w.count_at(SEC + SEC / 20), 10);
    }

    #[test]
    fn burst_counting() {
        let mut w = SlidingWindowCounter::one_second();
        w.record_at(100, 5);
        w.record_at(100, 3);
        assert_eq!(w.count_at(100), 8);
    }

    #[test]
    fn long_idle_then_resume() {
        let mut w = SlidingWindowCounter::one_second();
        w.record_at(0, 7);
        // Jump far beyond the window (tests the wrap-around expiry).
        assert_eq!(w.count_at(1000 * SEC), 0);
        w.record_at(1000 * SEC, 3);
        assert_eq!(w.count_at(1000 * SEC), 3);
    }

    #[test]
    fn sub_bucket_resolution() {
        let mut w = SlidingWindowCounter::new(SEC, 100);
        assert_eq!(w.count_at(0), 0);
        w.record_at(0, 1);
        w.record_at(SEC / 100 * 99, 1);
        assert_eq!(w.count_at(SEC / 100 * 99), 2);
        // First event expires one bucket later.
        assert_eq!(w.count_at(SEC + SEC / 100), 1);
    }
}
