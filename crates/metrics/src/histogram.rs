//! Log-bucketed latency histogram.
//!
//! Latencies in the evaluation span six orders of magnitude (sub-ms to
//! tens of seconds when the RC baseline stalls), so buckets grow
//! geometrically: each bucket covers a fixed 5% ratio (`GROWTH = 1.05`,
//! i.e. `ln 10 / ln 1.05 ≈ 47` buckets per decade), bounding quantile
//! error to the bucket width while keeping the histogram a few KB.

/// Geometric bucket growth factor (each bucket's upper bound is 5% above
/// the previous). Quantile estimates are accurate to within 5%.
const GROWTH: f64 = 1.05;

/// Smallest resolvable latency in nanoseconds; everything below lands in
/// bucket 0.
const MIN_NS: f64 = 1_000.0; // 1 µs

/// Number of buckets: covers 1 µs · 1.05^N; N = 900 reaches ~1.6e22 ns,
/// far beyond any plausible latency.
const BUCKETS: usize = 900;

/// A latency histogram with logarithmic buckets.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: f64,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0.0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if (ns as f64) <= MIN_NS {
            return 0;
        }
        let idx = ((ns as f64) / MIN_NS).ln() / GROWTH.ln();
        (idx.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper bound (ns) of bucket `i`.
    fn bucket_upper(i: usize) -> f64 {
        MIN_NS * GROWTH.powi(i as i32)
    }

    /// Records one latency observation in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as f64;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns / self.total as f64
        }
    }

    /// Maximum recorded latency (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Minimum recorded latency (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) in nanoseconds, estimated at bucket
    /// resolution (within 5%). Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket estimate into the observed range so
                // p100 never exceeds the true max.
                return Self::bucket_upper(i).min(self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// Median (p50) in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 99th percentile in nanoseconds — the tail metric of Figure 11.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_ns = 0.0;
        self.max_ns = 0;
        self.min_ns = u64::MAX;
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean_ms", &(self.mean_ns() / 1e6))
            .field("p50_ms", &(self.p50_ns() / 1e6))
            .field("p99_ms", &(self.p99_ns() / 1e6))
            .field("max_ms", &(self.max_ns() as f64 / 1e6))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.p99_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [1_000_000u64, 2_000_000, 3_000_000] {
            h.record(ns);
        }
        assert!((h.mean_ns() - 2_000_000.0).abs() < 1e-6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), 3_000_000);
        assert_eq!(h.min_ns(), 1_000_000);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 ms uniformly.
        for i in 1..=1000u64 {
            h.record(i * 1_000_000);
        }
        let p50 = h.p50_ns() / 1e6;
        assert!((p50 - 500.0).abs() / 500.0 < 0.06, "p50 = {p50} ms");
        let p99 = h.p99_ns() / 1e6;
        assert!((p99 - 990.0).abs() / 990.0 < 0.06, "p99 = {p99} ms");
    }

    #[test]
    fn p100_never_exceeds_max() {
        let mut h = LatencyHistogram::new();
        h.record(123_456_789);
        assert!(h.quantile_ns(1.0) <= 123_456_789.0 + 1.0);
    }

    #[test]
    fn sub_microsecond_lands_in_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(999);
        assert_eq!(h.count(), 2);
        assert!(h.p50_ns() <= 1_000.0);
    }

    #[test]
    fn huge_latency_saturates_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.p99_ns() > 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000_000);
        b.record(9_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ns() - 5_000_000.0).abs() < 1.0);
        assert_eq!(a.max_ns(), 9_000_000);
        assert_eq!(a.min_ns(), 1_000_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(5_000_000);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().quantile_ns(1.5);
    }

    #[test]
    fn orders_of_magnitude_resolved() {
        // The histogram must distinguish 1 ms from 100 ms from 10 s —
        // the spread between Elasticutor and RC in Figure 6b.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(1_000_000); // 1 ms
        }
        for _ in 0..100 {
            h.record(10_000_000_000); // 10 s
        }
        let p25 = h.quantile_ns(0.25) / 1e6;
        let p75 = h.quantile_ns(0.75) / 1e6;
        assert!(p25 < 1.1, "p25 = {p25} ms");
        assert!(p75 > 9_000.0, "p75 = {p75} ms");
    }
}
