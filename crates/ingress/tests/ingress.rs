//! Integration tests for the TCP ingress plane and file replay:
//! protocol-fault containment, per-connection FIFO into a live DAG,
//! credit-based backpressure, and deterministic replay.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_core::wire::WireError;
use elasticutor_ingress::{
    write_record_frame, write_replay_file, FileReplaySource, IngressConfig, IngressError,
    TcpIngress,
};
use elasticutor_runtime::{
    spawn_source, ExecutorConfig, FifoChecker, Ingest, Pipeline, Record, RecordBatch,
};

/// Spin-waits (with sleeps) until `cond` holds or the deadline passes.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// An [`Ingest`] target that records everything and can be gated shut:
/// while closed, `try_ingest_batch` rejects the whole batch (the
/// non-blocking admission failure ingress must absorb).
#[derive(Default)]
struct Capture {
    records: Mutex<RecordBatch>,
    accepted: AtomicU64,
    open: AtomicBool,
}

impl Capture {
    fn new(open: bool) -> Arc<Self> {
        let c = Arc::new(Self::default());
        c.open.store(open, Ordering::Release);
        c
    }

    fn taken(&self) -> RecordBatch {
        self.records.lock().unwrap().clone()
    }
}

impl Ingest for Capture {
    fn ingest_batch(&self, batch: RecordBatch) {
        self.accepted
            .fetch_add(batch.len() as u64, Ordering::AcqRel);
        self.records.lock().unwrap().extend(batch);
    }

    fn try_ingest_batch(&self, batch: RecordBatch) -> Result<(), RecordBatch> {
        if !self.open.load(Ordering::Acquire) {
            return Err(batch);
        }
        self.ingest_batch(batch);
        Ok(())
    }

    fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Acquire)
    }
}

fn records_for(key: u64, seqs: std::ops::Range<u64>, payload: &[u8]) -> RecordBatch {
    seqs.map(|s| Record::new(Key(key), Bytes::copy_from_slice(payload)).with_seq(s))
        .collect()
}

#[test]
fn malformed_frame_disconnects_only_the_offender() {
    let capture = Capture::new(true);
    let ingress = TcpIngress::bind(
        IngressConfig::default(),
        Arc::clone(&capture) as Arc<dyn Ingest>,
    )
    .expect("bind ingress");
    let addr = ingress.local_addr();

    // Offender: one valid batch, then bytes that are not a frame.
    let mut bad = TcpStream::connect(addr).expect("connect offender");
    write_record_frame(&mut bad, &records_for(1, 0..5, b"ok")).unwrap();
    bad.write_all(&[0xFF; 64]).unwrap();
    bad.flush().unwrap();

    // Bystander on its own connection: valid traffic throughout.
    let mut good = TcpStream::connect(addr).expect("connect bystander");
    for round in 0..4u64 {
        write_record_frame(
            &mut good,
            &records_for(2, round * 10..(round + 1) * 10, b"ok"),
        )
        .unwrap();
    }
    good.flush().unwrap();

    assert!(
        wait_until(Duration::from_secs(5), || {
            let s = ingress.stats();
            s.protocol_errors == 1 && s.records_delivered == 45
        }),
        "expected 1 protocol error and 45 delivered records, got {:?}",
        ingress.stats()
    );

    // The error is typed — the exact wire violation is observable.
    match ingress.take_last_error() {
        Some(IngressError::Wire(WireError::BadVersion(0xFF))) => {}
        other => panic!("expected typed BadVersion error, got {other:?}"),
    }

    // The offender's pre-fault records were kept, the bystander's all
    // arrived, and the bystander connection still works.
    write_record_frame(&mut good, &records_for(2, 100..101, b"ok")).unwrap();
    good.flush().unwrap();
    assert!(wait_until(Duration::from_secs(5), || capture.accepted() == 46));

    let stats = ingress.shutdown();
    assert_eq!(stats.records_in, stats.records_delivered, "conservation");
    let by_key = |k: u64| capture.taken().iter().filter(|r| r.key == Key(k)).count();
    assert_eq!(by_key(1), 5);
    assert_eq!(by_key(2), 41);
}

#[test]
fn per_connection_fifo_into_a_live_pipeline() {
    const CONNS: u64 = 8;
    const PER_CONN: u64 = 2_000;

    let fifo = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let sink_fifo = Arc::clone(&fifo);
    let sink_count = Arc::clone(&processed);
    let pipe = Arc::new(
        Pipeline::builder()
            .stage(
                "check",
                ExecutorConfig {
                    num_shards: 32,
                    initial_tasks: 2,
                    ..ExecutorConfig::default()
                },
                move |r: &Record, _s: &elasticutor_state::StateHandle| {
                    sink_fifo.observe(r.key, r.seq);
                    sink_count.fetch_add(1, Ordering::AcqRel);
                    Vec::new()
                },
            )
            .capacity(1024)
            .build(),
    );

    let ingress = TcpIngress::bind(
        IngressConfig {
            readers: 3,
            ..IngressConfig::default()
        },
        Arc::clone(&pipe) as Arc<dyn Ingest>,
    )
    .expect("bind ingress");
    let addr = ingress.local_addr();

    // Each connection owns one key and writes strictly increasing seqs,
    // so per-key FIFO downstream == per-connection FIFO through ingress.
    let clients: Vec<_> = (0..CONNS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect client");
                for start in (1..=PER_CONN).step_by(50) {
                    let end = (start + 50).min(PER_CONN + 1);
                    write_record_frame(&mut stream, &records_for(c, start..end, b"x")).unwrap();
                }
                stream.flush().unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    assert!(
        wait_until(Duration::from_secs(30), || {
            processed.load(Ordering::Acquire) == CONNS * PER_CONN
        }),
        "pipeline processed {} of {} records",
        processed.load(Ordering::Acquire),
        CONNS * PER_CONN
    );

    let stats = ingress.shutdown();
    assert_eq!(stats.records_in, CONNS * PER_CONN);
    assert_eq!(stats.records_delivered, CONNS * PER_CONN);
    assert_eq!(stats.protocol_errors, 0);
    assert!(fifo.is_clean(), "FIFO violations: {:?}", fifo.violations());
    assert_eq!(fifo.keys_seen() as u64, CONNS);

    Arc::try_unwrap(pipe)
        .unwrap_or_else(|_| panic!("ingress threads released the pipeline"))
        .shutdown();
}

#[test]
fn credit_backpressure_stalls_the_socket_and_resumes() {
    const TOTAL: u64 = 2_000;
    let capture = Capture::new(false); // gate shut: DAG "paused"
    let ingress = TcpIngress::bind(
        IngressConfig {
            readers: 1,
            credit: 64,
            read_buffer: 1024,
            ..IngressConfig::default()
        },
        Arc::clone(&capture) as Arc<dyn Ingest>,
    )
    .expect("bind ingress");

    let mut stream = TcpStream::connect(ingress.local_addr()).expect("connect");
    for seq in 1..=TOTAL {
        write_record_frame(&mut stream, &records_for(7, seq..seq + 1, b"bp")).unwrap();
    }
    stream.flush().unwrap();

    // The reader must stall: credit exhausted, socket muted.
    assert!(
        wait_until(Duration::from_secs(5), || ingress.stats().stalls >= 1),
        "no stall recorded: {:?}",
        ingress.stats()
    );
    std::thread::sleep(Duration::from_millis(100));
    let stalled = ingress.stats();
    assert_eq!(stalled.records_delivered, 0, "gate is shut");
    assert!(
        stalled.records_in < 500,
        "decoded backlog must stay near the credit, got {}",
        stalled.records_in
    );

    // Un-pause the DAG: everything drains, socket re-arms, intake
    // completes, and order survived the stall/resume cycles.
    capture.open.store(true, Ordering::Release);
    assert!(
        wait_until(Duration::from_secs(10), || capture.accepted() == TOTAL),
        "delivered {} of {TOTAL} after resume",
        capture.accepted()
    );
    let stats = ingress.shutdown();
    assert_eq!(stats.records_in, TOTAL);
    assert_eq!(stats.records_delivered, TOTAL);

    let seqs: Vec<u64> = capture.taken().iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (1..=TOTAL).collect::<Vec<_>>(), "order broken");
}

#[test]
fn file_replay_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("elasticutor-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("capture.replay");

    let original: RecordBatch = (0..1_000u64)
        .map(|i| {
            Record::new(
                Key(i % 13),
                Bytes::from(vec![(i % 251) as u8; (i % 7) as usize]),
            )
            .with_seq(i)
        })
        .collect();
    let written = write_replay_file(&path, &original, 37).expect("write replay");
    assert_eq!(written, 1_000);

    let replay_once = || {
        let capture = Capture::new(true);
        let source = FileReplaySource::open(&path).expect("open replay");
        let handle = spawn_source(
            "replay",
            source,
            Arc::clone(&capture) as Arc<dyn Ingest>,
            64,
        );
        let pumped = handle.join();
        assert_eq!(pumped, 1_000);
        capture.taken()
    };

    let a = replay_once();
    let b = replay_once();
    assert_eq!(a.len(), original.len());
    for ((x, y), o) in a.iter().zip(&b).zip(&original) {
        assert_eq!((x.key, x.seq, &x.payload), (y.key, y.seq, &y.payload));
        assert_eq!((x.key, x.seq, &x.payload), (o.key, o.seq, &o.payload));
    }
    std::fs::remove_dir_all(&dir).ok();
}
