//! Nonblocking epoll TCP ingress.
//!
//! [`TcpIngress`] turns a listening socket into a [`Ingest`] feeder: an
//! acceptor thread plus `readers` reader threads, each running its own
//! level-triggered epoll loop over the connections pinned to it. A
//! connection lives on one reader for its whole life, so the records of
//! one connection enter the DAG in exactly the byte order the client
//! wrote them (per-connection FIFO — the network analog of the §2.1
//! per-key ordering requirement).
//!
//! # Credit-based backpressure
//!
//! Each connection holds at most `credit` decoded-but-undelivered
//! records. Delivery uses [`Ingest::try_ingest_batch`], the non-blocking
//! edge-budget admission path, so a full DAG never blocks a reader
//! thread; rejected suffixes are pushed back in order and retried. When
//! a connection's backlog reaches its credit the reader *mutes* its
//! epoll registration (interest mask 0) and stops reading the socket —
//! the kernel receive buffer fills, the TCP window closes, and the
//! remote sender stalls. Once the DAG drains the backlog below half the
//! credit the registration is re-armed. Memory per connection is thereby
//! bounded by `credit` records plus one socket read buffer, no matter
//! how slow the DAG runs.
//!
//! # Failure containment
//!
//! A client that breaks the framing protocol (bad version, oversized
//! length, corrupt batch, unknown message type) is disconnected with a
//! typed [`IngressError`] — records decoded before the bad frame are
//! still delivered, every other connection is untouched, and nothing
//! panics. Stats record the error and [`TcpIngress::take_last_error`]
//! exposes the most recent one for inspection.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use epoll::{Epoll, EventFd, EPOLLIN};

use elasticutor_runtime::{Ingest, Record};

use crate::codec::{decode_batch, FrameScanner, RECORD_FRAME};
use crate::IngressError;

/// Reserved epoll cookie for a thread's wakeup doorbell.
const BELL: u64 = u64::MAX;
/// Epoll cookie of the listening socket on the acceptor thread.
const LISTENER: u64 = 0;

/// Tuning knobs for [`TcpIngress::bind`].
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Number of reader threads; connections are pinned round-robin.
    pub readers: usize,
    /// Per-connection ceiling of decoded-but-undelivered records before
    /// the socket is muted (credit-based backpressure).
    pub credit: usize,
    /// Largest batch handed to the [`Ingest`] target per admission call.
    pub max_batch: usize,
    /// Socket read buffer size in bytes.
    pub read_buffer: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            readers: 2,
            credit: 1024,
            max_batch: 256,
            read_buffer: 64 << 10,
        }
    }
}

/// Monotonic ingress counters, shared by all ingress threads.
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    closed: AtomicU64,
    protocol_errors: AtomicU64,
    frames_in: AtomicU64,
    records_in: AtomicU64,
    records_delivered: AtomicU64,
    bytes_in: AtomicU64,
    stalls: AtomicU64,
}

/// A point-in-time copy of the ingress counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Connections fully closed (peer EOF, error, or protocol fault).
    pub closed: u64,
    /// Connections dropped for speaking the protocol wrong.
    pub protocol_errors: u64,
    /// Record frames decoded.
    pub frames_in: u64,
    /// Records decoded off sockets.
    pub records_in: u64,
    /// Records delivered into the [`Ingest`] target.
    pub records_delivered: u64,
    /// Raw socket bytes read.
    pub bytes_in: u64,
    /// Times a connection was muted because its credit ran out.
    pub stalls: u64,
}

impl Stats {
    fn snapshot(&self) -> IngressStats {
        IngressStats {
            accepted: self.accepted.load(Ordering::Acquire),
            closed: self.closed.load(Ordering::Acquire),
            protocol_errors: self.protocol_errors.load(Ordering::Acquire),
            frames_in: self.frames_in.load(Ordering::Acquire),
            records_in: self.records_in.load(Ordering::Acquire),
            records_delivered: self.records_delivered.load(Ordering::Acquire),
            bytes_in: self.bytes_in.load(Ordering::Acquire),
            stalls: self.stalls.load(Ordering::Acquire),
        }
    }
}

/// One reader-thread mailbox: the acceptor hands off new connections
/// through the channel and rings the bell to unpark the epoll wait.
struct ReaderPost {
    tx: Sender<TcpStream>,
    bell: Arc<EventFd>,
}

/// A running TCP ingress endpoint. Dropping it without calling
/// [`TcpIngress::shutdown`] aborts the threads less gracefully (they
/// still exit, but undelivered decoded records are flushed blocking on
/// the target either way).
pub struct TcpIngress {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<Stats>,
    last_error: Arc<Mutex<Option<IngressError>>>,
    posts: Vec<ReaderPost>,
    acceptor_bell: Arc<EventFd>,
    acceptor: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpIngress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpIngress")
            .field("local_addr", &self.local_addr)
            .field("readers", &self.readers.len())
            .finish_non_exhaustive()
    }
}

impl TcpIngress {
    /// Binds the listener and spawns the acceptor and reader threads.
    /// Every decoded record is pushed into `target` (a [`Pipeline`],
    /// [`LiveDag`] port, executor, or any other [`Ingest`]).
    ///
    /// [`Pipeline`]: elasticutor_runtime::Pipeline
    /// [`LiveDag`]: elasticutor_runtime::LiveDag
    pub fn bind(config: IngressConfig, target: Arc<dyn Ingest>) -> io::Result<TcpIngress> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::default());
        let last_error = Arc::new(Mutex::new(None));

        let n_readers = config.readers.max(1);
        let mut posts = Vec::with_capacity(n_readers);
        let mut readers = Vec::with_capacity(n_readers);
        for i in 0..n_readers {
            let (tx, rx) = unbounded();
            let bell = Arc::new(EventFd::new()?);
            posts.push(ReaderPost {
                tx,
                bell: Arc::clone(&bell),
            });
            let reader = ReaderThread {
                rx,
                bell,
                stop: Arc::clone(&stop),
                stats: Arc::clone(&stats),
                last_error: Arc::clone(&last_error),
                target: Arc::clone(&target),
                credit: config.credit.max(1),
                max_batch: config.max_batch.max(1),
                read_buffer: config.read_buffer.max(512),
            };
            readers.push(
                std::thread::Builder::new()
                    .name(format!("ingress-reader-{i}"))
                    .spawn(move || reader.run())
                    .expect("spawn ingress reader"),
            );
        }

        let acceptor_bell = Arc::new(EventFd::new()?);
        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let bell = Arc::clone(&acceptor_bell);
            let mailboxes: Vec<(Sender<TcpStream>, Arc<EventFd>)> = posts
                .iter()
                .map(|p| (p.tx.clone(), Arc::clone(&p.bell)))
                .collect();
            std::thread::Builder::new()
                .name("ingress-acceptor".to_string())
                .spawn(move || accept_loop(listener, bell, mailboxes, stop, stats))
                .expect("spawn ingress acceptor")
        };

        Ok(TcpIngress {
            local_addr,
            stop,
            stats,
            last_error,
            posts,
            acceptor_bell,
            acceptor: Some(acceptor),
            readers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the ingress counters.
    pub fn stats(&self) -> IngressStats {
        self.stats.snapshot()
    }

    /// Takes the most recent protocol error, if any connection was
    /// dropped for one since the last call.
    pub fn take_last_error(&self) -> Option<IngressError> {
        self.last_error.lock().expect("ingress error slot").take()
    }

    /// Stops accepting, delivers every already-decoded record into the
    /// target (blocking), joins all threads, and returns final stats.
    /// Bytes still in kernel socket buffers at this point are dropped —
    /// shutdown is "stop the intake", not "drain the world".
    pub fn shutdown(mut self) -> IngressStats {
        self.stop.store(true, Ordering::Release);
        self.acceptor_bell.ring();
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for post in &self.posts {
            post.bell.ring();
        }
        for t in self.readers.drain(..) {
            let _ = t.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for TcpIngress {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.acceptor_bell.ring();
        for post in &self.posts {
            post.bell.ring();
        }
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in self.readers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Accepts connections and deals them round-robin to the readers.
fn accept_loop(
    listener: TcpListener,
    bell: Arc<EventFd>,
    mailboxes: Vec<(Sender<TcpStream>, Arc<EventFd>)>,
    stop: Arc<AtomicBool>,
    stats: Arc<Stats>,
) {
    let epoll = Epoll::new().expect("acceptor epoll");
    epoll
        .add(listener.as_raw_fd(), EPOLLIN, LISTENER)
        .expect("register listener");
    epoll
        .add(bell.raw_fd(), EPOLLIN, BELL)
        .expect("register acceptor bell");

    let mut events = Vec::new();
    let mut next = 0usize;
    loop {
        if epoll.wait(&mut events, 500).is_err() {
            continue;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        for ev in &events {
            if ev.data == BELL {
                bell.drain();
                continue;
            }
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        stats.accepted.fetch_add(1, Ordering::AcqRel);
                        let (tx, reader_bell) = &mailboxes[next % mailboxes.len()];
                        next += 1;
                        if tx.send(stream).is_ok() {
                            reader_bell.ring();
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    // Transient accept failures (per-process fd limit,
                    // aborted handshake): drop that one attempt.
                    Err(_) => break,
                }
            }
        }
    }
}

/// One pinned connection on a reader thread.
struct Conn {
    stream: TcpStream,
    fd: i32,
    token: u64,
    scanner: FrameScanner,
    /// Decoded, not yet admitted into the DAG. Bounded by the credit.
    pending: VecDeque<Record>,
    /// Socket interest withdrawn (credit exhausted).
    muted: bool,
    /// No more bytes will arrive (EOF, I/O error, or protocol fault);
    /// the conn is removed once `pending` drains.
    finished: bool,
}

/// State and main loop of one reader thread.
struct ReaderThread {
    rx: Receiver<TcpStream>,
    bell: Arc<EventFd>,
    stop: Arc<AtomicBool>,
    stats: Arc<Stats>,
    last_error: Arc<Mutex<Option<IngressError>>>,
    target: Arc<dyn Ingest>,
    credit: usize,
    max_batch: usize,
    read_buffer: usize,
}

impl ReaderThread {
    fn run(self) {
        let epoll = Epoll::new().expect("reader epoll");
        epoll
            .add(self.bell.raw_fd(), EPOLLIN, BELL)
            .expect("register reader bell");

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut buf = vec![0u8; self.read_buffer];
        let mut events = Vec::new();
        let mut next_token: u64 = 1;

        loop {
            // Short timeout while records are parked so admission
            // retries promptly; long otherwise (the bell cuts through).
            let parked = conns.values().any(|c| !c.pending.is_empty());
            let timeout = if parked { 1 } else { 250 };
            if epoll.wait(&mut events, timeout).is_err() {
                continue;
            }

            for ev in &events {
                if ev.data == BELL {
                    self.bell.drain();
                    while let Ok(stream) = self.rx.try_recv() {
                        let fd = stream.as_raw_fd();
                        let token = next_token;
                        next_token += 1;
                        if epoll.add(fd, EPOLLIN, token).is_ok() {
                            conns.insert(
                                token,
                                Conn {
                                    stream,
                                    fd,
                                    token,
                                    scanner: FrameScanner::new(),
                                    pending: VecDeque::new(),
                                    muted: false,
                                    finished: false,
                                },
                            );
                        }
                    }
                    continue;
                }
                if let Some(conn) = conns.get_mut(&ev.data) {
                    self.read_conn(conn, &epoll, &mut buf, ev.closed());
                }
            }

            if self.stop.load(Ordering::Acquire) {
                // Blocking final flush: every decoded record reaches the
                // target so intake counters stay conserved.
                for conn in conns.values_mut() {
                    let remaining: Vec<Record> = conn.pending.drain(..).collect();
                    if !remaining.is_empty() {
                        self.stats
                            .records_delivered
                            .fetch_add(remaining.len() as u64, Ordering::AcqRel);
                        self.target.ingest_batch(remaining);
                    }
                }
                return;
            }

            self.flush_and_rearm(&epoll, &mut conns);
        }
    }

    /// Drains the socket until `WouldBlock`, EOF, or credit exhaustion,
    /// decoding complete frames into `conn.pending`.
    fn read_conn(&self, conn: &mut Conn, epoll: &Epoll, buf: &mut [u8], closed: bool) {
        if conn.finished {
            return;
        }
        if conn.muted {
            // Interest mask 0 still reports EPOLLERR/EPOLLHUP (a reset
            // peer). The kernel discarded any buffered data with the
            // reset, so finish the conn rather than busy-spin on the
            // unmaskable level-triggered event.
            if closed {
                self.finish_conn(conn, epoll, None);
            }
            return;
        }
        loop {
            if conn.pending.len() >= self.credit {
                return; // flush_and_rearm will mute below
            }
            match conn.stream.read(buf) {
                Ok(0) => {
                    self.finish_conn(conn, epoll, None);
                    return;
                }
                Ok(n) => {
                    self.stats.bytes_in.fetch_add(n as u64, Ordering::AcqRel);
                    conn.scanner.extend(&buf[..n]);
                    if let Err(e) = self.drain_frames(conn) {
                        self.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
                        self.finish_conn(conn, epoll, Some(e));
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.finish_conn(conn, epoll, None);
                    return;
                }
            }
        }
    }

    /// Decodes every complete frame currently buffered for `conn`.
    fn drain_frames(&self, conn: &mut Conn) -> Result<(), IngressError> {
        loop {
            match conn.scanner.next_frame() {
                Ok(None) => return Ok(()),
                Ok(Some((RECORD_FRAME, payload))) => {
                    let records = decode_batch(&payload).map_err(IngressError::Wire)?;
                    self.stats.frames_in.fetch_add(1, Ordering::AcqRel);
                    self.stats
                        .records_in
                        .fetch_add(records.len() as u64, Ordering::AcqRel);
                    conn.pending.extend(records);
                }
                Ok(Some((other, _))) => return Err(IngressError::UnknownFrame(other)),
                Err(e) => return Err(IngressError::Wire(e)),
            }
        }
    }

    /// Marks a connection as byte-stream-over: deregisters it from the
    /// epoll so it stops generating events, records the typed error when
    /// the cause was a protocol fault, and leaves `pending` for the
    /// flush phase — already-decoded records are still delivered.
    fn finish_conn(&self, conn: &mut Conn, epoll: &Epoll, error: Option<IngressError>) {
        if !conn.finished {
            conn.finished = true;
            let _ = epoll.delete(conn.fd);
        }
        if let Some(e) = error {
            *self.last_error.lock().expect("ingress error slot") = Some(e);
        }
    }

    /// Non-blocking admission of each connection's backlog, in arrival
    /// order, then the credit/mute bookkeeping.
    fn flush_and_rearm(&self, epoll: &Epoll, conns: &mut HashMap<u64, Conn>) {
        let mut done = Vec::new();
        for conn in conns.values_mut() {
            while !conn.pending.is_empty() {
                let take = self.max_batch.min(conn.pending.len());
                let chunk: Vec<Record> = conn.pending.drain(..take).collect();
                let offered = chunk.len();
                match self.target.try_ingest_batch(chunk) {
                    Ok(()) => {
                        self.stats
                            .records_delivered
                            .fetch_add(offered as u64, Ordering::AcqRel);
                    }
                    Err(rest) => {
                        // The un-admitted suffix comes back in order;
                        // park it at the front and retry next tick.
                        self.stats
                            .records_delivered
                            .fetch_add((offered - rest.len()) as u64, Ordering::AcqRel);
                        for r in rest.into_iter().rev() {
                            conn.pending.push_front(r);
                        }
                        break;
                    }
                }
            }

            if conn.finished {
                if conn.pending.is_empty() {
                    done.push(conn.token);
                }
                continue;
            }
            if !conn.muted && conn.pending.len() >= self.credit {
                if epoll.modify(conn.fd, 0, conn.token).is_ok() {
                    conn.muted = true;
                    self.stats.stalls.fetch_add(1, Ordering::AcqRel);
                }
            } else if conn.muted
                && conn.pending.len() < self.credit / 2
                && epoll.modify(conn.fd, EPOLLIN, conn.token).is_ok()
            {
                conn.muted = false;
            }
        }
        for token in done {
            conns.remove(&token);
            self.stats.closed.fetch_add(1, Ordering::AcqRel);
        }
    }
}
