//! Elasticutor ingress plane: how records get *into* the DAG from the
//! outside world.
//!
//! The runtime's [`Ingest`](elasticutor_runtime::Ingest) trait is the
//! seam: everything in this crate is a feeder that pushes records into
//! some `Arc<dyn Ingest>` — a [`Pipeline`](elasticutor_runtime::Pipeline),
//! a [`LiveDag`](elasticutor_runtime::LiveDag) source port, or a bare
//! executor. Two feeders are provided:
//!
//! * [`TcpIngress`] — a nonblocking epoll acceptor + reader-thread pool
//!   decoding length-prefixed record frames from thousands of concurrent
//!   TCP connections, with per-connection credit-based backpressure: a
//!   slow DAG stalls the sockets (TCP window closure) instead of
//!   ballooning server memory.
//! * [`FileReplaySource`] — deterministic replay of a captured record
//!   stream through the runtime's source pump.
//!
//! Both speak the same frame format ([`codec`]), so a TCP capture can be
//! replayed from disk byte-for-byte.

#![warn(missing_docs)]

pub mod codec;
pub mod replay;
pub mod tcp;

pub use codec::{decode_batch, encode_batch, write_record_frame, FrameScanner, RECORD_FRAME};
pub use replay::{write_replay_file, FileReplaySource, ReplayWriter};
pub use tcp::{IngressConfig, IngressStats, TcpIngress};

use elasticutor_core::wire::WireError;

/// Why an ingress connection (or replay stream) was rejected.
#[derive(Debug)]
pub enum IngressError {
    /// The byte stream violated the frame protocol (bad version,
    /// oversized length, truncated or corrupt batch payload).
    Wire(WireError),
    /// A structurally valid frame carried a message type ingress does
    /// not speak (only [`RECORD_FRAME`] is valid on an ingress socket).
    UnknownFrame(u8),
    /// An I/O error outside the protocol itself (file open, bind, …).
    Io(std::io::Error),
}

impl std::fmt::Display for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngressError::Wire(e) => write!(f, "ingress protocol error: {e}"),
            IngressError::UnknownFrame(t) => {
                write!(f, "ingress protocol error: unexpected frame type {t:#x}")
            }
            IngressError::Io(e) => write!(f, "ingress i/o error: {e}"),
        }
    }
}

impl std::error::Error for IngressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngressError::Wire(e) => Some(e),
            IngressError::UnknownFrame(_) => None,
            IngressError::Io(e) => Some(e),
        }
    }
}

impl From<WireError> for IngressError {
    fn from(e: WireError) -> Self {
        IngressError::Wire(e)
    }
}

impl From<std::io::Error> for IngressError {
    fn from(e: std::io::Error) -> Self {
        IngressError::Io(e)
    }
}
