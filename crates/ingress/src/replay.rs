//! Deterministic file replay.
//!
//! A replay file is just the ingress wire stream captured to disk: a
//! sequence of [`RECORD_FRAME`]s. [`ReplayWriter`] produces one,
//! [`FileReplaySource`] plays it back through the runtime's [`Source`]
//! pump — so a workload recorded once drives the DAG identically on
//! every run (keys, seqs, payloads, batch boundaries; only `created_ns`
//! is restamped at decode, because latency is measured from ingest).
//!
//! Benchmarks and regression tests use this to take the network out of
//! the loop while exercising the exact codec path TCP ingress uses.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

use elasticutor_core::wire::{read_frame, WireError};
use elasticutor_runtime::{Pull, Record, RecordBatch, Source};

use crate::codec::{decode_batch, write_record_frame, RECORD_FRAME};
use crate::IngressError;

/// Streams record batches into a replay file.
pub struct ReplayWriter {
    out: BufWriter<File>,
    records: u64,
}

impl ReplayWriter {
    /// Creates (truncates) `path` and returns a writer over it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            records: 0,
        })
    }

    /// Appends one batch as a single [`RECORD_FRAME`]. Batch boundaries
    /// are preserved by the file format and replayed as written.
    pub fn append(&mut self, records: &[Record]) -> Result<(), IngressError> {
        write_record_frame(&mut self.out, records)?;
        self.records += records.len() as u64;
        Ok(())
    }

    /// Flushes and closes the file, returning the total record count.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.records)
    }
}

/// Convenience: writes `records` to `path` as max-`batch`-sized frames.
pub fn write_replay_file(
    path: impl AsRef<Path>,
    records: &[Record],
    batch: usize,
) -> Result<u64, IngressError> {
    let mut w = ReplayWriter::create(path).map_err(IngressError::Io)?;
    for chunk in records.chunks(batch.max(1)) {
        w.append(chunk)?;
    }
    w.finish().map_err(IngressError::Io)
}

/// A [`Source`] that replays a capture file frame by frame.
///
/// Each [`Source::pull`] decodes at most one frame (already-decoded
/// records are served first), so pump batch sizes follow the recorded
/// batch boundaries. End of file ends the source cleanly; a malformed
/// file panics — replay files are build artifacts, and a corrupt one is
/// a bug to surface, not an input to tolerate.
pub struct FileReplaySource {
    input: BufReader<File>,
    pending: RecordBatch,
    served: usize,
    replayed: u64,
}

impl FileReplaySource {
    /// Opens `path` for replay.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            input: BufReader::new(File::open(path)?),
            pending: Vec::new(),
            served: 0,
            replayed: 0,
        })
    }

    /// Records handed to the pump so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }
}

impl Source for FileReplaySource {
    fn pull(&mut self, max: usize) -> Pull {
        if self.served == self.pending.len() {
            self.pending.clear();
            self.served = 0;
            match read_frame(&mut self.input) {
                Ok((RECORD_FRAME, payload)) => {
                    self.pending = decode_batch(&payload).expect("corrupt replay file");
                }
                Ok((other, _)) => panic!("replay file contains non-record frame {other:#x}"),
                Err(WireError::Io(io::ErrorKind::UnexpectedEof)) => return Pull::Done,
                Err(e) => panic!("corrupt replay file: {e}"),
            }
        }
        let take = max.min(self.pending.len() - self.served);
        let batch = self.pending[self.served..self.served + take].to_vec();
        self.served += take;
        self.replayed += batch.len() as u64;
        if batch.is_empty() {
            // A recorded empty frame: nothing to hand over this round.
            Pull::Idle
        } else {
            Pull::Batch(batch)
        }
    }
}
