//! Record framing for the ingress plane.
//!
//! Clients speak the workspace wire protocol ([`elasticutor_core::wire`]):
//! every message is a version/type/length-prefixed frame, and ingress
//! defines exactly one message type, [`RECORD_FRAME`], whose payload is a
//! batch of records:
//!
//! ```text
//! payload := count:u32  record*count
//! record  := key:u64  seq:u64  payload_len:u32  payload_bytes
//! ```
//!
//! All integers are little-endian, matching the rest of the wire module.
//! `created_ns` is deliberately *not* transported: latency is measured
//! from ingest, so the decoder restamps each batch with one
//! [`monotonic_ns`] read (the same single-clock-call batching trick the
//! in-process sources use).
//!
//! Two decode surfaces exist because the two ingress paths read
//! differently:
//!
//! * [`decode_batch`] — payload slice → records, for callers that
//!   already hold one whole frame (e.g. [`crate::replay`], which reads
//!   frames with the blocking [`elasticutor_core::wire::read_frame`]).
//! * [`FrameScanner`] — an incremental byte-stream scanner for the
//!   nonblocking TCP readers, which see frames sliced arbitrarily by
//!   the socket: feed it whatever `read(2)` returned, pull out every
//!   frame that has fully arrived.

use bytes::Bytes;
use elasticutor_core::wire::{
    self, put_bytes, put_u32, put_u64, ByteReader, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
    WIRE_VERSION,
};
use elasticutor_runtime::{monotonic_ns, Record, RecordBatch};

/// Wire message type for a record batch (`b'R'`).
pub const RECORD_FRAME: u8 = b'R';

/// Encodes a record batch into a [`RECORD_FRAME`] payload.
pub fn encode_batch(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + records.len() * 24);
    put_u32(&mut out, records.len() as u32);
    for r in records {
        put_u64(&mut out, r.key.value());
        put_u64(&mut out, r.seq);
        put_bytes(&mut out, &r.payload);
    }
    out
}

/// Writes one [`RECORD_FRAME`] (header + encoded batch) to `w`.
pub fn write_record_frame(
    w: &mut impl std::io::Write,
    records: &[Record],
) -> Result<(), WireError> {
    wire::write_frame(w, RECORD_FRAME, &encode_batch(records))
}

/// Decodes a [`RECORD_FRAME`] payload back into records.
///
/// Every record in the batch is stamped with the *current*
/// [`monotonic_ns`] — transport time is invisible to latency accounting,
/// which starts the clock at ingest.
pub fn decode_batch(payload: &[u8]) -> Result<RecordBatch, WireError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    let now = monotonic_ns();
    let mut records = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        let key = r.u64()?;
        let seq = r.u64()?;
        let bytes = r.bytes()?;
        records.push(Record::new_at(key.into(), Bytes::copy_from_slice(bytes), now).with_seq(seq));
    }
    if !r.is_empty() {
        return Err(WireError::Corrupt("trailing bytes after record batch"));
    }
    Ok(records)
}

/// Incremental frame scanner for a nonblocking byte stream.
///
/// The TCP readers hand it raw socket bytes via [`FrameScanner::extend`]
/// and drain complete frames with [`FrameScanner::next_frame`]; partial
/// frames stay buffered until the rest arrives. Header validation
/// (version, length ceiling) happens as soon as the six header bytes are
/// in, so an oversized or wrong-version frame is rejected before its
/// body is ever buffered.
#[derive(Debug, Default)]
pub struct FrameScanner {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameScanner {
    /// Creates an empty scanner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes (whatever the socket read returned).
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the live
        // tail, so steady-state extend/next cycles are O(bytes) total.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pulls the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "keep reading"; an error means the stream is not
    /// speaking the protocol and the connection should be dropped (a
    /// byte-stream scanner cannot resynchronize after a bad header).
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_LEN as usize {
            return Ok(None);
        }
        if avail[0] != WIRE_VERSION {
            return Err(WireError::BadVersion(avail[0]));
        }
        let msg_type = avail[1];
        let len = u32::from_le_bytes(avail[2..6].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(u64::from(len)));
        }
        let total = FRAME_HEADER_LEN as usize + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER_LEN as usize..total].to_vec();
        self.pos += total;
        Ok(Some((msg_type, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticutor_core::ids::Key;

    fn batch(n: u64) -> RecordBatch {
        (0..n)
            .map(|i| {
                Record::new(Key(i % 3), Bytes::from(vec![i as u8; i as usize % 5])).with_seq(i)
            })
            .collect()
    }

    #[test]
    fn batch_roundtrip_preserves_key_seq_payload() {
        let original = batch(17);
        let decoded = decode_batch(&encode_batch(&original)).unwrap();
        assert_eq!(decoded.len(), original.len());
        for (a, b) in original.iter().zip(&decoded) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn scanner_reassembles_byte_by_byte() {
        let mut wire_bytes = Vec::new();
        write_record_frame(&mut wire_bytes, &batch(4)).unwrap();
        write_record_frame(&mut wire_bytes, &batch(2)).unwrap();

        let mut scanner = FrameScanner::new();
        let mut frames = Vec::new();
        for b in &wire_bytes {
            scanner.extend(std::slice::from_ref(b));
            while let Some(f) = scanner.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, RECORD_FRAME);
        assert_eq!(decode_batch(&frames[0].1).unwrap().len(), 4);
        assert_eq!(decode_batch(&frames[1].1).unwrap().len(), 2);
        assert_eq!(scanner.buffered(), 0);
    }

    #[test]
    fn scanner_rejects_bad_version_and_oversized() {
        let mut s = FrameScanner::new();
        s.extend(&[9, b'R', 0, 0, 0, 0]);
        assert!(matches!(s.next_frame(), Err(WireError::BadVersion(9))));

        let mut s = FrameScanner::new();
        let mut hdr = vec![WIRE_VERSION, b'R'];
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        s.extend(&hdr);
        assert!(matches!(s.next_frame(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn decode_rejects_truncated_and_trailing() {
        let payload = encode_batch(&batch(3));
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
        let mut padded = payload;
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
    }
}
