//! The dynamic scheduler's performance model, stand-alone (§4.1).
//!
//! Models a 3-operator pipeline as a Jackson network of M/M/k stations
//! and walks through the paper's greedy core allocation: start every
//! executor at its stability minimum ⌊λ/μ⌋ + 1, then repeatedly grant the
//! core with the largest marginal latency gain until the latency target
//! is met. Prints each step so you can watch E[T] converge.
//!
//! Run with: `cargo run --release --example scheduler_model`

use elasticutor::queueing::jackson::{ExecutorLoad, JacksonNetwork};
use elasticutor::queueing::{allocate, AllocationRequest};

fn main() {
    // A parse → join → aggregate pipeline. Rates in tuples/s; the join is
    // the heavy station (μ = 400/s against λ = 900/s).
    let lambda0 = 1_000.0;
    let stations = [
        ("parse", ExecutorLoad::new(1_000.0, 2_000.0)),
        ("join", ExecutorLoad::new(900.0, 400.0)),
        ("aggregate", ExecutorLoad::new(900.0, 1_500.0)),
    ];
    let network = JacksonNetwork::new(lambda0, stations.iter().map(|(_, l)| *l).collect());

    // Stability floor: kj = ⌊λj/μj⌋ + 1.
    let mut k: Vec<u32> = network
        .loads()
        .iter()
        .map(ExecutorLoad::min_cores)
        .collect();
    println!("station         lambda      mu   k_min");
    for ((name, load), &kj) in stations.iter().zip(&k) {
        println!("{name:<12} {:>9.0} {:>7.0} {kj:>7}", load.lambda, load.mu);
    }
    println!(
        "\nE[T] at the stability floor: {:.2} ms",
        network.expected_latency(&k) * 1e3
    );

    // Greedy refinement toward a 5 ms end-to-end target.
    let target_s = 0.005;
    println!(
        "\ngreedy allocation toward E[T] <= {:.0} ms:",
        target_s * 1e3
    );
    while network.expected_latency(&k) > target_s {
        let (best, gain) = (0..k.len())
            .map(|j| (j, network.marginal_gain(&k, j)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gains"))
            .expect("nonempty");
        if gain <= 0.0 {
            break;
        }
        k[best] += 1;
        println!(
            "  +1 core to {:<12} -> k = {:?}, E[T] = {:.3} ms",
            stations[best].0,
            k,
            network.expected_latency(&k) * 1e3
        );
    }

    // The same decision through the packaged allocator.
    let outcome = allocate(&AllocationRequest {
        network: &network,
        latency_target: target_s,
        available_cores: 64,
    });
    println!(
        "\nallocate(): cores = {:?}, E[T] = {:.3} ms, meets target = {}",
        outcome.cores,
        outcome.expected_latency * 1e3,
        outcome.meets_target
    );
    assert_eq!(outcome.cores, k, "manual walk matches the allocator");
}
