//! Quickstart: a live elastic executor counting events per key.
//!
//! Shows the core executor-centric mechanisms on real threads:
//! 1. start an executor with one task (one core);
//! 2. stream keyed records through it while *adding cores on the fly*;
//! 3. rebalance shards across the grown task pool — no state moves,
//!    because all tasks share the in-process state store;
//! 4. read back per-key counts and the reassignment timings.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use elasticutor::runtime::Ingest;
use elasticutor::runtime::{ElasticExecutor, ExecutorConfig, Operator, Record};
use elasticutor::state::StateHandle;

/// Counts how many times each key has been seen, in shared state.
struct CountPerKey;

impl Operator for CountPerKey {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8-byte counter"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new() // sink operator: nothing to emit
    }
}

fn main() {
    // 1. One executor, 64 shards, starting on a single core.
    let exec = ElasticExecutor::start(
        ExecutorConfig {
            num_shards: 64,
            initial_tasks: 1,
            ..ExecutorConfig::default()
        },
        CountPerKey,
    );
    println!("started with tasks: {:?}", exec.tasks());

    // 2. Stream 100k records over 1000 keys; grow to 4 cores mid-stream.
    let total = 100_000u64;
    for i in 0..total {
        exec.ingest(Record::new((i % 1000).into(), Bytes::new()));
        if i == total / 4 {
            // The scheduler granted us three more cores.
            for _ in 0..3 {
                exec.add_task().expect("add task");
            }
            println!("scaled out to tasks: {:?}", exec.tasks());
            // 3. Spread the shards over the new tasks. Intra-process
            // state sharing makes this pure map surgery — zero bytes of
            // state move.
            let moves = exec.rebalance();
            println!("rebalance initiated {moves} shard moves");
        }
    }
    exec.wait_for_processed(total);

    // 4. Inspect results.
    let store = exec.state().clone();
    let count_of = |key: u64| -> u64 {
        let shard = {
            // Keys were hashed to shards by the routing table; ask the
            // store which shard holds the key by scanning (demo only).
            store
                .shards()
                .into_iter()
                .find(|&s| store.get(s, key.into()).is_some())
                .expect("key was counted")
        };
        u64::from_le_bytes(
            store
                .get(shard, key.into())
                .expect("present")
                .as_ref()
                .try_into()
                .expect("8-byte counter"),
        )
    };
    println!("count(key 0)   = {}", count_of(0));
    println!("count(key 999) = {}", count_of(999));

    let stats = exec.shutdown();
    println!(
        "processed {} records on {} reassignments; mean latency {:.1} us; state {} bytes",
        stats.processed,
        stats.reassignments.len(),
        stats.latency.mean_ns() / 1e3,
        stats.state_bytes,
    );
    assert_eq!(stats.processed, total);
}
