//! A pipeline delivering its outputs over TCP with a delivery contract:
//! the egress plane surviving the death of its sink.
//!
//! Shows the egress plane end to end:
//! 1. build a live `Pipeline` and attach a `TcpEgress` sink — every
//!    output batch lands in a disk-backed outbox before the network;
//! 2. deliver the first half of the stream to a **primary**
//!    `EgressServer` that persists its ACK watermark to a file;
//! 3. stop the primary mid-stream and bring up a **standby** on the
//!    pre-agreed address, sharing the watermark file;
//! 4. the egress retries the primary with backoff, fails over,
//!    rewinds to the standby's HELLO watermark and retransmits the
//!    unACKed window;
//! 5. check the contract: every record arrived, in per-key FIFO order,
//!    and — because the watermark dedups redelivery — exactly once.
//!
//! Run with: `cargo run --release --example tcp_egress`

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor::core::ids::Key;
use elasticutor::egress::{DeliverFn, EgressConfig, EgressServer, EgressServerConfig, TcpEgress};
use elasticutor::runtime::{Backoff, ExecutorConfig, FifoChecker, Ingest, Pipeline, Record};
use elasticutor::state::StateHandle;

const KEYS: u64 = 8;
const PER_KEY: u64 = 400;
const HALF: u64 = PER_KEY / 2;

/// The consumer: counts deliveries per key and checks per-key FIFO.
/// Primary and standby share it, the way two real sink replicas would
/// share a downstream store.
struct Consumer {
    fifo: FifoChecker,
    total: AtomicU64,
    by_key: Mutex<HashMap<u64, Vec<u64>>>,
}

impl Consumer {
    fn deliver_fn(self: &Arc<Self>) -> Box<DeliverFn> {
        let me = Arc::clone(self);
        Box::new(move |_seq, key, rec_seq, _payload| {
            me.fifo.observe(key, rec_seq);
            me.total.fetch_add(1, Ordering::AcqRel);
            me.by_key
                .lock()
                .unwrap()
                .entry(key.value())
                .or_default()
                .push(rec_seq);
        })
    }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cond(), "timed out waiting for {what}");
}

fn main() {
    let dir = std::env::temp_dir().join(format!("elasticutor-tcp-egress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create example dir");
    let watermark = dir.join("sink.watermark");

    let consumer = Arc::new(Consumer {
        fifo: FifoChecker::new(),
        total: AtomicU64::new(0),
        by_key: Mutex::new(HashMap::new()),
    });

    // 1. The primary sink, persisting its watermark across "restarts".
    let primary = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0").with_watermark_path(&watermark),
        consumer.deliver_fn(),
    )
    .expect("bind primary");

    // The standby's address is agreed up front (bind + drop keeps the
    // port free); the server itself comes up only after the primary dies.
    let standby_addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("pick standby port");
        let addr = l.local_addr().expect("standby addr").to_string();
        drop(l);
        addr
    };

    // 2. A one-stage pipeline passing records through to its output.
    let pipe = Pipeline::builder()
        .stage(
            "pass",
            ExecutorConfig {
                num_shards: 16,
                ..ExecutorConfig::default()
            },
            |r: &Record, _s: &StateHandle| vec![r.clone()],
        )
        .build();

    // 3. The egress sink: outbox on disk, snappy retry, standby wired.
    let egress = TcpEgress::new(
        EgressConfig::new(primary.local_addr().to_string(), dir.join("outbox"))
            .with_standby(&standby_addr)
            .with_retry(Backoff {
                base: Duration::from_millis(10),
                factor: 2.0,
                cap: Duration::from_millis(100),
                max_attempts: 3,
            })
            .with_ack_deadline(Duration::from_millis(300)),
    )
    .expect("create egress");
    let handle = egress.handle();
    let sink = pipe.attach_sink("tcp-out", egress);

    let feed = |from: u64, to: u64| {
        for s in from..=to {
            for k in 0..KEYS {
                pipe.ingest(Record::new(Key(k), Bytes::from(vec![k as u8; 32])).with_seq(s));
            }
        }
    };

    // First half flows DAG → outbox → primary; wait until it is ACKed.
    feed(1, HALF);
    wait_until(
        "primary to ack the first half",
        Duration::from_secs(20),
        || handle.stats().acked >= KEYS * HALF,
    );
    println!(
        "primary delivered {} records (watermark persisted), stopping it mid-stream",
        consumer.total.load(Ordering::Acquire)
    );

    // 4. The sink dies; the idle connection closes at its read timeout
    // and the sender starts its retry loop against a dead address.
    primary.shutdown();
    wait_until(
        "egress to notice the dead primary",
        Duration::from_secs(10),
        || {
            let s = handle.stats();
            !s.connected || s.connect_failures > 0
        },
    );

    // Its replacement reads the shared watermark file.
    let standby = EgressServer::bind(
        EgressServerConfig::new(&standby_addr).with_watermark_path(&watermark),
        consumer.deliver_fn(),
    )
    .expect("bind standby");

    // Second half: writes to the dead primary fail, the sender retries
    // with backoff, fails over, rewinds to the standby's HELLO
    // watermark and retransmits everything unACKed.
    feed(HALF + 1, PER_KEY);
    pipe.shutdown();
    let (egress, consumed) = sink.join();
    assert!(
        handle.drain(Duration::from_secs(30)),
        "outbox never drained into the standby"
    );
    let stats = egress.shutdown(Duration::from_secs(10));
    standby.shutdown();

    // 5. The contract held across the failure.
    let total = consumer.total.load(Ordering::Acquire);
    assert_eq!(consumed, KEYS * PER_KEY, "sink pump consumed the stream");
    assert_eq!(stats.acked, stats.last_appended, "outbox fully ACKed");
    assert!(
        stats.failovers >= 1,
        "expected a primary → standby failover"
    );
    assert_eq!(total, KEYS * PER_KEY, "exactly-once after watermark dedup");
    assert!(consumer.fifo.is_clean(), "per-key FIFO violated");
    let by_key = consumer.by_key.lock().unwrap();
    for k in 0..KEYS {
        assert_eq!(
            by_key[&k],
            (1..=PER_KEY).collect::<Vec<_>>(),
            "key {k} stream"
        );
    }

    println!(
        "delivered {total} records across the failover: \
         {} retransmitted, {} failovers, {} connects — \
         zero lost, zero duplicated, per-key FIFO intact",
        stats.records_retransmitted, stats.failovers, stats.connects
    );
    std::fs::remove_dir_all(&dir).ok();
}
