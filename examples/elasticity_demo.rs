//! The paper's headline comparison in one minute: static vs
//! resource-centric vs executor-centric on the same simulated cluster
//! under a dynamic workload.
//!
//! Runs the §5.1 micro-benchmark (Figure 5 topology) with key-frequency
//! shuffles at ω = 4/min on a 16-node × 8-core simulated cluster and
//! prints throughput, latency, and elasticity costs per paradigm — a
//! minimal Figure 6 data point. (Static needs many single-core
//! executors before hash-bucket skew hurts it, so the demo runs at a
//! meaningful scale; expect ~a minute in release mode.)
//!
//! Run with: `cargo run --release --example elasticity_demo`

use elasticutor::cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor::cluster::ClusterEngine;
use elasticutor::workload::MicroConfig;

fn main() {
    const SEC: u64 = 1_000_000_000;
    let modes = [
        EngineMode::Static,
        EngineMode::ResourceCentric,
        EngineMode::Elastic,
    ];

    println!("micro-benchmark, 16x8-core simulated cluster, omega = 4 shuffles/min");
    println!("offered 100k tuples/s, 1 ms/tuple, Zipf(0.5) over 10k keys\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "mode", "throughput", "avg latency", "p99 latency", "reassigns", "state moved"
    );

    for mode in modes {
        let micro = MicroConfig {
            rate: 100_000.0,
            omega: 4.0,
            generator_parallelism: 16,
            ..MicroConfig::default()
        };
        let mut cfg = ExperimentConfig::micro(mode, micro);
        cfg.cluster = ClusterConfig::small(16, 8);
        cfg.duration_ns = 45 * SEC;
        cfg.warmup_ns = 20 * SEC;
        let r = ClusterEngine::new(cfg).run();
        println!(
            "{:<12} {:>10.1}k {:>10.1}ms {:>10.1}ms {:>12} {:>10.1}MB",
            r.mode,
            r.throughput / 1e3,
            r.latency.mean_ns() / 1e6,
            r.latency.p99_ns() / 1e6,
            r.reassignments.len(),
            r.state_migration_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    println!("\nexpected shape (paper Figure 6): static lowest; RC pays for global");
    println!("synchronization on every shuffle; Elasticutor sustains the offered load");
}
