//! A live 4-operator elastic pipeline driven through a shifting load
//! spike.
//!
//! Topology: `parse → aggregate → audit → alert`, each stage a live
//! elastic executor with its own task threads, chained by the
//! [`Pipeline`] with bounded backpressure. A [`LiveController`] thread
//! samples per-stage load every 120 ms and reallocates task threads
//! across the stages with the paper's model-based scheduler (§4), while
//! the intra-executor balancer (§3.1) and the consistent shard
//! reassignment protocol (§3.3) keep each stage balanced — all while
//! records keep flowing.
//!
//! Each record carries per-stage cost hints in its payload, and the run
//! shifts where the work lands:
//!
//! 1. **audit-heavy** — `audit` is the hot stage and grows;
//! 2. **aggregate-heavy spike** — the heat moves to `aggregate`: the
//!    controller *steals* `audit`'s now-surplus task threads for
//!    `aggregate` (Algorithm 1's donor search), live;
//! 3. **cool-down** — light load; surplus threads drain back to the
//!    free pool.
//!
//! Watch the logged core counts move between the executors while
//! per-key FIFO order holds end to end and throughput tracks the
//! offered rate.
//!
//! Run with: `cargo run --release --example pipeline_demo`
//!
//! [`Pipeline`]: elasticutor::runtime::Pipeline
//! [`LiveController`]: elasticutor::runtime::LiveController

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor::runtime::Ingest;
use elasticutor::runtime::{
    ControllerConfig, ExecutorConfig, FifoChecker, Operator, Pipeline, Record,
};
use elasticutor::state::StateHandle;

/// Offered load during the hot phases, records per second.
const HOT_RATE: f64 = 6_000.0;
/// Offered load during cool-down.
const COOL_RATE: f64 = 800.0;
/// Task-thread budget shared by all four stages.
const TOTAL_CORES: u32 = 7;

/// Simulated per-record service: the payload carries one cost byte per
/// costly stage, in units of 10 µs.
fn stage_cost(record: &Record, stage_byte: usize) -> Duration {
    let units = record
        .payload
        .as_ref()
        .get(stage_byte)
        .copied()
        .unwrap_or(0);
    Duration::from_micros(u64::from(units) * 10)
}

/// Stage 1: cheap stateless parsing.
struct Parse;

impl Operator for Parse {
    fn process(&self, record: &Record, _state: &StateHandle) -> Vec<Record> {
        vec![record.clone()]
    }
}

/// Stage 2: keyed aggregation; cost driven by payload byte 0.
struct Aggregate;

impl Operator for Aggregate {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        std::thread::sleep(stage_cost(record, 0));
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8-byte counter"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        vec![record.clone()]
    }
}

/// Stage 3: audit trail; cost driven by payload byte 1.
struct Audit;

impl Operator for Audit {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        std::thread::sleep(stage_cost(record, 1));
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8-byte counter"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        vec![record.clone()]
    }
}

/// Stage 4: order-checking alert sink.
struct Alert {
    order: Arc<FifoChecker>,
    delivered: Arc<AtomicU64>,
}

impl Operator for Alert {
    fn process(&self, record: &Record, _state: &StateHandle) -> Vec<Record> {
        self.order.observe(record.key, record.seq);
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}

/// Submits `rate` records/s for `duration`, pacing on the monotonic
/// clock, with per-key sequence numbers and the phase's cost profile.
fn drive(
    pipe: &Pipeline,
    rate: f64,
    duration: Duration,
    costs: [u8; 2],
    seqs: &mut [u64],
    sent: &mut u64,
) {
    let gap = Duration::from_secs_f64(1.0 / rate);
    let payload = Bytes::copy_from_slice(&costs);
    let phase_start = Instant::now();
    let mut next = phase_start;
    while phase_start.elapsed() < duration {
        let key = *sent % seqs.len() as u64;
        seqs[key as usize] += 1;
        pipe.ingest(Record::new(key.into(), payload.clone()).with_seq(seqs[key as usize]));
        *sent += 1;
        next += gap;
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
    }
}

fn main() {
    let order = Arc::new(FifoChecker::new());
    let delivered = Arc::new(AtomicU64::new(0));
    let small = |shards: u32| ExecutorConfig {
        num_shards: shards,
        initial_tasks: 1,
        ..ExecutorConfig::default()
    };
    let pipe = Pipeline::builder()
        .stage("parse", small(16), Parse)
        .stage("aggregate", small(64), Aggregate)
        .stage("audit", small(64), Audit)
        .stage(
            "alert",
            small(16),
            Alert {
                order: Arc::clone(&order),
                delivered: Arc::clone(&delivered),
            },
        )
        .capacity(8_192)
        .controller(ControllerConfig {
            interval: Duration::from_millis(120),
            total_cores: TOTAL_CORES,
            latency_target: 0.05,
            verbose: true,
            ..ControllerConfig::default()
        })
        .build();

    // Sample sink throughput in the background.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let delivered = Arc::clone(&delivered);
        let stop = Arc::clone(&sampler_stop);
        std::thread::spawn(move || {
            let started = Instant::now();
            let mut series = Vec::new();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(250));
                series.push((started.elapsed(), delivered.load(Ordering::Relaxed)));
            }
            series
        })
    };

    let mut seqs = vec![0u64; 256];
    let mut sent = 0u64;
    // Phase 1: audit is hot (30 ⇒ 300 µs/record there; 6 kHz ⇒ ~1.8
    // cores of pure service demand, more once queueing is modeled).
    println!("== phase 1: audit-heavy at {HOT_RATE} rec/s ==");
    let phase1 = Duration::from_secs(3);
    drive(&pipe, HOT_RATE, phase1, [2, 30], &mut seqs, &mut sent);
    let phase1_end_ms = 3_000u64;
    // Phase 2: the heat shifts to aggregate at the same offered rate.
    println!("== phase 2: aggregate-heavy at {HOT_RATE} rec/s ==");
    drive(
        &pipe,
        HOT_RATE,
        Duration::from_secs(3),
        [30, 2],
        &mut seqs,
        &mut sent,
    );
    let phase2_end_ms = 6_000u64;
    // Phase 3: cool-down.
    println!("== phase 3: cool-down at {COOL_RATE} rec/s ==");
    drive(
        &pipe,
        COOL_RATE,
        Duration::from_secs(3),
        [2, 2],
        &mut seqs,
        &mut sent,
    );
    pipe.drain();
    sampler_stop.store(true, Ordering::Release);
    let series = sampler.join().expect("sampler exits");

    // Timeline of controller decisions: the logged core counts.
    let log = pipe.controller_log();
    println!("\n t(ms)  cores parse/aggregate/audit/alert   targets");
    for e in &log {
        println!(
            "{:>6}  {:>33}  {:>12}",
            e.at_ms,
            format!(
                "{}/{}/{}/{}",
                e.cores[0], e.cores[1], e.cores[2], e.cores[3]
            ),
            format!("{:?}", e.targets),
        );
    }
    println!("\n t(s)  sink throughput (rec/s)");
    let mut prev = (Duration::ZERO, 0u64);
    for &(t, n) in &series {
        let dt = (t - prev.0).as_secs_f64();
        if dt > 0.0 {
            println!(
                "{:>5.1}  {:>8.0}",
                t.as_secs_f64(),
                (n - prev.1) as f64 / dt
            );
        }
        prev = (t, n);
    }

    let stats = pipe.shutdown();
    println!(
        "\nsubmitted {sent}; delivered {}; shard moves per stage {:?}",
        delivered.load(Ordering::Relaxed),
        stats
            .iter()
            .map(|s| s.stats.reassignments.len())
            .collect::<Vec<_>>()
    );

    // The demo's claims, enforced.
    let in_window = |e: &&elasticutor::runtime::ControllerEvent, lo: u64, hi: u64| {
        e.at_ms >= lo && e.at_ms < hi
    };
    let audit_peak_p1 = log
        .iter()
        .filter(|e| in_window(e, 0, phase1_end_ms))
        .map(|e| e.cores[2])
        .max()
        .unwrap_or(1);
    let aggregate_peak_p2 = log
        .iter()
        .filter(|e| in_window(e, phase1_end_ms, phase2_end_ms))
        .map(|e| e.cores[1])
        .max()
        .unwrap_or(1);
    let audit_floor_p2 = log
        .iter()
        .filter(|e| in_window(e, phase1_end_ms + 1_000, phase2_end_ms))
        .map(|e| e.cores[2])
        .min()
        .unwrap_or(u32::MAX);
    let final_total: u32 = log.last().map(|e| e.cores.iter().sum()).unwrap_or(0);

    assert_eq!(
        delivered.load(Ordering::Relaxed),
        sent,
        "records lost in flight"
    );
    assert!(
        order.is_clean(),
        "per-key FIFO violated: {:?}",
        order.violations()
    );
    assert!(
        audit_peak_p1 >= 2,
        "audit never grew in phase 1 (peak {audit_peak_p1})"
    );
    assert!(
        aggregate_peak_p2 >= 2,
        "aggregate never grew in phase 2 (peak {aggregate_peak_p2})"
    );
    assert!(
        audit_floor_p2 < audit_peak_p1,
        "audit's threads were never reallocated away (phase-1 peak \
         {audit_peak_p1}, phase-2 floor {audit_floor_p2})"
    );
    assert!(
        final_total <= TOTAL_CORES,
        "final allocation {final_total} exceeds the budget {TOTAL_CORES}"
    );
    println!(
        "OK: audit {audit_peak_p1}→{audit_floor_p2} cores while aggregate grew to \
         {aggregate_peak_p2}; FIFO held; pipeline drained."
    );
}
