//! Real-time stock analytics on a live elastic executor — the paper's
//! motivating SSE scenario (§5.4) at laptop scale.
//!
//! An order stream keyed by stock id feeds an operator that keeps a
//! per-stock volume-weighted average price (VWAP) and emits an alert
//! whenever a trade prints more than 5% above it. Mid-run, a "hot stock"
//! regime shift concentrates the stream on a few stocks — the situation
//! where a static key partitioning melts down — and we respond the
//! executor-centric way: grant cores and rebalance shards, no state
//! migration, no stream interruption.
//!
//! Run with: `cargo run --release --example sse_analytics`

use bytes::Bytes;
use elasticutor::runtime::Ingest;
use elasticutor::runtime::{ElasticExecutor, ExecutorConfig, Operator, Record};
use elasticutor::state::StateHandle;
use elasticutor::workload::{SseConfig, SseWorkload, TupleSource};

/// Per-stock VWAP state: (total value traded, total volume), 16 bytes.
struct Vwap;

/// Encodes an order: price in cents and volume, 8 bytes each.
fn encode_order(price_cents: u64, volume: u64) -> Bytes {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&price_cents.to_le_bytes());
    buf[8..].copy_from_slice(&volume.to_le_bytes());
    Bytes::copy_from_slice(&buf)
}

fn decode_pair(b: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(b[..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
    )
}

impl Operator for Vwap {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        let (price, volume) = decode_pair(&record.payload);
        let mut alert = None;
        state.update(record.key, |old| {
            let (mut value, mut vol) = old.map_or((0u64, 0u64), |v| decode_pair(v));
            if let Some(vwap) = value.checked_div(vol) {
                if price > vwap + vwap / 20 {
                    // Trade printed >5% above VWAP: emit a price alarm.
                    alert = Some(Record::new(record.key, encode_order(price, vwap)));
                }
            }
            value += price * volume;
            vol += volume;
            Some(encode_order(value, vol))
        });
        alert.into_iter().collect()
    }
}

fn main() {
    let exec = ElasticExecutor::start(
        ExecutorConfig {
            num_shards: 256,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        Vwap,
    );

    // The synthetic SSE order stream: Zipf stock popularity with rotating
    // hot stocks (the Figure 15 dynamics).
    let mut sse = SseWorkload::new(SseConfig::default(), 42);
    let mut now_ns = 0u64;
    let total = 200_000u64;
    println!(
        "streaming {total} orders over {} stocks...",
        sse.config().num_stocks
    );

    for i in 0..total {
        let (gap, tuple) = sse.next_tuple(now_ns);
        now_ns += gap;
        // Synthesize price/volume from the tuple's key and time.
        let price_cents = 1_000 + (tuple.key.value() * 7 + now_ns / 1_000_000) % 500;
        let volume = 1 + now_ns % 97;
        exec.ingest(Record::new(tuple.key, encode_order(price_cents, volume)));

        if i == total / 2 {
            // Half-way: the hot-stock rotation has shifted load. Grant
            // two more cores and rebalance — the executor-centric answer
            // to a workload surge.
            exec.add_task().expect("grant core");
            exec.add_task().expect("grant core");
            let moves = exec.rebalance();
            println!(
                "regime shift at order {i}: scaled to {} tasks, {} shard moves (state stayed put)",
                exec.tasks().len(),
                moves
            );
        }
    }
    exec.wait_for_processed(total);

    // Drain the alert stream (batched: count records, not batches).
    let mut alerts = 0u64;
    while let Ok(batch) = exec.outputs().try_recv() {
        alerts += batch.len() as u64;
    }

    let stats = exec.shutdown();
    println!(
        "processed {} orders, emitted {alerts} price alarms, tracked {} bytes of VWAP state",
        stats.processed, stats.state_bytes
    );
    println!(
        "reassignments: {} (mean sync {:.0} us)",
        stats.reassignments.len(),
        if stats.reassignments.is_empty() {
            0.0
        } else {
            stats
                .reassignments
                .iter()
                .map(|&(sync, _)| sync as f64)
                .sum::<f64>()
                / stats.reassignments.len() as f64
                / 1e3
        }
    );
    assert_eq!(stats.processed, total);
}
