//! A live diamond topology under shifting branch-skewed load.
//!
//! Topology (all edges key-grouped):
//!
//! ```text
//!             ┌─→ enrich ─┐
//!   source ───┤           ├─→ merge ─→ sink
//!             └─→ count ──┘
//! ```
//!
//! Every source record flows down *both* branches (fan-out replicates
//! across consumers), so the merge is a two-input operator seeing each
//! record twice — once per upstream edge — and the sink verifies
//! per-key FIFO *per edge* (each branch tags its copies).
//!
//! A [`LiveController`] samples λ/μ per operator and runs the paper's
//! §4 scheduler over the whole graph. The run skews the load between
//! the branches:
//!
//! 1. **enrich-heavy** — `enrich` burns 300 µs/record, `count` 20 µs:
//!    the controller grows `enrich`;
//! 2. **count-heavy** — the costs flip: the controller pulls cores from
//!    the now-idle `enrich` branch and grants them to `count` — cores
//!    migrating *between the branches of the diamond*, the live
//!    Figure 7 analogue for non-linear graphs;
//! 3. **cool-down** — light load; surplus threads drain back.
//!
//! Run with: `cargo run --release --example dag_demo`
//!
//! [`LiveController`]: elasticutor::runtime::LiveController

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor::core::ids::Key;
use elasticutor::runtime::dag::LiveDag;
use elasticutor::runtime::Ingest;
use elasticutor::runtime::{ControllerConfig, ExecutorConfig, FifoChecker, Operator, Record};
use elasticutor::state::StateHandle;

/// Offered load during the hot phases, records per second.
const HOT_RATE: f64 = 6_000.0;
/// Offered load during cool-down.
const COOL_RATE: f64 = 800.0;
/// Task-thread budget shared by all five operators.
const TOTAL_CORES: u32 = 8;

/// Simulated per-record service cost: the payload carries one cost byte
/// per branch, in units of 10 µs.
fn branch_cost(record: &Record, cost_byte: usize) -> Duration {
    let units = record.payload.as_ref().get(cost_byte).copied().unwrap_or(0);
    Duration::from_micros(u64::from(units) * 10)
}

/// One diamond branch: burns its cost budget, counts per key in state,
/// and re-emits the record tagged with the branch marker so the merge
/// and sink can attribute it to this inbound edge.
struct Branch {
    /// Which payload byte carries this branch's cost.
    cost_byte: usize,
    /// Edge marker stamped into the outgoing payload.
    marker: u8,
}

impl Operator for Branch {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        std::thread::sleep(branch_cost(record, self.cost_byte));
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8-byte counter"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        let mut tagged = record.clone();
        tagged.payload = Bytes::copy_from_slice(&[self.marker]);
        vec![tagged]
    }
}

/// The join-ish merge: folds both branches' copies of a key into one
/// state entry (a per-branch counter pair) and passes the record on.
struct Merge;

impl Operator for Merge {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        let branch = record.payload.as_ref().first().copied().unwrap_or(0);
        state.update(record.key, |old| {
            let mut counts = old.map_or([0u64; 2], |v| {
                let bytes: [u8; 16] = v.as_ref().try_into().expect("16-byte pair");
                [
                    u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
                    u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
                ]
            });
            counts[usize::from(branch == 2)] += 1;
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&counts[0].to_le_bytes());
            bytes[8..].copy_from_slice(&counts[1].to_le_bytes());
            Some(Bytes::copy_from_slice(&bytes))
        });
        vec![record.clone()]
    }
}

/// Order-checking sink: verifies per-key FIFO independently per branch
/// (keys are namespaced by the branch marker), i.e. per upstream edge.
struct Sink {
    order: Arc<FifoChecker>,
    delivered: Arc<AtomicU64>,
}

impl Operator for Sink {
    fn process(&self, record: &Record, _state: &StateHandle) -> Vec<Record> {
        let marker = u64::from(record.payload.as_ref().first().copied().unwrap_or(0));
        self.order
            .observe(Key(record.key.value() * 8 + marker), record.seq);
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}

/// Submits `rate` records/s for `duration`, pacing on the monotonic
/// clock, with per-key sequence numbers and the phase's branch costs.
fn drive(
    dag: &LiveDag,
    source: elasticutor::core::ids::OperatorId,
    rate: f64,
    duration: Duration,
    costs: [u8; 2],
    seqs: &mut [u64],
    sent: &mut u64,
) {
    let gap = Duration::from_secs_f64(1.0 / rate);
    let payload = Bytes::copy_from_slice(&costs);
    let phase_start = Instant::now();
    let mut next = phase_start;
    while phase_start.elapsed() < duration {
        let key = *sent % seqs.len() as u64;
        seqs[key as usize] += 1;
        dag.port(source)
            .ingest(Record::new(key.into(), payload.clone()).with_seq(seqs[key as usize]));
        *sent += 1;
        next += gap;
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
    }
}

fn main() {
    let order = Arc::new(FifoChecker::new());
    let delivered = Arc::new(AtomicU64::new(0));
    let small = |shards: u32| ExecutorConfig {
        num_shards: shards,
        initial_tasks: 1,
        ..ExecutorConfig::default()
    };

    let mut b = LiveDag::builder();
    let source = b.source("source", small(16), |r: &Record, _s: &StateHandle| {
        vec![r.clone()]
    });
    let enrich = b.operator(
        "enrich",
        small(64),
        Branch {
            cost_byte: 0,
            marker: 1,
        },
    );
    let count = b.operator(
        "count",
        small(64),
        Branch {
            cost_byte: 1,
            marker: 2,
        },
    );
    let merge = b.operator("merge", small(64), Merge);
    let sink = b.operator(
        "sink",
        small(16),
        Sink {
            order: Arc::clone(&order),
            delivered: Arc::clone(&delivered),
        },
    );
    b.key_edge(source, enrich)
        .key_edge(source, count)
        .key_edge(enrich, merge)
        .key_edge(count, merge)
        .key_edge(merge, sink)
        .capacity(8_192)
        .controller(ControllerConfig {
            interval: Duration::from_millis(120),
            total_cores: TOTAL_CORES,
            latency_target: 0.05,
            verbose: true,
            ..ControllerConfig::default()
        });
    let dag = b.build().expect("the diamond validates");
    println!(
        "diamond: {} operators, {} edges, budget {TOTAL_CORES} cores\n",
        dag.topology().operators().len(),
        dag.topology().edges().len()
    );

    // Sample sink throughput in the background.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let delivered = Arc::clone(&delivered);
        let stop = Arc::clone(&sampler_stop);
        std::thread::spawn(move || {
            let started = Instant::now();
            let mut series = Vec::new();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(250));
                series.push((started.elapsed(), delivered.load(Ordering::Relaxed)));
            }
            series
        })
    };

    let mut seqs = vec![0u64; 256];
    let mut sent = 0u64;
    // Phase 1: enrich is hot (30 ⇒ 300 µs/record; 6 kHz ⇒ ~1.8 cores of
    // pure service demand on that branch alone).
    println!("== phase 1: enrich-heavy at {HOT_RATE} rec/s ==");
    drive(
        &dag,
        source,
        HOT_RATE,
        Duration::from_secs(3),
        [30, 2],
        &mut seqs,
        &mut sent,
    );
    let phase1_end_ms = 3_000u64;
    // Phase 2: the heat flips to the other branch at the same rate.
    println!("== phase 2: count-heavy at {HOT_RATE} rec/s ==");
    drive(
        &dag,
        source,
        HOT_RATE,
        Duration::from_secs(3),
        [2, 30],
        &mut seqs,
        &mut sent,
    );
    let phase2_end_ms = 6_000u64;
    // Phase 3: cool-down.
    println!("== phase 3: cool-down at {COOL_RATE} rec/s ==");
    drive(
        &dag,
        source,
        COOL_RATE,
        Duration::from_secs(2),
        [2, 2],
        &mut seqs,
        &mut sent,
    );
    dag.drain();
    sampler_stop.store(true, Ordering::Release);
    let series = sampler.join().expect("sampler exits");

    // Timeline of controller decisions: the logged core counts.
    let log = dag.controller_log();
    println!("\n t(ms)  cores source/enrich/count/merge/sink   targets");
    for e in &log {
        println!(
            "{:>6}  {:>33}  {:>15}",
            e.at_ms,
            format!(
                "{}/{}/{}/{}/{}",
                e.cores[0], e.cores[1], e.cores[2], e.cores[3], e.cores[4]
            ),
            format!("{:?}", e.targets),
        );
    }
    println!("\n t(s)  sink throughput (rec/s)");
    let mut prev = (Duration::ZERO, 0u64);
    for &(t, n) in &series {
        let dt = (t - prev.0).as_secs_f64();
        if dt > 0.0 {
            println!(
                "{:>5.1}  {:>8.0}",
                t.as_secs_f64(),
                (n - prev.1) as f64 / dt
            );
        }
        prev = (t, n);
    }

    let stats = dag.shutdown();
    println!(
        "\nsubmitted {sent}; delivered {} (2× through the diamond); shard moves per operator {:?}",
        delivered.load(Ordering::Relaxed),
        stats
            .iter()
            .map(|s| s.stats.reassignments.len())
            .collect::<Vec<_>>()
    );

    // The demo's claims, enforced.
    let in_window = |e: &&elasticutor::runtime::ControllerEvent, lo: u64, hi: u64| {
        e.at_ms >= lo && e.at_ms < hi
    };
    let enrich_ix = enrich.index();
    let count_ix = count.index();
    let enrich_peak_p1 = log
        .iter()
        .filter(|e| in_window(e, 0, phase1_end_ms))
        .map(|e| e.cores[enrich_ix])
        .max()
        .unwrap_or(1);
    let count_peak_p2 = log
        .iter()
        .filter(|e| in_window(e, phase1_end_ms, phase2_end_ms))
        .map(|e| e.cores[count_ix])
        .max()
        .unwrap_or(1);
    let enrich_floor_p2 = log
        .iter()
        .filter(|e| in_window(e, phase1_end_ms + 1_000, phase2_end_ms))
        .map(|e| e.cores[enrich_ix])
        .min()
        .unwrap_or(u32::MAX);
    let final_total: u32 = log.last().map(|e| e.cores.iter().sum()).unwrap_or(0);

    assert_eq!(
        delivered.load(Ordering::Relaxed),
        2 * sent,
        "every record must arrive at the sink exactly once per branch"
    );
    assert!(
        order.is_clean(),
        "per-edge per-key FIFO violated: {:?}",
        order.violations()
    );
    assert_eq!(
        stats[merge.index()].stats.processed,
        2 * sent,
        "the merge must see both branches' copies"
    );
    assert!(
        enrich_peak_p1 >= 2,
        "enrich never grew in phase 1 (peak {enrich_peak_p1})"
    );
    assert!(
        count_peak_p2 >= 2,
        "count never grew in phase 2 (peak {count_peak_p2})"
    );
    assert!(
        enrich_floor_p2 < enrich_peak_p1,
        "no core migrated between the branches (enrich phase-1 peak \
         {enrich_peak_p1}, phase-2 floor {enrich_floor_p2})"
    );
    assert!(
        final_total <= TOTAL_CORES,
        "final allocation {final_total} exceeds the budget {TOTAL_CORES}"
    );
    println!(
        "OK: enrich {enrich_peak_p1}→{enrich_floor_p2} cores while count grew to \
         {count_peak_p2}; per-edge FIFO held; diamond drained to quiescence."
    );
}
