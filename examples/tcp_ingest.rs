//! A TCP-fed pipeline: the network edge wired to the live runtime.
//!
//! Shows the ingress plane end to end:
//! 1. build a live `Pipeline` counting records per key;
//! 2. bind a `TcpIngress` on a loopback port, feeding the pipeline
//!    through the unified `Ingest` surface;
//! 3. flood it from client sockets writing length-prefixed record
//!    frames (`write_record_frame`);
//! 4. drain, then check exact conservation: every record that entered
//!    a socket came out of the operator.
//!
//! Run with: `cargo run --release --example tcp_ingest`

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor::core::ids::Key;
use elasticutor::ingress::{write_record_frame, IngressConfig, TcpIngress};
use elasticutor::runtime::{ExecutorConfig, Ingest, Pipeline, Record};
use elasticutor::state::StateHandle;

const CLIENTS: u64 = 32;
const PER_CLIENT: u64 = 5_000;
const FRAME: u64 = 100; // records per wire frame

fn main() {
    // 1. A one-stage pipeline counting processed records.
    let processed = Arc::new(AtomicU64::new(0));
    let sink = Arc::clone(&processed);
    let pipe = Arc::new(
        Pipeline::builder()
            .stage(
                "count",
                ExecutorConfig {
                    num_shards: 64,
                    initial_tasks: 2,
                    ..ExecutorConfig::default()
                },
                move |_r: &Record, _s: &StateHandle| {
                    sink.fetch_add(1, Ordering::AcqRel);
                    Vec::new()
                },
            )
            .capacity(8_192)
            .build(),
    );

    // 2. The network edge: epoll acceptor + reader threads decoding
    // record frames, with per-connection credit-based backpressure.
    // Any `Ingest` target plugs in here — a Pipeline, a LiveDag source
    // port, or a bare executor group.
    let ingress = TcpIngress::bind(
        IngressConfig {
            readers: 2,
            ..IngressConfig::default()
        },
        Arc::clone(&pipe) as Arc<dyn Ingest>,
    )
    .expect("bind ingress");
    let addr = ingress.local_addr();
    println!("ingress listening on {addr}");

    // 3. Clients: each owns one key and writes strictly increasing
    // seqs, so per-connection FIFO is observable downstream as per-key
    // order.
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                for start in (0..PER_CLIENT).step_by(FRAME as usize) {
                    let batch: Vec<Record> = (start..(start + FRAME).min(PER_CLIENT))
                        .map(|seq| Record::new(Key(c), Bytes::from_static(b"hello")).with_seq(seq))
                        .collect();
                    write_record_frame(&mut stream, &batch).expect("write frame");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // 4. Wait for the pipeline to drain, then verify conservation.
    let total = CLIENTS * PER_CLIENT;
    let deadline = Instant::now() + Duration::from_secs(30);
    while processed.load(Ordering::Acquire) < total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = ingress.shutdown();
    let done = processed.load(Ordering::Acquire);
    let secs = started.elapsed().as_secs_f64();
    println!(
        "{} connections, {} records in {:.2}s ({:.0} rec/s), {} stalls",
        stats.accepted,
        done,
        secs,
        done as f64 / secs,
        stats.stalls,
    );
    assert_eq!(stats.records_in, total, "decoded everything that was sent");
    assert_eq!(
        stats.records_delivered, total,
        "delivered everything decoded"
    );
    assert_eq!(done, total, "processed everything delivered");
    assert_eq!(stats.protocol_errors, 0);

    Arc::try_unwrap(pipe)
        .unwrap_or_else(|_| panic!("ingress threads released the pipeline"))
        .shutdown();
    println!("OK: exact conservation socket → frame codec → pipeline → operator");
}
