//! Minimal in-workspace stand-in for `rand`.
//!
//! Provides a deterministic SplitMix64-backed `StdRng` with the small
//! `Rng`/`SeedableRng` surface the benchmarks use. Not cryptographic and
//! not distribution-perfect — gap-free uniform ranges are enough for
//! generating benchmark inputs.

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)` from 64 raw random bits.
    fn sample_from_bits(bits: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from_bits(bits: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((bits as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_from_bits(bits: u64, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_from_bits(bits: u64, low: Self, high: Self) -> Self {
        f64::sample_from_bits(bits, low as f64, high as f64) as f32
    }
}

/// The random-number-generator trait surface used by this project.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range<T>(&mut self, range: std::ops::Range<T>) -> T
    where
        T: SampleUniform + Copy,
    {
        T::sample_from_bits(self.next_u64(), range.start, range.end)
    }

    /// A random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0f64..1.0) < p
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNGs.
pub mod rngs {
    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(5u64..50);
            assert_eq!(x, b.gen_range(5u64..50));
            assert!((5..50).contains(&x));
            let f = a.gen_range(0.25f64..0.75);
            b.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
