//! Minimal safe wrapper over Linux `epoll` and `eventfd`.
//!
//! The workspace has no registry access, so instead of `mio` this shim
//! declares the four syscalls the ingress plane needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`) directly against the libc the
//! binary is already linked with, and wraps them in an RAII,
//! `io::Result`-surfacing API:
//!
//! * [`Epoll`] — a level-triggered readiness queue: register file
//!   descriptors with an interest mask and a `u64` cookie, then
//!   [`Epoll::wait`] for ready sets.
//! * [`EventFd`] — a wakeup doorbell another thread can ring to unpark
//!   an [`Epoll::wait`] (used for stop signals and new-connection
//!   handoff).
//!
//! Linux-only by design (the CI runner and every deployment target of
//! this project are Linux); the `extern "C"` declarations follow the
//! x86-64 kernel ABI, where `struct epoll_event` is packed.

#![warn(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

/// Readiness: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness: an error condition is pending on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Readiness: hang-up — the peer closed the connection.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness: the peer shut down the writing half (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;

/// `struct epoll_event` with the x86-64 Linux kernel layout (packed:
/// 4-byte `events` immediately followed by the 8-byte cookie).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// One ready file descriptor reported by [`Epoll::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The ready-set bitmask ([`EPOLLIN`], [`EPOLLHUP`], …).
    pub events: u32,
    /// The cookie supplied at [`Epoll::add`] / [`Epoll::modify`] time.
    pub data: u64,
}

impl Event {
    /// Whether the fd is readable (or has pending error/hang-up state,
    /// which Linux also surfaces to readers).
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Whether the peer closed (full or half) the connection.
    pub fn closed(&self) -> bool {
        self.events & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }
}

/// The largest ready set a single [`Epoll::wait`] call reports.
pub const MAX_EVENTS: usize = 512;

/// An owned epoll instance (level-triggered).
#[derive(Debug)]
pub struct Epoll {
    fd: c_int,
}

// The fd is just an integer capability; all methods take &self and the
// kernel serializes epoll_ctl/epoll_wait internally.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    /// Creates a new epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = RawEvent { events, data };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with interest mask `events`; `data` is the cookie
    /// handed back in every [`Event`] for this fd.
    pub fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Replaces the interest mask (and cookie) of a registered fd.
    /// `events == 0` keeps the registration but reports nothing but
    /// errors/hang-ups — how the ingress plane mutes a stalled
    /// connection without losing its slot.
    pub fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        // Linux < 2.6.9 required a non-null event pointer for DEL; pass
        // one unconditionally, it is ignored on every modern kernel.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (`-1` = forever, `0` = poll) for ready
    /// fds, appending up to [`MAX_EVENTS`] of them to `out` (which is
    /// cleared first). Returns how many arrived; `EINTR` retries
    /// transparently.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let mut raw = [RawEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            let rc =
                unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let n = rc as usize;
            for ev in raw.iter().take(n) {
                // Copy out of the packed struct by value (taking a
                // reference to a packed field would be UB).
                let events = { ev.events };
                let data = { ev.data };
                out.push(Event { events, data });
            }
            return Ok(n);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// A nonblocking `eventfd` doorbell: any thread may [`EventFd::ring`]
/// it; a reader registered in an [`Epoll`] sees the fd readable and
/// [`EventFd::drain`]s it back to silent.
#[derive(Debug)]
pub struct EventFd {
    fd: c_int,
}

unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration in an [`Epoll`].
    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Rings the doorbell (adds 1 to the counter). A counter already at
    /// its ceiling would return `EAGAIN`, which is fine — the doorbell
    /// is already as rung as it gets — so errors are swallowed.
    pub fn ring(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Resets the counter to 0 (nonblocking; a silent doorbell is a
    /// no-op). Call after the epoll reports this fd readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_rings_through_epoll() {
        let ep = Epoll::new().unwrap();
        let bell = EventFd::new().unwrap();
        ep.add(bell.raw_fd(), EPOLLIN, 7).unwrap();

        let mut out = Vec::new();
        // Silent doorbell: a zero-timeout poll reports nothing.
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);

        bell.ring();
        assert_eq!(ep.wait(&mut out, 1000).unwrap(), 1);
        assert_eq!(out[0].data, 7);
        assert!(out[0].readable());

        // Level-triggered: still ready until drained.
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 1);
        bell.drain();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);
    }

    #[test]
    fn ring_from_another_thread_unparks_wait() {
        let ep = Epoll::new().unwrap();
        let bell = std::sync::Arc::new(EventFd::new().unwrap());
        ep.add(bell.raw_fd(), EPOLLIN, 1).unwrap();

        let remote = std::sync::Arc::clone(&bell);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            remote.ring();
        });
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        assert_eq!(ep.wait(&mut out, 5000).unwrap(), 1);
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        t.join().unwrap();
    }

    #[test]
    fn modify_mutes_and_delete_removes() {
        let ep = Epoll::new().unwrap();
        let bell = EventFd::new().unwrap();
        ep.add(bell.raw_fd(), EPOLLIN, 3).unwrap();
        bell.ring();

        // Mute: interest 0 hides the readable state.
        ep.modify(bell.raw_fd(), 0, 3).unwrap();
        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);

        // Re-arm: readable again (level-triggered, counter still set).
        ep.modify(bell.raw_fd(), EPOLLIN, 4).unwrap();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 1);
        assert_eq!(out[0].data, 4);

        ep.delete(bell.raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);
        // Double-delete surfaces the OS error instead of panicking.
        assert!(ep.delete(bell.raw_fd()).is_err());
    }
}
