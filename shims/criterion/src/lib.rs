//! Minimal in-workspace stand-in for `criterion`.
//!
//! Implements enough of the criterion API for this project's benches to
//! compile and produce useful numbers offline: each benchmark runs a
//! short calibration pass, then a timed measurement pass, and prints the
//! mean time per iteration. No statistics, plots, or CLI parsing.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of a compiler black box preventing dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark inside a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            name: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; its `iter` runs the measured routine.
pub struct Bencher {
    /// Iterations executed in the measurement pass.
    iters: u64,
    /// Total measured duration of the pass.
    elapsed: Duration,
}

impl Bencher {
    fn measure<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: find an iteration count worth ~100ms, capped.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(100) || n >= 1 << 20 {
                self.iters = n;
                self.elapsed = took;
                return;
            }
            n = (n * 4).min(1 << 20);
        }
    }

    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O>(&mut self, routine: impl FnMut() -> O) {
        self.measure(routine);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        0.0
    };
    println!(
        "bench: {label:<50} {per_iter:>14.1} ns/iter ({} iters)",
        b.iters
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored; this shim times one
    /// calibrated pass).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// Declares the benchmark entry list (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
