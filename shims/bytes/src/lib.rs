//! Minimal in-workspace stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this std-only implementation of the small `Bytes` API surface
//! the project uses: cheaply clonable, immutable byte buffers. Cloning
//! bumps an `Arc` refcount exactly like the real crate; the `from_static`
//! constructor copies once instead of borrowing (acceptable for the
//! handful of static payloads in tests and examples).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer from a static slice (copies once).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self {
            data: v.as_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect::<Vec<u8>>().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"x").as_ref(), b"x");
        assert_eq!(Bytes::from(vec![1u8, 2]).len(), 2);
    }
}
