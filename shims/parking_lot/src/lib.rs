//! Minimal in-workspace stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API
//! (`lock()` / `read()` / `write()` return guards directly). Poisoning is
//! deliberately ignored — the project's executors catch operator panics
//! before they can poison a lock, and parking_lot itself has no
//! poisoning, so ignoring it preserves the semantics callers expect.

use std::sync::{self, LockResult};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard type for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard type for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
