//! Minimal in-workspace stand-in for `crossbeam`.
//!
//! Two modules are provided with crossbeam's semantics for the
//! operations this project uses:
//!
//! * `channel` — a Mutex+Condvar MPMC channel: unbounded and bounded
//!   channels, clonable senders *and* receivers, blocking
//!   `send`/`recv`, `try_recv`, `recv_timeout`, and disconnection
//!   (receive fails only once the buffer is empty and every sender is
//!   gone; send fails once every receiver is gone).
//! * `utils` — [`utils::CachePadded`], the false-sharing guard used to
//!   keep per-task hot counters on distinct cache lines.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line, so adjacent
    /// array elements written by different threads never share a line.
    ///
    /// API-compatible subset of `crossbeam_utils::CachePadded`; 128-byte
    /// alignment matches crossbeam's choice for x86-64 (two prefetched
    /// 64-byte lines) and is safely over-aligned elsewhere.
    #[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Consumes the wrapper, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn padded_values_are_line_separated() {
            assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
            assert!(std::mem::size_of::<CachePadded<u64>>() >= 64);
            let cells: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
            let a = &*cells[0] as *const u64 as usize;
            let b = &*cells[1] as *const u64 as usize;
            assert!(b - a >= 64, "adjacent cells share a cache line");
        }

        #[test]
        fn deref_and_into_inner() {
            let mut c = CachePadded::new(5u32);
            *c += 1;
            assert_eq!(*c, 6);
            assert_eq!(c.into_inner(), 6);
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when the queue gains an item or loses all senders.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or loses all receivers.
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable: clones compete for
    /// messages (MPMC), matching crossbeam.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel of capacity `cap` (`send` blocks while
    /// full). `cap == 0` is treated as capacity 1 for simplicity (the
    /// project never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.capacity {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).expect("channel lock");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available or every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("channel lock");
                inner = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A draining iterator that blocks on [`Receiver::recv`] until
        /// disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking draining iterator.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator over currently queued messages.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until one recv
                tx.len()
            });
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap() <= 2);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn cloned_receivers_compete() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = thread::spawn(move || rx1.iter().count());
            let b = thread::spawn(move || rx2.iter().count());
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
