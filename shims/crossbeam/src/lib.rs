//! Minimal in-workspace stand-in for `crossbeam`.
//!
//! Four modules are provided with the semantics this project uses:
//!
//! * `channel` — a Mutex+Condvar MPMC channel: unbounded and bounded
//!   channels, clonable senders *and* receivers, blocking
//!   `send`/`recv`, `try_recv`, `recv_timeout`, and disconnection
//!   (receive fails only once the buffer is empty and every sender is
//!   gone; send fails once every receiver is gone). Waiter counts gate
//!   every condvar notify, so the uncontended steady state pays no
//!   wakeup per operation.
//! * `utils` — [`utils::CachePadded`], the false-sharing guard used to
//!   keep per-task hot counters on distinct cache lines.
//! * `spsc` — a bounded single-producer/single-consumer ring buffer
//!   (not part of real crossbeam's API, which is why the runtime takes
//!   it from the shim): cache-line-padded head/tail, wait-free
//!   `try_push`/`pop_batch`, and park/unpark blocking that touches a
//!   Condvar only on the empty/full edges. The data plane uses one ring
//!   per task slot for the pump→task edge.
//! * `mpsc` — an unbounded lock-free multi-producer/single-consumer
//!   queue (Vyukov-style intrusive list): `push` is two atomic
//!   operations from any thread, `pop` is single-consumer, and the
//!   consumer parks on a Condvar only when it observes the empty edge.
//!   The migration link's remote egress runs on it so forwarding a
//!   record to a peer enqueues wait-free.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line, so adjacent
    /// array elements written by different threads never share a line.
    ///
    /// API-compatible subset of `crossbeam_utils::CachePadded`; 128-byte
    /// alignment matches crossbeam's choice for x86-64 (two prefetched
    /// 64-byte lines) and is safely over-aligned elsewhere.
    #[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Consumes the wrapper, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn padded_values_are_line_separated() {
            assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
            assert!(std::mem::size_of::<CachePadded<u64>>() >= 64);
            let cells: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
            let a = &*cells[0] as *const u64 as usize;
            let b = &*cells[1] as *const u64 as usize;
            assert!(b - a >= 64, "adjacent cells share a cache line");
        }

        #[test]
        fn deref_and_into_inner() {
            let mut c = CachePadded::new(5u32);
            *c += 1;
            assert_eq!(*c, 6);
            assert_eq!(c.into_inner(), 6);
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when the queue gains an item or loses all senders.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or loses all receivers.
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
        /// Receivers currently blocked in `recv`/`recv_timeout`. A send
        /// (or last-sender drop) notifies `not_empty` only when this is
        /// non-zero, so the busy steady state — consumer keeping up, no
        /// one parked — pays no condvar call per operation.
        recv_waiters: usize,
        /// Senders currently blocked on a full bounded channel; gates
        /// `not_full` notifies the same way.
        send_waiters: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is full; the value is handed back.
        Full(T),
        /// All receivers are gone; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether this is the [`TrySendError::Full`] variant.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Whether this is the [`TrySendError::Disconnected`] variant.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable: clones compete for
    /// messages (MPMC), matching crossbeam.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel of capacity `cap` (`send` blocks while
    /// full). `cap == 0` is treated as capacity 1 for simplicity (the
    /// project never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
                recv_waiters: 0,
                send_waiters: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            let wake = inner.senders == 0 && inner.recv_waiters > 0;
            drop(inner);
            if wake {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            let wake = inner.receivers == 0 && inner.send_waiters > 0;
            drop(inner);
            if wake {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.capacity {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner.send_waiters += 1;
                        inner = self.shared.not_full.wait(inner).expect("channel lock");
                        inner.send_waiters -= 1;
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            // Notify only when someone is actually parked: a receiver
            // increments the count under this same lock before waiting,
            // so a zero read here means no wakeup can be lost.
            let wake = inner.recv_waiters > 0;
            drop(inner);
            if wake {
                self.shared.not_empty.notify_one();
            }
            Ok(())
        }

        /// Non-blocking send: hands the value back instead of parking
        /// when a bounded channel is full (or every receiver is gone).
        /// The ingress plane's credit path uses this so a stalled DAG
        /// surfaces as `Full` — the caller keeps the records queued on
        /// the connection and stops reading its socket.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = inner.capacity {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            let wake = inner.recv_waiters > 0;
            drop(inner);
            if wake {
                self.shared.not_empty.notify_one();
            }
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available or every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    let wake = inner.send_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.recv_waiters += 1;
                inner = self.shared.not_empty.wait(inner).expect("channel lock");
                inner.recv_waiters -= 1;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if let Some(v) = inner.queue.pop_front() {
                let wake = inner.send_waiters > 0;
                drop(inner);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    let wake = inner.send_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.recv_waiters += 1;
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("channel lock");
                inner = guard;
                inner.recv_waiters -= 1;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A draining iterator that blocks on [`Receiver::recv`] until
        /// disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking draining iterator.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator over currently queued messages.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until one recv
                tx.len()
            });
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap() <= 2);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn cloned_receivers_compete() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = thread::spawn(move || rx1.iter().count());
            let b = thread::spawn(move || rx2.iter().count());
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            let err = tx.try_send(4).unwrap_err();
            assert!(err.is_disconnected());
            assert_eq!(err.into_inner(), 4);
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn waiter_gated_wakeups_survive_contention() {
            // 4 senders ping-ponging with 2 receivers over a tiny bounded
            // channel exercises every waiter-count path (park on full,
            // park on empty, targeted wakeups): conservation must hold.
            let (tx, rx) = bounded(2);
            let senders: Vec<_> = (0..4)
                .map(|t| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..500u64 {
                            tx.send(t * 1_000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let rx2 = rx.clone();
            let a = thread::spawn(move || rx.iter().count());
            let b = thread::spawn(move || rx2.iter().count());
            for s in senders {
                s.join().unwrap();
            }
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 2_000);
        }
    }
}

pub mod spsc {
    //! A bounded single-producer/single-consumer ring buffer.
    //!
    //! The data-plane queue of the elastic executor's pump→task edge:
    //! one producer thread pushes `(shard, record)` items, one consumer
    //! (the task thread) pops them in batches. The hot path is wait-free
    //! on both sides — a slot write plus one release store per push, an
    //! acquire load plus slot reads per pop batch — with head and tail
    //! on separate cache lines so the two threads never false-share.
    //!
    //! Blocking touches a Condvar **only on the empty/full edges**, and
    //! only when the other side has actually parked (an atomic waiting
    //! flag gates every notify). Third parties can prod a parked
    //! consumer through a cloneable [`RingHandle`] — the executor's
    //! control plane uses this to say "check your side channel" without
    //! owning either end.
    //!
    //! Safety model: the producer and consumer ends are separate owned
    //! handles whose mutating methods take `&mut self`, so the
    //! single-producer/single-consumer contract is enforced by Rust's
    //! borrow rules, not by caller discipline. Dropping either end
    //! closes the ring and wakes the other side.

    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    use crate::utils::CachePadded;

    struct Shared<T> {
        /// Items ever popped (consumer cursor). Written by the consumer,
        /// read by the producer's full check.
        head: CachePadded<AtomicU64>,
        /// Items ever pushed (producer cursor). Written by the producer,
        /// read by the consumer's empty check and by watermark readers.
        tail: CachePadded<AtomicU64>,
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: u64,
        /// Either end dropped; the survivor drains/declines accordingly.
        closed: AtomicBool,
        /// The consumer parked (or is about to park) on the empty edge.
        consumer_waiting: AtomicBool,
        /// The producer parked (or is about to park) on the full edge.
        producer_waiting: AtomicBool,
        /// An external wake request arrived while the consumer may be
        /// parked (see [`RingHandle::wake_consumer`]).
        kicked: AtomicBool,
        park: Mutex<()>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    // The UnsafeCell slots are only ever touched by the single producer
    // (writes at tail) and the single consumer (reads at head), whose
    // cursors never overlap a live slot; the release/acquire pair on
    // `tail` (push→pop) and `head` (pop→push) publishes the contents.
    unsafe impl<T: Send> Send for Shared<T> {}
    unsafe impl<T: Send> Sync for Shared<T> {}

    /// The producing end of a ring. Not clonable; pushes take `&mut
    /// self`, enforcing the single-producer contract.
    pub struct Producer<T> {
        shared: Arc<Shared<T>>,
    }

    /// The consuming end of a ring. Not clonable; pops take `&mut self`.
    pub struct Consumer<T> {
        shared: Arc<Shared<T>>,
    }

    /// A cheap cloneable observer of a ring: reads the push cursor (for
    /// watermarks) and can wake a parked consumer. Holds the allocation
    /// alive but cannot touch the items.
    #[derive(Clone)]
    pub struct RingHandle<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded SPSC ring of at least `capacity` items
    /// (rounded up to the next power of two, minimum 2).
    pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        let cap = capacity.max(2).next_power_of_two();
        let shared = Arc::new(Shared {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap as u64 - 1,
            closed: AtomicBool::new(false),
            consumer_waiting: AtomicBool::new(false),
            producer_waiting: AtomicBool::new(false),
            kicked: AtomicBool::new(false),
            park: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Producer {
                shared: Arc::clone(&shared),
            },
            Consumer { shared },
        )
    }

    impl<T> Shared<T> {
        fn capacity(&self) -> u64 {
            self.mask + 1
        }

        /// Wakes a parked consumer if (and only if) one is parked.
        fn wake_consumer(&self) {
            if self.consumer_waiting.load(Ordering::SeqCst) {
                let _guard = self.park.lock().expect("ring park lock");
                self.not_empty.notify_one();
            }
        }

        fn wake_producer(&self) {
            if self.producer_waiting.load(Ordering::SeqCst) {
                let _guard = self.park.lock().expect("ring park lock");
                self.not_full.notify_one();
            }
        }
    }

    impl<T> Producer<T> {
        /// Pushes one item without blocking. Returns the item back when
        /// the ring is full or the consumer is gone.
        pub fn try_push(&mut self, value: T) -> Result<(), T> {
            let s = &*self.shared;
            if s.closed.load(Ordering::Acquire) {
                return Err(value);
            }
            let tail = s.tail.load(Ordering::Relaxed);
            if tail - s.head.load(Ordering::Acquire) == s.capacity() {
                return Err(value);
            }
            unsafe {
                (*s.slots[(tail & s.mask) as usize].get()).write(value);
            }
            s.tail.store(tail + 1, Ordering::SeqCst);
            // Only the empty→non-empty edge can have a parked consumer.
            s.wake_consumer();
            Ok(())
        }

        /// Pushes items from `src` (front first) until the ring fills,
        /// returning how many were consumed. One wakeup check covers the
        /// whole batch.
        pub fn try_push_batch(&mut self, src: &mut std::collections::VecDeque<T>) -> usize {
            let s = &*self.shared;
            if s.closed.load(Ordering::Acquire) {
                return 0;
            }
            let tail = s.tail.load(Ordering::Relaxed);
            let free = s.capacity() - (tail - s.head.load(Ordering::Acquire));
            let n = (free as usize).min(src.len());
            for i in 0..n {
                let value = src.pop_front().expect("len checked");
                unsafe {
                    (*s.slots[((tail + i as u64) & s.mask) as usize].get()).write(value);
                }
            }
            if n > 0 {
                s.tail.store(tail + n as u64, Ordering::SeqCst);
                s.wake_consumer();
            }
            n
        }

        /// Pushes one item, parking on the full edge until space frees.
        /// Returns the item back only if the consumer is gone.
        pub fn push(&mut self, mut value: T) -> Result<(), T> {
            loop {
                match self.try_push(value) {
                    Ok(()) => return Ok(()),
                    Err(v) => {
                        let s = &*self.shared;
                        if s.closed.load(Ordering::Acquire) {
                            return Err(v);
                        }
                        value = v;
                        s.producer_waiting.store(true, Ordering::SeqCst);
                        {
                            let guard = s.park.lock().expect("ring park lock");
                            // Recheck under the lock: the consumer wakes
                            // us under the same lock, so a pop between
                            // our check and the wait cannot be lost.
                            let full = s.tail.load(Ordering::Relaxed)
                                - s.head.load(Ordering::Acquire)
                                == s.capacity();
                            if full && !s.closed.load(Ordering::Acquire) {
                                let _ = s
                                    .not_full
                                    .wait_timeout(guard, Duration::from_millis(1))
                                    .expect("ring park lock");
                            }
                        }
                        s.producer_waiting.store(false, Ordering::SeqCst);
                    }
                }
            }
        }

        /// Items ever pushed — the watermark domain shared with
        /// [`RingHandle::tail`].
        pub fn tail(&self) -> u64 {
            self.shared.tail.load(Ordering::SeqCst)
        }

        /// The ring's (rounded) capacity.
        pub fn capacity(&self) -> usize {
            self.shared.capacity() as usize
        }

        /// Whether the consumer end has been dropped.
        pub fn is_closed(&self) -> bool {
            self.shared.closed.load(Ordering::Acquire)
        }

        /// An observer handle (watermarks + consumer wakeups).
        pub fn handle(&self) -> RingHandle<T> {
            RingHandle {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Producer<T> {
        fn drop(&mut self) {
            self.shared.closed.store(true, Ordering::Release);
            self.shared.wake_consumer();
        }
    }

    impl<T> Consumer<T> {
        /// Pops one item without blocking.
        pub fn try_pop(&mut self) -> Option<T> {
            let s = &*self.shared;
            let head = s.head.load(Ordering::Relaxed);
            if head == s.tail.load(Ordering::Acquire) {
                return None;
            }
            let value = unsafe { (*s.slots[(head & s.mask) as usize].get()).assume_init_read() };
            s.head.store(head + 1, Ordering::SeqCst);
            s.wake_producer();
            Some(value)
        }

        /// Pops up to `max` items into `out` (any `Extend` collection —
        /// the data plane pops straight into its processing buffer, one
        /// move per record), returning how many. One acquire load and
        /// one wakeup check cover the whole batch.
        pub fn pop_batch<C: Extend<T>>(&mut self, out: &mut C, max: usize) -> usize {
            let s = &*self.shared;
            let head = s.head.load(Ordering::Relaxed);
            let avail = s.tail.load(Ordering::Acquire) - head;
            let n = (avail as usize).min(max);
            out.extend((0..n).map(|i| unsafe {
                (*s.slots[((head + i as u64) & s.mask) as usize].get()).assume_init_read()
            }));
            if n > 0 {
                s.head.store(head + n as u64, Ordering::SeqCst);
                s.wake_producer();
            }
            n
        }

        /// Parks until the ring is non-empty, an external
        /// [`RingHandle::wake_consumer`] arrives, the producer drops, or
        /// `timeout` elapses. Returns immediately when any of those
        /// conditions already holds; a pending kick is consumed.
        pub fn wait(&mut self, timeout: Duration) {
            let s = &*self.shared;
            if s.kicked.swap(false, Ordering::SeqCst) || s.closed.load(Ordering::Acquire) {
                return;
            }
            s.consumer_waiting.store(true, Ordering::SeqCst);
            {
                let guard = s.park.lock().expect("ring park lock");
                // Recheck everything under the lock (wakers notify under
                // the same lock, so nothing can slip between this check
                // and the wait).
                let empty = s.head.load(Ordering::Relaxed) == s.tail.load(Ordering::Acquire);
                if empty && !s.kicked.load(Ordering::SeqCst) && !s.closed.load(Ordering::Acquire) {
                    let _ = s
                        .not_empty
                        .wait_timeout(guard, timeout)
                        .expect("ring park lock");
                }
            }
            s.consumer_waiting.store(false, Ordering::SeqCst);
            s.kicked.store(false, Ordering::SeqCst);
        }

        /// Items ever popped (the consumer cursor).
        pub fn head(&self) -> u64 {
            self.shared.head.load(Ordering::SeqCst)
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            (self.shared.tail.load(Ordering::Acquire) - self.shared.head.load(Ordering::Relaxed))
                as usize
        }

        /// Whether the ring is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the producer end has been dropped (remaining items
        /// can still be popped).
        pub fn is_closed(&self) -> bool {
            self.shared.closed.load(Ordering::Acquire)
        }
    }

    impl<T> Drop for Consumer<T> {
        fn drop(&mut self) {
            // Drain what the producer already published so the items'
            // destructors run exactly once, then close.
            while self.try_pop().is_some() {}
            self.shared.closed.store(true, Ordering::Release);
            self.shared.wake_producer();
        }
    }

    impl<T> Drop for Shared<T> {
        fn drop(&mut self) {
            // Items pushed after the consumer's closing drain (the
            // producer may have kept pushing) are freed here, where both
            // ends are gone and the cursors are quiescent.
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Relaxed);
            for i in head..tail {
                unsafe {
                    (*self.slots[(i & self.mask) as usize].get()).assume_init_drop();
                }
            }
        }
    }

    impl<T> RingHandle<T> {
        /// Items ever pushed — read a watermark *after* the pushes it
        /// must cover have completed.
        pub fn tail(&self) -> u64 {
            self.shared.tail.load(Ordering::SeqCst)
        }

        /// Wakes the consumer if it is parked (and latches the request
        /// so a consumer *about to* park returns immediately).
        pub fn wake_consumer(&self) {
            self.shared.kicked.store(true, Ordering::SeqCst);
            self.shared.wake_consumer();
        }
    }

    impl<T> std::fmt::Debug for Producer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("spsc::Producer { .. }")
        }
    }

    impl<T> std::fmt::Debug for Consumer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("spsc::Consumer { .. }")
        }
    }

    impl<T> std::fmt::Debug for RingHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("spsc::RingHandle { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::VecDeque;
        use std::thread;

        #[test]
        fn roundtrip_and_wraparound() {
            let (mut tx, mut rx) = ring::<u64>(4);
            assert_eq!(tx.capacity(), 4);
            // Three full cycles force the cursors around the ring.
            for round in 0..3u64 {
                for i in 0..4 {
                    tx.try_push(round * 4 + i).unwrap();
                }
                assert!(tx.try_push(99).is_err(), "full edge");
                let mut out = VecDeque::new();
                assert_eq!(rx.pop_batch(&mut out, 16), 4);
                assert_eq!(out, (round * 4..round * 4 + 4).collect::<VecDeque<_>>());
                assert!(rx.try_pop().is_none(), "empty edge");
            }
        }

        #[test]
        fn batch_push_fills_exactly_to_capacity() {
            let (mut tx, mut rx) = ring::<u32>(4);
            let mut src: VecDeque<u32> = (0..10).collect();
            assert_eq!(tx.try_push_batch(&mut src), 4);
            assert_eq!(src.len(), 6);
            let mut out = VecDeque::new();
            rx.pop_batch(&mut out, 2);
            assert_eq!(tx.try_push_batch(&mut src), 2);
            assert_eq!(out, VecDeque::from([0, 1]));
        }

        #[test]
        fn tail_and_head_are_monotonic_counters() {
            let (mut tx, mut rx) = ring::<u8>(2);
            let handle = tx.handle();
            for i in 0..100u8 {
                tx.push(i).unwrap();
                assert_eq!(rx.try_pop(), Some(i));
            }
            assert_eq!(handle.tail(), 100);
            assert_eq!(rx.head(), 100);
        }

        #[test]
        fn blocking_push_parks_until_pop() {
            let (mut tx, mut rx) = ring::<u64>(2);
            tx.try_push(1).unwrap();
            tx.try_push(2).unwrap();
            let t = thread::spawn(move || {
                tx.push(3).unwrap(); // parks on the full edge
                tx.tail()
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.try_pop(), Some(1));
            assert_eq!(t.join().unwrap(), 3);
            assert_eq!(rx.try_pop(), Some(2));
            assert_eq!(rx.try_pop(), Some(3));
        }

        #[test]
        fn consumer_wait_wakes_on_push_and_kick() {
            let (mut tx, mut rx) = ring::<u64>(8);
            let handle = tx.handle();
            let t = thread::spawn(move || {
                let mut got = None;
                while got.is_none() {
                    rx.wait(Duration::from_secs(5));
                    got = rx.try_pop();
                }
                got.unwrap()
            });
            thread::sleep(Duration::from_millis(10));
            tx.try_push(42).unwrap();
            assert_eq!(t.join().unwrap(), 42);
            // A kick alone also unparks (used for side-channel signals).
            let (_tx2, mut rx2) = ring::<u64>(8);
            let started = std::time::Instant::now();
            let k = thread::spawn(move || {
                rx2.wait(Duration::from_secs(5));
            });
            thread::sleep(Duration::from_millis(10));
            handle.wake_consumer(); // wrong ring — only latches a kick there
            let (_tx3, mut rx3) = ring::<u64>(8);
            rx3.wait(Duration::from_millis(1)); // timeout path
            drop(_tx2); // close wakes the parked consumer
            k.join().unwrap();
            assert!(started.elapsed() < Duration::from_secs(5));
        }

        #[test]
        fn drop_sides_close_and_free_items() {
            // Producer gone: remaining items still drain, then closed.
            let (mut tx, mut rx) = ring::<String>(4);
            tx.try_push("a".into()).unwrap();
            drop(tx);
            assert!(rx.is_closed());
            assert_eq!(rx.try_pop(), Some("a".to_string()));
            assert_eq!(rx.try_pop(), None);
            // Consumer gone: pushes fail, queued items are freed (their
            // destructors run — exercised under the allocator, asserted
            // by not leaking under sanitizers/valgrind runs).
            let (mut tx, rx) = ring::<String>(4);
            tx.try_push("b".into()).unwrap();
            drop(rx);
            assert!(tx.try_push("c".into()).is_err());
            assert!(tx.push("d".into()).is_err());
        }

        #[test]
        fn cross_thread_stress_preserves_fifo() {
            let (mut tx, mut rx) = ring::<u64>(8);
            const N: u64 = 200_000;
            let producer = thread::spawn(move || {
                for i in 0..N {
                    tx.push(i).unwrap();
                }
            });
            let mut expect = 0u64;
            let mut out = VecDeque::new();
            while expect < N {
                if rx.pop_batch(&mut out, 64) == 0 {
                    rx.wait(Duration::from_millis(1));
                }
                for v in out.drain(..) {
                    assert_eq!(v, expect, "FIFO violated");
                    expect += 1;
                }
            }
            producer.join().unwrap();
        }
    }
}

pub mod mpsc {
    //! An unbounded lock-free multi-producer/single-consumer queue
    //! (Vyukov-style intrusive linked list).
    //!
    //! `push` is wait-free from any thread — allocate a node, one atomic
    //! swap on the tail, one release store linking it — which is what
    //! lets the executor's remote-egress path enqueue a record for a
    //! peer process without taking any lock. `pop` is single-consumer
    //! (`&mut self`); the consumer parks on a Condvar only when it
    //! observes the empty edge, and producers notify only when the
    //! waiting flag says someone is parked.

    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    use crate::utils::CachePadded;

    struct Node<T> {
        next: AtomicPtr<Node<T>>,
        value: Option<T>,
    }

    struct Shared<T> {
        /// Producer side: last node in the list (swap target).
        tail: CachePadded<AtomicPtr<Node<T>>>,
        /// Consumer side: current stub node (its `next` is the front).
        /// Only the consumer moves it, but it lives here so the final
        /// `Drop` can free the chain even if the consumer end was
        /// dropped first.
        head: CachePadded<AtomicPtr<Node<T>>>,
        /// Approximate length (push increments, pop decrements).
        len: AtomicU64,
        consumer_waiting: AtomicBool,
        park: Mutex<()>,
        not_empty: Condvar,
    }

    unsafe impl<T: Send> Send for Shared<T> {}
    unsafe impl<T: Send> Sync for Shared<T> {}

    /// The producing end. Clonable; `push` takes `&self` and is
    /// wait-free (two atomic operations plus the node allocation).
    pub struct Producer<T> {
        shared: Arc<Shared<T>>,
    }

    /// The consuming end. Not clonable; pops take `&mut self`.
    pub struct Consumer<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPSC queue.
    pub fn queue<T>() -> (Producer<T>, Consumer<T>) {
        let stub = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: None,
        }));
        let shared = Arc::new(Shared {
            tail: CachePadded::new(AtomicPtr::new(stub)),
            head: CachePadded::new(AtomicPtr::new(stub)),
            len: AtomicU64::new(0),
            consumer_waiting: AtomicBool::new(false),
            park: Mutex::new(()),
            not_empty: Condvar::new(),
        });
        (
            Producer {
                shared: Arc::clone(&shared),
            },
            Consumer { shared },
        )
    }

    impl<T> Clone for Producer<T> {
        fn clone(&self) -> Self {
            Producer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Producer<T> {
        /// Enqueues a value. Wait-free: one `swap` publishes the node to
        /// the total push order, one release store links it in.
        pub fn push(&self, value: T) {
            let s = &*self.shared;
            let node = Box::into_raw(Box::new(Node {
                next: AtomicPtr::new(ptr::null_mut()),
                value: Some(value),
            }));
            let prev = s.tail.swap(node, Ordering::AcqRel);
            // Between the swap and this store the list is transiently
            // split; the consumer treats a null `next` with a non-zero
            // length as "retry", bounded by this two-instruction window.
            unsafe { (*prev).next.store(node, Ordering::Release) };
            s.len.fetch_add(1, Ordering::Release);
            if s.consumer_waiting.load(Ordering::SeqCst) {
                let _guard = s.park.lock().expect("mpsc park lock");
                s.not_empty.notify_one();
            }
        }

        /// Approximate number of queued items.
        pub fn len(&self) -> usize {
            self.shared.len.load(Ordering::Acquire) as usize
        }

        /// Whether the queue is (approximately) empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Consumer<T> {
        /// Dequeues the front item, or `None` when the queue is empty.
        /// Spins out the producers' transient split window (tail swapped,
        /// link store pending) instead of reporting a false empty.
        pub fn try_pop(&mut self) -> Option<T> {
            let s = &*self.shared;
            let head = s.head.load(Ordering::Relaxed);
            let mut next = unsafe { (*head).next.load(Ordering::Acquire) };
            if next.is_null() {
                if s.len.load(Ordering::Acquire) == 0 {
                    return None;
                }
                // A producer is mid-link; the store is the very next
                // instruction after its swap, so spin briefly — but
                // escalate to yielding in case the producer was
                // preempted inside the window (on a single-core box a
                // pure spin would block the very thread it waits on).
                let mut spins = 0u32;
                loop {
                    next = unsafe { (*head).next.load(Ordering::Acquire) };
                    if !next.is_null() {
                        break;
                    }
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            let value = unsafe { (*next).value.take().expect("non-stub node has a value") };
            s.head.store(next, Ordering::Relaxed);
            unsafe { drop(Box::from_raw(head)) };
            s.len.fetch_sub(1, Ordering::Release);
            Some(value)
        }

        /// Dequeues the front item, parking on the empty edge until one
        /// arrives or `timeout` elapses.
        pub fn pop_wait(&mut self, timeout: Duration) -> Option<T> {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            let s = &*self.shared;
            s.consumer_waiting.store(true, Ordering::SeqCst);
            {
                let guard = s.park.lock().expect("mpsc park lock");
                // Recheck under the lock (producers notify under it).
                if s.len.load(Ordering::Acquire) == 0 {
                    let _ = s
                        .not_empty
                        .wait_timeout(guard, timeout)
                        .expect("mpsc park lock");
                }
            }
            s.consumer_waiting.store(false, Ordering::SeqCst);
            self.try_pop()
        }

        /// Approximate number of queued items.
        pub fn len(&self) -> usize {
            self.shared.len.load(Ordering::Acquire) as usize
        }

        /// Whether the queue is (approximately) empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Shared<T> {
        fn drop(&mut self) {
            // Both ends are gone: free the remaining chain (stub first).
            let mut node = self.head.load(Ordering::Relaxed);
            while !node.is_null() {
                let next = unsafe { (*node).next.load(Ordering::Relaxed) };
                unsafe { drop(Box::from_raw(node)) };
                node = next;
            }
        }
    }

    impl<T> std::fmt::Debug for Producer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("mpsc::Producer { .. }")
        }
    }

    impl<T> std::fmt::Debug for Consumer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("mpsc::Consumer { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_single_producer() {
            let (tx, mut rx) = queue::<u32>();
            for i in 0..100 {
                tx.push(i);
            }
            for i in 0..100 {
                assert_eq!(rx.try_pop(), Some(i));
            }
            assert_eq!(rx.try_pop(), None);
        }

        #[test]
        fn per_producer_order_survives_contention() {
            let (tx, mut rx) = queue::<(u64, u64)>();
            const PER: u64 = 50_000;
            let producers: Vec<_> = (0..4u64)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..PER {
                            tx.push((p, i));
                        }
                    })
                })
                .collect();
            let mut seen = [0u64; 4];
            let mut total = 0u64;
            while total < 4 * PER {
                if let Some((p, i)) = rx.pop_wait(Duration::from_millis(10)) {
                    assert_eq!(i, seen[p as usize], "per-producer FIFO violated");
                    seen[p as usize] += 1;
                    total += 1;
                }
            }
            for t in producers {
                t.join().unwrap();
            }
            assert_eq!(seen, [PER; 4]);
        }

        #[test]
        fn pop_wait_parks_and_wakes() {
            let (tx, mut rx) = queue::<u8>();
            let t = thread::spawn(move || rx.pop_wait(Duration::from_secs(5)));
            thread::sleep(Duration::from_millis(20));
            tx.push(7);
            assert_eq!(t.join().unwrap(), Some(7));
        }

        #[test]
        fn drop_frees_queued_items() {
            let (tx, rx) = queue::<String>();
            for i in 0..32 {
                tx.push(format!("item {i}"));
            }
            drop(rx);
            drop(tx); // last handle frees the chain (checked by leak tools)
        }
    }
}
