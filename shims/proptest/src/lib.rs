//! Minimal in-workspace stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of proptest the project's property tests use:
//! the `proptest!` macro, numeric-range and `any::<T>()` strategies,
//! tuples, `prop::collection::vec`, `prop_map`, `prop_oneof!`, and the
//! `prop_assert*` macros. Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   unshrunk; the RNG is deterministic (seeded from the test name), so
//!   failures reproduce exactly.
//! * Fixed case count (`test_runner::CASES`) instead of a config system.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case generation.

    /// Cases generated per property.
    pub const CASES: u32 = 96;

    /// SplitMix64-backed deterministic RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name so each property gets a stable
        /// but distinct stream.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;

    /// A generator of values of one type.
    ///
    /// Object safe: combinator methods carry `where Self: Sized`, so
    /// `Box<dyn Strategy<Value = V>>` works (used by `prop_oneof!`).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy derived from each generated value.
        fn prop_flat_map<U, S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy<Value = U>,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Uniformly picks one of several strategies per generated value
    /// (built by `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from type-erased options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, scale-diverse values.
            let mag = rng.unit_f64() * 1e12;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }
}

/// Range sampling used to make `low..high` expressions strategies.
pub trait RangeSample: Sized + Copy {
    /// Uniform draw in `[low, high)`.
    fn sample(rng: &mut test_runner::TestRng, low: Self, high: Self) -> Self;
    /// The smallest increment (to widen inclusive ranges).
    fn successor(self) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut test_runner::TestRng, low: Self, high: Self) -> Self {
                assert!(low < high, "empty strategy range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add(rng.below(span.max(1)) as $t)
            }
            fn successor(self) -> Self {
                self.wrapping_add(1)
            }
        }
    )*};
}

impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn sample(rng: &mut test_runner::TestRng, low: Self, high: Self) -> Self {
        assert!(low < high, "empty strategy range");
        low + rng.unit_f64() * (high - low)
    }
    fn successor(self) -> Self {
        self
    }
}

impl RangeSample for f32 {
    fn sample(rng: &mut test_runner::TestRng, low: Self, high: Self) -> Self {
        f64::sample(rng, low as f64, high as f64) as f32
    }
    fn successor(self) -> Self {
        self
    }
}

impl<T: RangeSample> strategy::Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

impl<T: RangeSample> strategy::Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::sample(rng, *self.start(), self.end().successor())
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from real proptest.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Size specification for collection strategies.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { min: n, max: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    min: *r.start(),
                    max: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `Vec` strategy over an element strategy and a size range.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (plain `assert!` here — no
/// shrinking, so failures surface the raw generated case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly chooses between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs [`test_runner::CASES`] times with fresh generated inputs.
///
/// The `#[test]` attribute callers write is captured by the attribute
/// repetition and re-emitted verbatim on the generated zero-argument
/// function.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::test_runner::CASES {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds; `any` is deterministic per name.
        #[test]
        fn ranges_in_bounds(x in 5u64..50, f in 0.25f64..0.75, v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        /// prop_map and prop_oneof compose.
        #[test]
        fn combinators_compose(v in prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x),
        ]) {
            prop_assert!(v < 20 || (100..110).contains(&v));
        }
    }
}
